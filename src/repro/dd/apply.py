"""Direct gate-application kernels for decision diagrams.

The matrix-construction path realizes every gate by building the full
``n``-qubit matrix DD (a kron chain of identities around the local 2x2
unitary) and multiplying it onto the state.  Dedicated DD packages avoid
that overhead with *direct apply* routines (Zulehner/Hillmich/Wille, DATE
2019; Wille/Hillmich/Burgholzer 2021): the gate is applied by recursing
over the state diagram alone — no gate DD is ever constructed, so no
matrix nodes are allocated and levels the gate does not touch are copied
by reference.

This module implements those kernels for

* **vector DDs** (one simulation step, paper Sec. III-B): ``g |psi>``;
* **matrix DDs** from either side (the alternating equivalence scheme of
  paper Sec. III-C / Ex. 12): ``g . E`` and ``E . g``.

Kernel taxonomy (reported through the ``dd_apply_total`` counter):

``diagonal``
    ``Z``/``S``/``T``/``P``/``RZ``-like gates touch only edge weights —
    children are rescaled, never restructured, and no additions occur.
``antidiagonal``
    ``X``/``Y``-like gates swap the two successors (the Toffoli fast
    path: a multi-controlled X is branch selection plus one child swap).
``generic``
    Arbitrary 2x2 unitaries mix the successors with two DD additions.
``controlled``
    Any gate with control lines.  Controls *above* the target select a
    branch (the other branch is shared unchanged); controls *below* the
    target use the identity ``CU = I + P (U - I)`` with a projector-chain
    recursion (``P`` zeroes the inactive control branches).
``swap``
    SWAP / Fredkin via three CX kernel applications; iSWAP via
    ``SWAP . CZ . (S x S)``.

All kernels share one dedicated compute table (``DDPackage._apply_cache``)
keyed on ``(gate id, node)``, where the gate id canonicalizes the unitary's
entries through the complex table, so repeated gates (GHZ cascades, Grover
iterations, the inverse side of the alternating scheme) hit the cache.

Results are bit-identical to the matrix path in the canonical sense: both
paths normalize through the same unique tables, so they yield the very
same root edge within one package (tested by the differential suite).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge, ZERO_EDGE
from repro.dd.node import MatrixNode, Node, VectorNode
from repro.dd.pooled import PooledApplyKernel
from repro.errors import DDError
from repro.obs.metrics import DEFAULT_TIME_BUCKETS

__all__ = [
    "apply_single_qubit",
    "apply_controlled",
    "apply_swap",
    "apply_operation",
    "apply_operation_matrix",
    "KERNEL_NAMES",
]

#: Kernel labels used for the ``dd_apply_total`` / ``dd_apply_seconds``
#: metrics (and by tests asserting coverage of every kernel).
KERNEL_NAMES = ("diagonal", "antidiagonal", "generic", "controlled", "swap")

_X_MATRIX = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_S_MATRIX = np.array([[1.0, 0.0], [0.0, 1j]], dtype=complex)
_SDG_MATRIX = np.array([[1.0, 0.0], [0.0, -1j]], dtype=complex)
_Z_MATRIX = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)
for _constant in (_X_MATRIX, _S_MATRIX, _SDG_MATRIX, _Z_MATRIX):
    _constant.setflags(write=False)
del _constant


# ----------------------------------------------------------------------
# instrumentation
# ----------------------------------------------------------------------
def _observe(package, kernel: str, start: Optional[float]) -> None:
    """Bump the per-kernel counter (and timer when a start time is given)."""
    counters = getattr(package, "_apply_counters", None)
    if counters is None:
        counters = {}
        package._apply_counters = counters
    entry = counters.get(kernel)
    if entry is None:
        entry = (
            package.registry.counter("dd_apply_total", {"kernel": kernel}),
            package.registry.histogram(
                "dd_apply_seconds", DEFAULT_TIME_BUCKETS, {"kernel": kernel}
            ),
        )
        counters[kernel] = entry
    entry[0].inc()
    if start is not None:
        entry[1].observe(perf_counter() - start)


# ----------------------------------------------------------------------
# the recursive kernel
# ----------------------------------------------------------------------
class _ApplyKernel:
    """One prepared gate application: a 2x2 unitary at ``target`` with
    control lines, specialized to a DD mode.

    ``mode`` selects how node successors are traversed:

    * ``"v"``  — vector nodes, successors indexed by the qubit value;
    * ``"ml"`` — matrix nodes, the gate multiplies from the *left* (acts
      on the row index ``i`` of successor ``2*i + j``);
    * ``"mr"`` — matrix nodes, the gate multiplies from the *right* (acts
      on the column index ``j``; realized by transposing the unitary and
      reusing the row recursion on column-grouped successors).
    """

    __slots__ = (
        "package", "table", "mode", "u", "target", "controls",
        "low", "below", "below_low", "op_key", "proj_key", "kernel",
        "skipping", "high", "lines", "below_lines", "below_map",
    )

    def __init__(
        self,
        package,
        mode: str,
        matrix: np.ndarray,
        target: int,
        controls: Dict[int, int],
    ):
        self.package = package
        self.table = package.complex_table
        self.mode = mode
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2, 2):
            raise DDError(f"expected a 2x2 matrix, got shape {matrix.shape}")
        if mode == "mr":
            matrix = matrix.T
        self.u = tuple(self._canonical(matrix[i, j]) for i in (0, 1) for j in (0, 1))
        self.target = target
        self.controls = dict(controls)
        for line, bit in self.controls.items():
            if line == target:
                raise DDError("target and control lines must be distinct")
            if bit not in (0, 1):
                raise DDError(f"control value must be 0 or 1, got {bit!r}")
        levels = [target, *self.controls]
        self.low = min(levels)
        self.high = max(levels)
        self.lines = tuple(sorted(levels, reverse=True))
        self.below = tuple(
            sorted((line, bit) for line, bit in self.controls.items() if line < target)
        )
        self.below_low = self.below[0][0] if self.below else target
        self.below_map = dict(self.below)
        self.below_lines = tuple(sorted(self.below_map, reverse=True))
        # Matrix DDs in identity-skipping packages may skip gate lines; the
        # level-tracking recursion (`_rec_s`) materializes skipped levels on
        # demand.  Vector DDs stay dense, so mode "v" keeps the fast path.
        self.skipping = mode != "v" and bool(
            getattr(package, "identity_skipping", False)
        )
        ctrl_key = tuple(sorted(self.controls.items()))
        self.op_key = ("apply", mode, self.u, target, ctrl_key)
        self.proj_key = ("proj", mode, self.below)
        if self.controls:
            self.kernel = "controlled"
        elif self.u[1] == ComplexTable.ZERO and self.u[2] == ComplexTable.ZERO:
            self.kernel = "diagonal"
        elif self.u[0] == ComplexTable.ZERO and self.u[3] == ComplexTable.ZERO:
            self.kernel = "antidiagonal"
        else:
            self.kernel = "generic"

    def _canonical(self, value: complex) -> complex:
        value = complex(value)
        if self.table.is_zero(value):
            return ComplexTable.ZERO
        return self.table.lookup(value)

    # -- entry -----------------------------------------------------------
    def run(self, root: Edge) -> Edge:
        if root.is_zero:
            return ZERO_EDGE
        node = root.node
        if self.skipping:
            if not node.is_terminal and not isinstance(node, MatrixNode):
                raise DDError("apply kernels need a matrix DD root")
            entry = self.high if node.is_terminal else max(self.high, node.var)
            return self._rec_s(node, entry).scaled(root.weight, self.table)
        expected = VectorNode if self.mode == "v" else MatrixNode
        if node.is_terminal or not isinstance(node, expected):
            kind = "vector" if self.mode == "v" else "matrix"
            raise DDError(f"apply kernels need a non-trivial {kind} DD root")
        if node.var < self.target or (self.controls and node.var < max(self.controls)):
            raise DDError(
                f"gate lines exceed the DD's qubit range (root level {node.var})"
            )
        return self._rec(node).scaled(root.weight, self.table)

    # -- recursion over untouched upper levels ---------------------------
    def _rec(self, node: Node) -> Edge:
        if node.var < self.low:
            # Everything the gate touches lies above: the subtree (possibly
            # the terminal) is shared unchanged.
            return Edge(node, ComplexTable.ONE)
        cache = self.package._apply_cache
        key = (self.op_key, node)
        cached = cache.lookup(key)
        if cached is None:
            cached = self._expand(node)
            cache.insert(key, cached)
        return cached

    def _rec_edge(self, edge: Edge) -> Edge:
        if edge.is_zero:
            return ZERO_EDGE
        return self._rec(edge.node).scaled(edge.weight, self.table)

    def _expand(self, node: Node) -> Edge:
        var = node.var
        pairs = self._pairs(node)
        if var == self.target:
            new_pairs = [self._apply_target(pair) for pair in pairs]
        else:
            bit = self.controls.get(var)
            if bit is None:
                # A line between the gate's lines: descend on both branches.
                new_pairs = [
                    tuple(self._rec_edge(child) for child in pair) for pair in pairs
                ]
            else:
                # Control above the (remaining) gate lines: the active branch
                # continues, the inactive branch is shared unchanged.
                new_pairs = []
                for pair in pairs:
                    updated = list(pair)
                    updated[bit] = self._rec_edge(pair[bit])
                    new_pairs.append(tuple(updated))
        return self._make(var, new_pairs)

    # -- the target level -----------------------------------------------
    def _apply_target(self, pair: Tuple[Edge, Edge]) -> Tuple[Edge, Edge]:
        u00, u01, u10, u11 = self.u
        c0, c1 = pair
        table = self.table
        if self.below:
            # Controls below the target: CU = I + P (U - I), with the
            # projector chain P applied to the subtrees first.
            add = self.package._add
            d00 = self._canonical(u00 - 1.0)
            d11 = self._canonical(u11 - 1.0)
            p0 = self._proj_edge(c0)
            p1 = self._proj_edge(c1)
            new0 = add(c0, add(p0.scaled(d00, table), p1.scaled(u01, table)))
            new1 = add(c1, add(p0.scaled(u10, table), p1.scaled(d11, table)))
            return (new0, new1)
        if u01 == ComplexTable.ZERO and u10 == ComplexTable.ZERO:
            # Diagonal shortcut: only the edge weights change.
            return (c0.scaled(u00, table), c1.scaled(u11, table))
        if u00 == ComplexTable.ZERO and u11 == ComplexTable.ZERO:
            # Anti-diagonal shortcut (X/Y): swap the successors.
            return (c1.scaled(u01, table), c0.scaled(u10, table))
        add = self.package._add
        new0 = add(c0.scaled(u00, table), c1.scaled(u01, table))
        new1 = add(c0.scaled(u10, table), c1.scaled(u11, table))
        return (new0, new1)

    # -- projector chain for controls below the target -------------------
    def _proj_edge(self, edge: Edge) -> Edge:
        if edge.is_zero:
            return ZERO_EDGE
        return self._proj(edge.node).scaled(edge.weight, self.table)

    def _proj(self, node: Node) -> Edge:
        if node.var < self.below_low:
            return Edge(node, ComplexTable.ONE)
        cache = self.package._apply_cache
        key = (self.proj_key, node)
        cached = cache.lookup(key)
        if cached is None:
            var = node.var
            pairs = self._pairs(node)
            bit = dict(self.below).get(var)
            new_pairs = []
            for pair in pairs:
                if bit is None:
                    new_pairs.append(tuple(self._proj_edge(child) for child in pair))
                else:
                    updated = [ZERO_EDGE, ZERO_EDGE]
                    updated[bit] = self._proj_edge(pair[bit])
                    new_pairs.append(tuple(updated))
            cached = self._make(var, new_pairs)
            cache.insert(key, cached)
        return cached

    # -- identity-skipping recursion (matrix modes) ----------------------
    # Skipped levels stand for identities, so a gate line may fall *inside*
    # a skipped range.  Memoizing by node alone would collide (two parents
    # can reach the same node with different remaining gate lines), so the
    # recursion tracks the next gate line and keys the cache on it.
    @staticmethod
    def _next_line(lines: Tuple[int, ...], level: int) -> Optional[int]:
        for line in lines:
            if line <= level:
                return line
        return None

    def _pairs_at(self, node: Node, virtual: bool):
        if not virtual:
            return self._pairs(node)
        # The node skips this level: virtually a diagonal (e, 0, 0, e),
        # identical under row ("ml") and column ("mr") grouping.
        unit = Edge(node, ComplexTable.ONE)
        return ((unit, ZERO_EDGE), (ZERO_EDGE, unit))

    def _rec_s_edge(self, edge: Edge, level: int) -> Edge:
        if edge.is_zero:
            return ZERO_EDGE
        return self._rec_s(edge.node, level).scaled(edge.weight, self.table)

    def _rec_s(self, node: Node, level: int) -> Edge:
        line = self._next_line(self.lines, level)
        if line is None:
            return Edge(node, ComplexTable.ONE)
        cache = self.package._apply_cache
        key = (self.op_key, node, line)
        cached = cache.lookup(key)
        if cached is not None:
            return cached
        if not node.is_terminal and node.var > line:
            pairs = self._pairs(node)
            new_pairs = [
                tuple(self._rec_s_edge(child, node.var - 1) for child in pair)
                for pair in pairs
            ]
            cached = self._make(node.var, new_pairs)
        else:
            virtual = node.is_terminal or node.var < line
            pairs = self._pairs_at(node, virtual)
            if line == self.target:
                new_pairs = [self._apply_target_s(pair) for pair in pairs]
            else:
                bit = self.controls[line]
                new_pairs = []
                for pair in pairs:
                    updated = list(pair)
                    updated[bit] = self._rec_s_edge(pair[bit], line - 1)
                    new_pairs.append(tuple(updated))
            cached = self._make(line, new_pairs)
        cache.insert(key, cached)
        return cached

    def _apply_target_s(self, pair: Tuple[Edge, Edge]) -> Tuple[Edge, Edge]:
        u00, u01, u10, u11 = self.u
        c0, c1 = pair
        table = self.table
        if self.below:
            add = self.package._add
            d00 = self._canonical(u00 - 1.0)
            d11 = self._canonical(u11 - 1.0)
            p0 = self._proj_s_edge(c0, self.target - 1)
            p1 = self._proj_s_edge(c1, self.target - 1)
            new0 = add(c0, add(p0.scaled(d00, table), p1.scaled(u01, table)))
            new1 = add(c1, add(p0.scaled(u10, table), p1.scaled(d11, table)))
            return (new0, new1)
        if u01 == ComplexTable.ZERO and u10 == ComplexTable.ZERO:
            return (c0.scaled(u00, table), c1.scaled(u11, table))
        if u00 == ComplexTable.ZERO and u11 == ComplexTable.ZERO:
            return (c1.scaled(u01, table), c0.scaled(u10, table))
        add = self.package._add
        new0 = add(c0.scaled(u00, table), c1.scaled(u01, table))
        new1 = add(c0.scaled(u10, table), c1.scaled(u11, table))
        return (new0, new1)

    def _proj_s_edge(self, edge: Edge, level: int) -> Edge:
        if edge.is_zero:
            return ZERO_EDGE
        return self._proj_s(edge.node, level).scaled(edge.weight, self.table)

    def _proj_s(self, node: Node, level: int) -> Edge:
        line = self._next_line(self.below_lines, level)
        if line is None:
            return Edge(node, ComplexTable.ONE)
        cache = self.package._apply_cache
        key = (self.proj_key, node, line)
        cached = cache.lookup(key)
        if cached is not None:
            return cached
        if not node.is_terminal and node.var > line:
            pairs = self._pairs(node)
            new_pairs = [
                tuple(self._proj_s_edge(child, node.var - 1) for child in pair)
                for pair in pairs
            ]
            cached = self._make(node.var, new_pairs)
        else:
            virtual = node.is_terminal or node.var < line
            pairs = self._pairs_at(node, virtual)
            bit = self.below_map[line]
            new_pairs = []
            for pair in pairs:
                updated = [ZERO_EDGE, ZERO_EDGE]
                updated[bit] = self._proj_s_edge(pair[bit], line - 1)
                new_pairs.append(tuple(updated))
            cached = self._make(line, new_pairs)
        cache.insert(key, cached)
        return cached

    # -- mode-dependent successor layout ---------------------------------
    def _pairs(self, node: Node):
        """Successors grouped into 2-vectors along the gate's active index."""
        edges = node.edges
        if self.mode == "v":
            return (edges,)
        if self.mode == "ml":
            # Row pairs per column j: (U_0j, U_1j).
            return ((edges[0], edges[2]), (edges[1], edges[3]))
        # "mr": column pairs per row i: (U_i0, U_i1).
        return ((edges[0], edges[1]), (edges[2], edges[3]))

    def _make(self, var: int, new_pairs) -> Edge:
        if self.mode == "v":
            return self.package.make_vector_node(var, new_pairs[0])
        if self.mode == "ml":
            (e00, e10), (e01, e11) = new_pairs
        else:
            (e00, e01), (e10, e11) = new_pairs
        return self.package.make_matrix_node(var, (e00, e01, e10, e11))


# ----------------------------------------------------------------------
# public vector-DD API
# ----------------------------------------------------------------------
def _make_kernel(package, mode, matrix, target, controls):
    """Build the kernel matching the package's storage backend.

    Both kernels share recursion structure, shortcuts and arithmetic, so
    the two backends stay bit-identical (the differential suite's check).
    """
    engine = getattr(package, "_pooled", None)
    if engine is None:
        return _ApplyKernel(package, mode, matrix, target, controls)
    if type(matrix) is np.ndarray and not matrix.flags.writeable:
        # An immutable (interned gate-library) matrix can be keyed by
        # identity; the cache entry pins it so its id stays valid.
        key = (mode, id(matrix), int(target), tuple(sorted(controls.items())))
    else:
        matrix = np.asarray(matrix, dtype=complex)
        key = (
            mode, matrix.tobytes(), int(target), tuple(sorted(controls.items()))
        )
    generation = engine.weights.generation
    hit = engine._kernel_cache.get(key)
    if hit is not None:
        kernel, built_at, _pinned = hit
        # A mint-stable canonicalization is valid forever; a snapped one
        # only while no new representative has appeared since it was built
        # (mirrors the weight-memo invalidation rule).
        if kernel.cacheable or built_at == generation:
            return kernel
    kernel = PooledApplyKernel(package, mode, matrix, target, controls)
    if kernel.cacheable or engine.weights.generation == generation:
        engine._kernel_cache[key] = (kernel, generation, matrix)
    return kernel


def _control_map(
    controls: Sequence[int], negative_controls: Sequence[int]
) -> Dict[int, int]:
    mapping: Dict[int, int] = {}
    for line in controls:
        mapping[int(line)] = 1
    for line in negative_controls:
        if int(line) in mapping:
            raise DDError("a line cannot be both a positive and negative control")
        mapping[int(line)] = 0
    if len(mapping) != len(controls) + len(negative_controls):
        raise DDError("control lines must be distinct")
    return mapping


def _map_lines(package, target: int, mapping: Dict[int, int]):
    """Translate qubit lines into DD levels under the package's variable
    order (the identity while no reorder has run)."""
    if package._order_is_identity:
        return target, mapping
    return (
        package.level_of(target),
        {package.level_of(line): bit for line, bit in mapping.items()},
    )


def apply_single_qubit(package, state: Edge, matrix: np.ndarray, target: int) -> Edge:
    """Apply a single-qubit gate directly to a vector DD: ``U_t |state>``."""
    return apply_controlled(package, state, matrix, target)


def apply_controlled(
    package,
    state: Edge,
    matrix: np.ndarray,
    target: int,
    controls: Sequence[int] = (),
    negative_controls: Sequence[int] = (),
) -> Edge:
    """Apply a (multi-)controlled single-qubit gate directly to a vector DD."""
    package._maybe_gc()
    state = package._resolve(state)
    target, mapping = _map_lines(
        package, target, _control_map(controls, negative_controls)
    )
    kernel = _make_kernel(package, "v", matrix, target, mapping)
    if not package._obs_on:
        return kernel.run(state)
    start = perf_counter()
    result = kernel.run(state)
    _observe(package, kernel.kernel, start)
    return result


def apply_swap(
    package,
    state: Edge,
    line_a: int,
    line_b: int,
    controls: Sequence[int] = (),
    negative_controls: Sequence[int] = (),
) -> Edge:
    """Apply a (controlled) SWAP via three CX kernel applications.

    The standard Fredkin decomposition ``cx(c,b); ccx(ctrls+b, c); cx(c,b)``
    with all extra controls attached to the middle Toffoli — mirroring the
    matrix path so both produce the same operator.
    """
    if line_a == line_b:
        raise DDError("SWAP needs two distinct lines")
    package._maybe_gc()
    state = package._resolve(state)
    mapping = _control_map(controls, negative_controls)
    if not package._order_is_identity:
        line_a = package.level_of(line_a)
        line_b = package.level_of(line_b)
        mapping = {package.level_of(line): bit for line, bit in mapping.items()}
    start = perf_counter() if package._obs_on else None
    outer = _make_kernel(package, "v", _X_MATRIX, line_a, {line_b: 1})
    mapping[line_a] = 1
    inner = _make_kernel(package, "v", _X_MATRIX, line_b, mapping)
    result = outer.run(inner.run(outer.run(state)))
    if start is not None:
        _observe(package, "swap", start)
    return result


def _iswap_stages(targets: Tuple[int, int], sign: int):
    """iSWAP = SWAP . CZ . (S x S); the adjoint uses S† (``sign=-1``)."""
    high, low = targets
    phase = _S_MATRIX if sign > 0 else _SDG_MATRIX
    return (
        (phase, high, {}),
        (phase, low, {}),
        (_Z_MATRIX, high, {low: 1}),
    )


# ----------------------------------------------------------------------
# circuit-IR dispatch
# ----------------------------------------------------------------------
def apply_operation(package, state: Edge, operation, num_qubits: int):
    """Apply one :class:`~repro.qc.operations.GateOp` to a vector DD.

    Returns the new state edge, or ``None`` when the operation has no
    direct kernel (the caller falls back to the matrix path).
    """
    matrix = operation.matrix_readonly()
    targets = operation.targets
    if matrix.shape == (2, 2):
        return apply_controlled(
            package,
            state,
            matrix,
            targets[0],
            controls=operation.controls,
            negative_controls=operation.negative_controls,
        )
    if operation.gate == "swap":
        return apply_swap(
            package,
            state,
            targets[0],
            targets[1],
            controls=operation.controls,
            negative_controls=operation.negative_controls,
        )
    if operation.gate in ("iswap", "iswapdg") and operation.num_controls == 0:
        start = perf_counter() if package._obs_on else None
        sign = 1 if operation.gate == "iswap" else -1
        result = package._resolve(state)
        for gate_matrix, target, ctrls in _iswap_stages(targets, sign):
            target, ctrls = _map_lines(package, target, ctrls)
            result = _make_kernel(package, "v", gate_matrix, target, ctrls).run(result)
        result = apply_swap(package, result, targets[0], targets[1])
        if start is not None:
            _observe(package, "swap", start)
        return result
    return None


def apply_operation_matrix(
    package, operand: Edge, operation, num_qubits: int, side: str = "left"
):
    """Apply a gate to a *matrix* DD from the left (``g . E``) or right
    (``E . g``) — the two moves of the alternating equivalence scheme.

    Returns ``None`` when the operation has no direct kernel.
    """
    if side not in ("left", "right"):
        raise DDError(f"side must be 'left' or 'right', got {side!r}")
    package._maybe_gc()
    operand = package._resolve(operand)
    mode = "ml" if side == "left" else "mr"
    matrix = operation.matrix_readonly()
    targets = operation.targets
    if matrix.shape == (2, 2):
        target, mapping = _map_lines(
            package,
            targets[0],
            _control_map(operation.controls, operation.negative_controls),
        )
        kernel = _make_kernel(package, mode, matrix, target, mapping)
        if not package._obs_on:
            return kernel.run(operand)
        start = perf_counter()
        result = kernel.run(operand)
        _observe(package, kernel.kernel, start)
        return result
    if matrix.shape != (4, 4):
        return None
    stages = _matrix_stages(package, operation, targets)
    if stages is None:
        return None
    start = perf_counter() if package._obs_on else None
    if side == "left":
        # (Fk ... F1) . E groups as Fk . (... . (F1 . E)): the first product
        # factor (stages are listed in application order) multiplies first.
        ordered = stages
    else:
        # E . (Fk ... F1) groups as ((E . Fk) . ...) . F1: the last factor
        # multiplies first from the right.
        ordered = tuple(reversed(stages))
    result = operand
    for gate_matrix, target, ctrls in ordered:
        target, ctrls = _map_lines(package, target, ctrls)
        result = _make_kernel(package, mode, gate_matrix, target, ctrls).run(result)
    if start is not None:
        _observe(package, "swap", start)
    return result


def _matrix_stages(package, operation, targets):
    """Decompose a supported 4x4 gate into 2x2 stages in *product order*
    (first stage = rightmost factor, applied first to a state)."""
    extra = _control_map(operation.controls, operation.negative_controls)
    if operation.gate == "swap":
        cx_outer = (_X_MATRIX, targets[0], {targets[1]: 1})
        inner_controls = dict(extra)
        inner_controls[targets[0]] = 1
        cx_inner = (_X_MATRIX, targets[1], inner_controls)
        return (cx_outer, cx_inner, cx_outer)
    if operation.gate in ("iswap", "iswapdg") and not extra:
        sign = 1 if operation.gate == "iswap" else -1
        high, low = targets
        swap_stages = (
            (_X_MATRIX, high, {low: 1}),
            (_X_MATRIX, low, {high: 1}),
            (_X_MATRIX, high, {low: 1}),
        )
        # Product order: SWAP . CZ . (S x S) — the phase layer acts first.
        return _iswap_stages(targets, sign) + swap_stages
    return None
