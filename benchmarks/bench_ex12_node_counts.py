"""Ex. 12 — the headline quantitative claim: 9 vs 21 nodes.

Regenerates the comparison between building the entire system matrix
(21 nodes for the three-qubit QFT) and the alternating scheme stepping
barrier-to-barrier (maximum of 9 nodes), across all application strategies
and several QFT sizes.
"""

import pytest

from repro.qc import library
from repro.verification import (
    ApplicationStrategy,
    check_equivalence_alternating,
    check_equivalence_construct,
)

_PAPER_PEAKS = {"compilation-flow": 9, "naive": 21}


@pytest.mark.parametrize("strategy", list(ApplicationStrategy))
def test_ex12_strategy_peaks(benchmark, strategy, report):
    result = benchmark(
        check_equivalence_alternating,
        library.qft(3),
        library.qft_compiled(3),
        strategy,
    )
    assert result.equivalent
    expected = _PAPER_PEAKS.get(strategy.value)
    if expected is not None:
        assert result.max_nodes == expected
    report(
        f"ex12_strategy_{strategy.value}",
        [
            f"strategy: {strategy.value}",
            f"peak nodes: {result.max_nodes}"
            + (f"   [paper: {expected}]" if expected else ""),
            f"applications: {len(result.trace)}",
        ],
    )


def test_ex12_summary_table(benchmark, report):
    def run():
        rows = []
        monolithic = check_equivalence_construct(
            library.qft(3), library.qft_compiled(3)
        )
        rows.append(("build entire system matrix", monolithic.max_nodes))
        for strategy in ApplicationStrategy:
            result = check_equivalence_alternating(
                library.qft(3), library.qft_compiled(3), strategy
            )
            rows.append((f"alternating / {strategy.value}", result.max_nodes))
        return rows

    rows = benchmark(run)
    table = dict(rows)
    assert table["build entire system matrix"] == 21  # paper
    assert table["alternating / compilation-flow"] == 9  # paper
    report(
        "ex12_summary",
        ["method                                peak nodes"]
        + [f"{name:38s}{peak:>4d}" for name, peak in rows]
        + ["", "paper Ex. 12: maximum of 9 nodes (alternating, "
           "barrier-stepped) vs 21 nodes (entire system matrix)"],
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ex12_random_compiled_pairs(benchmark, seed, report, bench_seed):
    """The strategy advantage beyond the QFT: random circuits compiled via
    the primitive-gate pass, verified against their originals."""
    from repro.qc.transforms import decompose_to_primitives

    circuit = library.random_circuit(4, 25, seed=bench_seed + seed)
    compiled = decompose_to_primitives(circuit, barrier_per_gate=True)

    def run():
        flow = check_equivalence_alternating(
            circuit, compiled, ApplicationStrategy.COMPILATION_FLOW
        )
        naive = check_equivalence_alternating(
            circuit, compiled, ApplicationStrategy.NAIVE
        )
        return flow, naive

    flow, naive = benchmark(run)
    assert flow.equivalent and naive.equivalent
    assert flow.max_nodes <= naive.max_nodes
    report(
        f"ex12_random_seed{seed}",
        [f"random(4, 25) seed={seed}: compilation-flow peak "
         f"{flow.max_nodes} vs naive peak {naive.max_nodes}"],
    )


@pytest.mark.parametrize("num_qubits", [3, 4, 5, 6])
def test_ex12_gap_grows_with_size(benchmark, num_qubits, report):
    def run():
        alternating = check_equivalence_alternating(
            library.qft(num_qubits),
            library.qft_compiled(num_qubits),
            ApplicationStrategy.COMPILATION_FLOW,
        )
        monolithic = check_equivalence_construct(
            library.qft(num_qubits), library.qft_compiled(num_qubits)
        )
        return alternating, monolithic

    alternating, monolithic = benchmark(run)
    assert alternating.equivalent and monolithic.equivalent
    assert alternating.max_nodes < monolithic.max_nodes
    report(
        f"ex12_gap_n{num_qubits}",
        [
            f"QFT{num_qubits}: alternating peak {alternating.max_nodes}, "
            f"monolithic peak {monolithic.max_nodes}, "
            f"ratio {monolithic.max_nodes / alternating.max_nodes:.2f}x",
        ],
    )
