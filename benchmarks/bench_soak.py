"""Memory-soak benchmark: flat RSS over thousands of mixed requests.

The resource-governance acceptance test: a budget-governed service must
hold its memory *flat* under sustained mixed load — cached and uncached
``/simulate``, ``/verify``, interactive session lifecycles — instead of
growing until the OOM killer arrives.  Two modes:

* **inline** (default): drives :class:`ServiceApp` directly (no sockets,
  ``workers=0`` so jobs run in-process and RSS of *this* process is the
  whole story).  ``python benchmarks/bench_soak.py --requests 10000``.
* **HTTP** (``--http --duration 15``): boots a real watchdog-enabled
  :class:`DDToolServer` (worker subprocess, request deadline, budgets) and
  hammers it over loopback for a wall-clock duration — the CI soak job.

RSS is read from ``/proc`` (self plus child workers), sampled throughout;
the growth is measured from a post-warmup baseline so one-time allocations
(imports, interned circuits, the first cache fill) don't count as a leak.
Results land in ``benchmarks/results/soak.json``; as a script, the exit
status is non-zero when growth exceeds the threshold (default 5%).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.abspath(os.path.join(BENCH_DIR, os.pardir, "src"))
for _extra in (SRC_DIR, BENCH_DIR):
    if _extra not in sys.path:
        sys.path.insert(0, _extra)

import _bench_common

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Distinct random circuits in the uncached rotation — more than the
#: result-cache capacity, so evictions and fresh worker simulations keep
#: happening for the whole run.
CIRCUIT_POOL = 384
DEFAULT_REQUESTS = 10_000
DEFAULT_THRESHOLD_PCT = 5.0
#: Requests before the RSS baseline is taken.  One full rotation of the
#: mixed cycle (~960 requests: every distinct circuit parsed once, the
#: result cache filled to capacity and evicting) plus allocator-arena
#: settling; the steady state after that is a repeat of the same rotation,
#: so any further growth is a real leak.
WARMUP_REQUESTS = 1_000

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")


# ----------------------------------------------------------------------
# RSS accounting (/proc; Linux)
# ----------------------------------------------------------------------
def _rss_of(pid: str) -> int:
    try:
        with open(f"/proc/{pid}/statm", "r", encoding="ascii") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return 0


def _child_pids() -> list:
    """PIDs whose parent is this process (worker subprocesses)."""
    me = str(os.getpid())
    children = []
    try:
        entries = os.listdir("/proc")
    except OSError:  # pragma: no cover - non-/proc platform
        return children
    for entry in entries:
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "r", encoding="ascii") as handle:
                fields = handle.read().rsplit(")", 1)[-1].split()
            if fields[1] == me:  # field 4 overall = ppid
                children.append(entry)
        except (OSError, IndexError):
            continue
    return children


def tree_rss_bytes() -> int:
    """Resident set of this process plus its direct children."""
    total = _rss_of("self")
    for pid in _child_pids():
        total += _rss_of(pid)
    return total


# ----------------------------------------------------------------------
# the mixed workload
# ----------------------------------------------------------------------
def _payload_cycle(seed_base: int = 0):
    """Infinite mixed-request generator: (kind, payload) tuples.

    ``seed_base`` offsets every circuit seed in the uncached rotation, so
    ``--seed`` sweeps genuinely different workloads run-over-run.
    """
    import itertools

    from repro.qc import library

    qft = library.qft(3).to_qasm()
    qft_compiled = library.qft_compiled(3).to_qasm()
    ghz = library.ghz_state(4).to_qasm()
    uncached = [
        library.random_circuit(3, 12, seed=seed_base + seed).to_qasm()
        for seed in range(CIRCUIT_POOL)
    ]
    for index in itertools.count():
        slot = index % 10
        if slot < 4:  # uncached simulate — the main table churn
            yield ("simulate", {
                "qasm": uncached[index % CIRCUIT_POOL],
                "shots": 8, "seed": index,
            })
        elif slot < 6:  # cached simulate
            yield ("simulate", {"qasm": qft, "shots": 16})
        elif slot == 6:
            yield ("verify", {"left": qft, "right": qft_compiled,
                              "strategy": "compilation-flow"})
        elif slot == 7:
            yield ("session", {"kind": "simulation", "qasm": ghz})
        elif slot == 8:
            yield ("simulate", {"qasm": ghz, "shots": 4,
                                "matrix_path": index % 2 == 0})
        else:
            yield ("healthz", None)


def _drive_inline(app, kind, payload) -> None:
    from repro.service import Request

    if kind == "healthz":
        response = app.handle(Request("GET", "/healthz"))
    elif kind == "session":
        body = json.dumps(payload).encode()
        response = app.handle(Request("POST", "/sessions", body=body))
        sid = json.loads(response.body)["session_id"]
        app.handle(Request(
            "POST", f"/sessions/{sid}/step",
            body=json.dumps({"action": "to_end"}).encode(),
        ))
        app.handle(Request("DELETE", f"/sessions/{sid}"))
    else:
        body = json.dumps(payload).encode()
        response = app.handle(Request("POST", f"/{kind}", body=body))
    if response.status >= 500 and response.status != 503:
        raise AssertionError(
            f"{kind} request failed: {response.status} {response.body!r}"
        )


def _drive_http(connection, kind, payload) -> None:
    if kind == "healthz":
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        response.read()
        return
    if kind == "session":
        path, body = "/sessions", json.dumps(payload).encode()
    else:
        path, body = f"/{kind}", json.dumps(payload).encode()
    connection.request("POST", path, body=body,
                       headers={"Content-Type": "application/json"})
    response = connection.getresponse()
    data = response.read()
    if response.status >= 500 and response.status != 503:
        raise AssertionError(f"{kind}: {response.status} {data!r}")
    if kind == "session" and response.status == 201:
        sid = json.loads(data)["session_id"]
        connection.request("DELETE", f"/sessions/{sid}")
        connection.getresponse().read()


# ----------------------------------------------------------------------
# soak runners
# ----------------------------------------------------------------------
def run_soak_inline(
    requests: int = DEFAULT_REQUESTS,
    budget_nodes: int = 20_000,
    budget_bytes: int = 64 << 20,
    seed: int = 0,
    json_out: "str | None" = None,
) -> dict:
    """Mixed load against an in-process ServiceApp; returns the result dict."""
    from time import perf_counter

    from repro.obs.metrics import MetricsRegistry
    from repro.service import Request, ServiceApp, ServiceConfig

    app = ServiceApp(
        ServiceConfig(
            workers=0,
            cache_capacity=256,
            max_sessions=32,
            budget_nodes=budget_nodes,
            budget_bytes=budget_bytes,
        ),
        registry=MetricsRegistry(enabled=True),
    )
    warmup = min(WARMUP_REQUESTS, max(1, requests // 2))
    samples = []
    baseline = None
    cycle = _payload_cycle(seed)
    start = perf_counter()
    try:
        for index in range(requests):
            kind, payload = next(cycle)
            _drive_inline(app, kind, payload)
            if index == warmup:
                baseline = tree_rss_bytes()
            if index % max(1, requests // 50) == 0:
                samples.append(tree_rss_bytes())
        final = tree_rss_bytes()
        governance = json.loads(
            app.handle(Request("GET", "/healthz")).body
        )["governance"]
    finally:
        app.close()
    if baseline is None:  # tiny runs
        baseline = samples[0] if samples else final
    return _result(
        mode="inline",
        requests=requests,
        duration=perf_counter() - start,
        baseline=baseline,
        final=final,
        samples=samples,
        governance=governance,
        seed=seed,
        json_out=json_out,
    )


def run_soak_http(
    duration: float = 15.0,
    workers: int = 1,
    request_deadline: float = 10.0,
    budget_nodes: int = 20_000,
    budget_bytes: int = 64 << 20,
    seed: int = 0,
    json_out: "str | None" = None,
) -> dict:
    """Wall-clock-bounded soak of a real watchdog-enabled HTTP server."""
    from http.client import HTTPConnection
    from time import perf_counter

    from repro.service import DDToolServer, ServiceConfig

    config = ServiceConfig(
        port=0,
        workers=workers,
        cache_capacity=256,
        max_sessions=32,
        request_deadline=request_deadline,
        budget_nodes=budget_nodes,
        budget_bytes=budget_bytes,
    )
    requests = 0
    samples = []
    baseline = None
    with DDToolServer(config) as server:
        host, port = server.address
        connection = HTTPConnection(host, port, timeout=60)
        cycle = _payload_cycle(seed)
        start = perf_counter()
        # Baseline after the request-count warmup, or — on a machine too
        # slow to get there — after 60% of the wall budget, so *some*
        # steady-state window is always measured.
        warmup_deadline = start + duration * 0.6
        while perf_counter() - start < duration:
            kind, payload = next(cycle)
            _drive_http(connection, kind, payload)
            requests += 1
            if baseline is None and (
                requests >= WARMUP_REQUESTS
                or perf_counter() >= warmup_deadline
            ):
                baseline = tree_rss_bytes()
            if requests % 25 == 0:
                samples.append(tree_rss_bytes())
        elapsed = perf_counter() - start
        connection.close()
        final = tree_rss_bytes()
        governance = _healthz_governance(host, port)
    if baseline is None:
        baseline = samples[0] if samples else final
    return _result(
        mode="http",
        requests=requests,
        duration=elapsed,
        baseline=baseline,
        final=final,
        samples=samples,
        governance=governance,
        seed=seed,
        json_out=json_out,
    )


def _healthz_governance(host: str, port: int) -> dict:
    from http.client import HTTPConnection

    connection = HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", "/healthz")
        return json.loads(connection.getresponse().read())["governance"]
    finally:
        connection.close()


def _result(mode, requests, duration, baseline, final, samples, governance,
            seed=0, json_out=None) -> dict:
    growth_pct = (
        100.0 * (final - baseline) / baseline if baseline else 0.0
    )
    result = {
        "mode": mode,
        "requests": requests,
        "seed": seed,
        "duration_seconds": round(duration, 3),
        "requests_per_second": round(requests / duration, 1) if duration else 0.0,
        "rss_baseline_bytes": baseline,
        "rss_final_bytes": final,
        "rss_growth_pct": round(growth_pct, 3),
        "rss_samples_bytes": samples,
        "governance": governance,
    }
    _bench_common.write_json_result("soak", result, json_out=json_out)
    return result


# ----------------------------------------------------------------------
# pytest entry (small smoke run; the full soak runs as a script)
# ----------------------------------------------------------------------
def test_soak_smoke():
    result = run_soak_inline(requests=600)
    print(
        f"\nsoak smoke: {result['requests']} requests in "
        f"{result['duration_seconds']}s, RSS growth "
        f"{result['rss_growth_pct']}% (governance: {result['governance']})"
    )
    # Lenient bound for the tiny run: allocator noise dominates at this
    # scale; the 5% bar applies to the full 10k-request script run.
    assert result["rss_growth_pct"] < 25.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help="mixed requests to issue (inline mode)")
    parser.add_argument("--http", action="store_true",
                        help="soak a real HTTP server instead of the "
                             "in-process app")
    parser.add_argument("--duration", type=float, default=15.0,
                        help="wall-clock seconds to run (HTTP mode)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (HTTP mode)")
    parser.add_argument("--request-deadline", type=float, default=10.0,
                        help="watchdog deadline per request (HTTP mode)")
    parser.add_argument("--budget-nodes", type=int, default=20_000)
    parser.add_argument("--budget-bytes", type=int, default=64 << 20)
    parser.add_argument("--threshold-pct", type=float,
                        default=DEFAULT_THRESHOLD_PCT,
                        help="maximum tolerated RSS growth after warmup")
    _bench_common.add_common_arguments(parser)
    args = parser.parse_args(argv)

    if args.http:
        result = run_soak_http(
            duration=args.duration,
            workers=args.workers,
            request_deadline=args.request_deadline,
            budget_nodes=args.budget_nodes,
            budget_bytes=args.budget_bytes,
            seed=args.seed,
            json_out=args.json_out,
        )
    else:
        result = run_soak_inline(
            requests=args.requests,
            budget_nodes=args.budget_nodes,
            budget_bytes=args.budget_bytes,
            seed=args.seed,
            json_out=args.json_out,
        )
    print(json.dumps(result, indent=2))
    if result["rss_growth_pct"] > args.threshold_pct:
        print(
            f"FAIL: RSS grew {result['rss_growth_pct']}% "
            f"(threshold {args.threshold_pct}%)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: RSS growth {result['rss_growth_pct']}% over "
        f"{result['requests']} requests "
        f"(threshold {args.threshold_pct}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
