"""Throughput/latency benchmark of the service's ``/simulate`` endpoint.

For 1, 4 and 8 worker processes a loopback server is driven by 8
concurrent clients in two regimes:

* **uncached** — every request carries a distinct circuit, so each one
  pays the full pipeline (parse → worker-pool simulation);
* **cached** — all requests are identical, so after the first response
  everything is served straight from the LRU result cache.

Reported per configuration: requests/second and p50/p99 latency.  The
cached regime should be far faster and essentially independent of the
worker count — that is the point of keying the cache on the canonical
circuit digest.  Results land in ``benchmarks/results/service.json``.

Two further suites compare the transports head to head:

* ``test_frontend_comparison`` runs the same two regimes against both
  the ``eventloop`` reactor and the legacy ``threaded`` server and
  asserts the reactor does not regress throughput;
* ``test_eventloop_saturation`` holds 1000 concurrent keep-alive
  connections open against the reactor with the multi-process load
  generator (:mod:`repro.service.loadgen`) — the regime where
  thread-per-connection falls over — and publishes p50/p99 in the
  campaign artifact format (``benchmarks/results/service_saturation.json``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from http.client import HTTPConnection
from time import perf_counter

import pytest

from repro.qc import library
from repro.service import DDToolServer, ServiceConfig
from repro.service.loadgen import load_artifact, run_load

CLIENTS = 8
UNCACHED_PER_CLIENT = 6
CACHED_PER_CLIENT = 25
WORKER_COUNTS = (1, 4, 8)

_fresh_circuit_ids = itertools.count()


def _fresh_qasm() -> str:
    """A circuit no previous request has sent (defeats the result cache)."""
    seed = next(_fresh_circuit_ids)
    return library.random_circuit(3, 12, seed=seed).to_qasm()


def _drive(server, payloads) -> list:
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=60)
    latencies = []
    for payload in payloads:
        body = json.dumps(payload).encode()
        start = perf_counter()
        connection.request("POST", "/simulate", body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        data = response.read()
        latencies.append(perf_counter() - start)
        assert response.status == 200, data
    connection.close()
    return latencies


def _measure(server, payload_lists) -> dict:
    all_latencies: list = []
    collected = [None] * len(payload_lists)

    def worker(index):
        collected[index] = _drive(server, payload_lists[index])

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(len(payload_lists))
    ]
    start = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = perf_counter() - start
    for chunk in collected:
        all_latencies.extend(chunk)
    all_latencies.sort()
    total = len(all_latencies)
    return {
        "requests": total,
        "rps": total / wall if wall else 0.0,
        "p50_ms": 1e3 * all_latencies[int(0.50 * (total - 1))],
        "p99_ms": 1e3 * all_latencies[int(0.99 * (total - 1))],
    }


def test_service_throughput(report):
    rows = ["workers  regime    requests     req/s   p50[ms]   p99[ms]"]
    results = {}
    for workers in WORKER_COUNTS:
        config = ServiceConfig(port=0, workers=workers, cache_capacity=1024)
        with DDToolServer(config) as server:
            uncached_payloads = [
                [{"qasm": _fresh_qasm(), "shots": 16, "seed": 1}
                 for _ in range(UNCACHED_PER_CLIENT)]
                for _ in range(CLIENTS)
            ]
            uncached = _measure(server, uncached_payloads)

            shared = {"qasm": library.qft(3).to_qasm(), "shots": 16, "seed": 1}
            _drive(server, [shared])  # warm the cache once
            cached_payloads = [
                [dict(shared) for _ in range(CACHED_PER_CLIENT)]
                for _ in range(CLIENTS)
            ]
            cached = _measure(server, cached_payloads)

        results[workers] = {"uncached": uncached, "cached": cached}
        for regime, stats in (("uncached", uncached), ("cached", cached)):
            rows.append(
                f"{workers:7d}  {regime:8s}  {stats['requests']:8d}  "
                f"{stats['rps']:8.1f}  {stats['p50_ms']:8.2f}  "
                f"{stats['p99_ms']:8.2f}"
            )

        # The cache must dominate recomputation at every worker count.
        assert cached["rps"] > uncached["rps"]
        assert cached["p50_ms"] < uncached["p50_ms"]

    rows.append("---")
    rows.append(json.dumps(results, indent=2, sort_keys=True))
    report("service", rows)


# ----------------------------------------------------------------------
# streaming overhead: uncached rps with 0 vs 8 metric-stream subscribers
# ----------------------------------------------------------------------
STREAM_SUBSCRIBERS = 8
STREAM_OVERHEAD_BUDGET = 0.10  # open SSE streams may cost < 10% rps


def _attach_metric_streams(server, count, stop):
    """Open ``count`` /stream/metrics subscribers, each drained by a thread."""
    connections, threads = [], []
    host, port = server.address
    for _ in range(count):
        connection = HTTPConnection(host, port, timeout=60)
        connection.request("GET", "/stream/metrics")
        response = connection.getresponse()
        assert response.status == 200, response.read()
        connections.append(connection)

        def drain(resp=response):
            try:
                while not stop.is_set():
                    if not resp.readline():
                        return
            except OSError:
                return

        thread = threading.Thread(target=drain)
        thread.start()
        threads.append(thread)
    return connections, threads


def test_streaming_overhead(report):
    """8 live metric streams must not tax /simulate by more than 10%."""
    config = ServiceConfig(port=0, workers=4, cache_capacity=1024,
                           metrics_interval=0.5)
    rows = [f"subscribers  requests     req/s   p50[ms]   p99[ms]"]
    with DDToolServer(config) as server:
        def uncached_payloads():
            return [
                [{"qasm": _fresh_qasm(), "shots": 16, "seed": 1}
                 for _ in range(UNCACHED_PER_CLIENT)]
                for _ in range(CLIENTS)
            ]

        _measure(server, uncached_payloads())  # warm up the pool
        baseline = _measure(server, uncached_payloads())

        stop = threading.Event()
        connections, threads = _attach_metric_streams(
            server, STREAM_SUBSCRIBERS, stop
        )
        try:
            streaming = _measure(server, uncached_payloads())
        finally:
            stop.set()
            server.app.events.close()  # wake the blocked stream readers
            for thread in threads:
                thread.join(timeout=30)
            for connection in connections:
                connection.close()

    for label, stats in ((0, baseline), (STREAM_SUBSCRIBERS, streaming)):
        rows.append(
            f"{label:11d}  {stats['requests']:8d}  {stats['rps']:8.1f}  "
            f"{stats['p50_ms']:8.2f}  {stats['p99_ms']:8.2f}"
        )
    overhead = 1.0 - streaming["rps"] / baseline["rps"]
    rows.append(f"overhead: {100 * overhead:.1f}% "
                f"(budget {100 * STREAM_OVERHEAD_BUDGET:.0f}%)")
    rows.append("---")
    rows.append(json.dumps({
        "baseline": baseline, "streaming": streaming,
        "subscribers": STREAM_SUBSCRIBERS, "overhead": overhead,
    }, indent=2, sort_keys=True))
    report("service_streaming", rows)
    assert overhead < STREAM_OVERHEAD_BUDGET, (
        f"{STREAM_SUBSCRIBERS} metric streams cost {100 * overhead:.1f}% rps"
    )


# ----------------------------------------------------------------------
# front-end comparison: eventloop reactor vs legacy threaded server
# ----------------------------------------------------------------------
COMPARISON_WORKERS = 4
COMPARISON_TOLERANCE = 0.90  # reactor must hold >= 90% of threaded rps


def test_frontend_comparison(report):
    """The reactor must match the threaded baseline at benchmark scale.

    8 clients is where thread-per-connection is *comfortable*; the
    reactor's advantage only shows at high connection counts (see the
    saturation test).  Here it just has to not regress.
    """
    rows = ["frontend   regime    requests     req/s   p50[ms]   p99[ms]"]
    stats = {}
    for frontend in ("threaded", "eventloop"):
        config = ServiceConfig(
            port=0, workers=COMPARISON_WORKERS, cache_capacity=1024,
            frontend=frontend,
        )
        with DDToolServer(config) as server:
            uncached = _measure(server, [
                [{"qasm": _fresh_qasm(), "shots": 16, "seed": 1}
                 for _ in range(UNCACHED_PER_CLIENT)]
                for _ in range(CLIENTS)
            ])
            shared = {"qasm": library.qft(3).to_qasm(), "shots": 16, "seed": 1}
            _drive(server, [shared])
            cached = _measure(server, [
                [dict(shared) for _ in range(CACHED_PER_CLIENT)]
                for _ in range(CLIENTS)
            ])
        stats[frontend] = {"uncached": uncached, "cached": cached}
        for regime, entry in (("uncached", uncached), ("cached", cached)):
            rows.append(
                f"{frontend:9s}  {regime:8s}  {entry['requests']:8d}  "
                f"{entry['rps']:8.1f}  {entry['p50_ms']:8.2f}  "
                f"{entry['p99_ms']:8.2f}"
            )
    rows.append("---")
    rows.append(json.dumps(stats, indent=2, sort_keys=True))
    report("service_frontends", rows)

    for regime in ("uncached", "cached"):
        reactor = stats["eventloop"][regime]["rps"]
        threaded = stats["threaded"][regime]["rps"]
        assert reactor >= COMPARISON_TOLERANCE * threaded, (
            f"{regime}: eventloop {reactor:.1f} req/s vs "
            f"threaded {threaded:.1f} req/s "
            f"(floor {COMPARISON_TOLERANCE:.0%})"
        )


# ----------------------------------------------------------------------
# saturation: 1000 concurrent connections against the reactor
# ----------------------------------------------------------------------
SATURATION_CONNECTIONS = 1000
SATURATION_DURATION = 6.0
SATURATION_PROCESSES = 4


@pytest.mark.slow
def test_eventloop_saturation(report, results_dir):
    """Hold 1000 keep-alive connections open and keep answering.

    This is the load that motivates the reactor: ~1000 threads would
    thrash; one selector thread plus a bounded handler pool must sustain
    the cached regime with zero dropped connections.
    """
    config = ServiceConfig(port=0, workers=2, cache_capacity=4096)
    with DDToolServer(config) as server:
        host, port = server.address
        result = run_load(
            host, port,
            connections=SATURATION_CONNECTIONS,
            duration=SATURATION_DURATION,
            processes=SATURATION_PROCESSES,
            mode="cached",
        )
    rows = [
        f"connections: {result.connections} "
        f"({result.processes} generator processes, "
        f"{result.duration_s:.0f}s, cached regime)",
        f"requests: {result.requests}  errors: {result.errors}  "
        f"reconnects: {result.reconnects}",
        f"rps: {result.rps:.1f}  p50: {result.p50_ms:.2f}ms  "
        f"p95: {result.p95_ms:.2f}ms  p99: {result.p99_ms:.2f}ms",
        "---",
        json.dumps(result.as_dict(), indent=2, sort_keys=True),
    ]
    report("service_saturation", rows)

    artifact = load_artifact([result], frontend="eventloop",
                             campaign="service-saturation")
    with open(os.path.join(results_dir, "service_saturation.json"), "w",
              encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert result.errors == 0, f"{result.errors} dropped/errored connections"
    assert result.requests > SATURATION_CONNECTIONS, (
        "fewer completed requests than connections — the reactor stalled"
    )
