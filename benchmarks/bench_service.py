"""Throughput/latency benchmark of the service's ``/simulate`` endpoint.

For 1, 4 and 8 worker processes a loopback server is driven by 8
concurrent clients in two regimes:

* **uncached** — every request carries a distinct circuit, so each one
  pays the full pipeline (parse → worker-pool simulation);
* **cached** — all requests are identical, so after the first response
  everything is served straight from the LRU result cache.

Reported per configuration: requests/second and p50/p99 latency.  The
cached regime should be far faster and essentially independent of the
worker count — that is the point of keying the cache on the canonical
circuit digest.  Results land in ``benchmarks/results/service.json``.
"""

from __future__ import annotations

import itertools
import json
import threading
from http.client import HTTPConnection
from time import perf_counter

from repro.qc import library
from repro.service import DDToolServer, ServiceConfig

CLIENTS = 8
UNCACHED_PER_CLIENT = 6
CACHED_PER_CLIENT = 25
WORKER_COUNTS = (1, 4, 8)

_fresh_circuit_ids = itertools.count()


def _fresh_qasm() -> str:
    """A circuit no previous request has sent (defeats the result cache)."""
    seed = next(_fresh_circuit_ids)
    return library.random_circuit(3, 12, seed=seed).to_qasm()


def _drive(server, payloads) -> list:
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=60)
    latencies = []
    for payload in payloads:
        body = json.dumps(payload).encode()
        start = perf_counter()
        connection.request("POST", "/simulate", body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        data = response.read()
        latencies.append(perf_counter() - start)
        assert response.status == 200, data
    connection.close()
    return latencies


def _measure(server, payload_lists) -> dict:
    all_latencies: list = []
    collected = [None] * len(payload_lists)

    def worker(index):
        collected[index] = _drive(server, payload_lists[index])

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(len(payload_lists))
    ]
    start = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = perf_counter() - start
    for chunk in collected:
        all_latencies.extend(chunk)
    all_latencies.sort()
    total = len(all_latencies)
    return {
        "requests": total,
        "rps": total / wall if wall else 0.0,
        "p50_ms": 1e3 * all_latencies[int(0.50 * (total - 1))],
        "p99_ms": 1e3 * all_latencies[int(0.99 * (total - 1))],
    }


def test_service_throughput(report):
    rows = ["workers  regime    requests     req/s   p50[ms]   p99[ms]"]
    results = {}
    for workers in WORKER_COUNTS:
        config = ServiceConfig(port=0, workers=workers, cache_capacity=1024)
        with DDToolServer(config) as server:
            uncached_payloads = [
                [{"qasm": _fresh_qasm(), "shots": 16, "seed": 1}
                 for _ in range(UNCACHED_PER_CLIENT)]
                for _ in range(CLIENTS)
            ]
            uncached = _measure(server, uncached_payloads)

            shared = {"qasm": library.qft(3).to_qasm(), "shots": 16, "seed": 1}
            _drive(server, [shared])  # warm the cache once
            cached_payloads = [
                [dict(shared) for _ in range(CACHED_PER_CLIENT)]
                for _ in range(CLIENTS)
            ]
            cached = _measure(server, cached_payloads)

        results[workers] = {"uncached": uncached, "cached": cached}
        for regime, stats in (("uncached", uncached), ("cached", cached)):
            rows.append(
                f"{workers:7d}  {regime:8s}  {stats['requests']:8d}  "
                f"{stats['rps']:8.1f}  {stats['p50_ms']:8.2f}  "
                f"{stats['p99_ms']:8.2f}"
            )

        # The cache must dominate recomputation at every worker count.
        assert cached["rps"] > uncached["rps"]
        assert cached["p50_ms"] < uncached["p50_ms"]

    rows.append("---")
    rows.append(json.dumps(results, indent=2, sort_keys=True))
    report("service", rows)


# ----------------------------------------------------------------------
# streaming overhead: uncached rps with 0 vs 8 metric-stream subscribers
# ----------------------------------------------------------------------
STREAM_SUBSCRIBERS = 8
STREAM_OVERHEAD_BUDGET = 0.10  # open SSE streams may cost < 10% rps


def _attach_metric_streams(server, count, stop):
    """Open ``count`` /stream/metrics subscribers, each drained by a thread."""
    connections, threads = [], []
    host, port = server.address
    for _ in range(count):
        connection = HTTPConnection(host, port, timeout=60)
        connection.request("GET", "/stream/metrics")
        response = connection.getresponse()
        assert response.status == 200, response.read()
        connections.append(connection)

        def drain(resp=response):
            try:
                while not stop.is_set():
                    if not resp.readline():
                        return
            except OSError:
                return

        thread = threading.Thread(target=drain)
        thread.start()
        threads.append(thread)
    return connections, threads


def test_streaming_overhead(report):
    """8 live metric streams must not tax /simulate by more than 10%."""
    config = ServiceConfig(port=0, workers=4, cache_capacity=1024,
                           metrics_interval=0.5)
    rows = [f"subscribers  requests     req/s   p50[ms]   p99[ms]"]
    with DDToolServer(config) as server:
        def uncached_payloads():
            return [
                [{"qasm": _fresh_qasm(), "shots": 16, "seed": 1}
                 for _ in range(UNCACHED_PER_CLIENT)]
                for _ in range(CLIENTS)
            ]

        _measure(server, uncached_payloads())  # warm up the pool
        baseline = _measure(server, uncached_payloads())

        stop = threading.Event()
        connections, threads = _attach_metric_streams(
            server, STREAM_SUBSCRIBERS, stop
        )
        try:
            streaming = _measure(server, uncached_payloads())
        finally:
            stop.set()
            server.app.events.close()  # wake the blocked stream readers
            for thread in threads:
                thread.join(timeout=30)
            for connection in connections:
                connection.close()

    for label, stats in ((0, baseline), (STREAM_SUBSCRIBERS, streaming)):
        rows.append(
            f"{label:11d}  {stats['requests']:8d}  {stats['rps']:8.1f}  "
            f"{stats['p50_ms']:8.2f}  {stats['p99_ms']:8.2f}"
        )
    overhead = 1.0 - streaming["rps"] / baseline["rps"]
    rows.append(f"overhead: {100 * overhead:.1f}% "
                f"(budget {100 * STREAM_OVERHEAD_BUDGET:.0f}%)")
    rows.append("---")
    rows.append(json.dumps({
        "baseline": baseline, "streaming": streaming,
        "subscribers": STREAM_SUBSCRIBERS, "overhead": overhead,
    }, indent=2, sort_keys=True))
    report("service_streaming", rows)
    assert overhead < STREAM_OVERHEAD_BUDGET, (
        f"{STREAM_SUBSCRIBERS} metric streams cost {100 * overhead:.1f}% rps"
    )
