"""Expectation values — observables on decision diagrams vs dense algebra.

Pauli expectations cost one matrix-vector product and one inner product on
DDs; the dense reference pays Theta(4^n) per term.  Also regenerates the
Bell-state correlation table (<ZZ> = <XX> = 1, <YY> = -1 — paper Ex. 2's
perfect correlations as expectation values).
"""

import math

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.dd.expectation import expectation_hamiltonian, expectation_pauli
from repro.qc import library
from repro.simulation import DDSimulator

INV_SQRT2 = 1.0 / math.sqrt(2.0)


def test_bell_correlation_table(benchmark, report):
    def run():
        package = DDPackage()
        bell = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
        return {
            string: expectation_pauli(package, bell, string)
            for string in ("ZZ", "XX", "YY", "ZI", "IZ", "XI")
        }

    values = benchmark(run)
    assert values["ZZ"] == pytest.approx(1.0)
    assert values["XX"] == pytest.approx(1.0)
    assert values["YY"] == pytest.approx(-1.0)
    assert values["ZI"] == pytest.approx(0.0)
    report(
        "expectation_bell",
        ["Bell-state correlations (Ex. 2 as expectation values):"]
        + [f"  <{name}> = {value:+.3f}" for name, value in values.items()],
    )


@pytest.mark.parametrize("num_qubits", [6, 10, 14])
def test_dd_ising_energy(benchmark, num_qubits):
    """<H> of the Ising chain on a GHZ state: 2(n-1) ZZ/X terms on DDs."""
    package = DDPackage()
    simulator = DDSimulator(library.ghz_state(num_qubits), package=package)
    simulator.run_all()
    state = simulator.state
    terms = {}
    for qubit in range(num_qubits - 1):
        string = ["I"] * num_qubits
        string[qubit] = "Z"
        string[qubit + 1] = "Z"
        terms["".join(string)] = -1.0
    for qubit in range(num_qubits):
        string = ["I"] * num_qubits
        string[qubit] = "X"
        terms["".join(string)] = -0.5

    energy = benchmark(expectation_hamiltonian, package, state, terms)
    # GHZ: every <Z_i Z_{i+1}> = 1, every <X_i> = 0.
    assert energy == pytest.approx(-(num_qubits - 1))


@pytest.mark.parametrize("num_qubits", [6, 10])
def test_dense_ising_energy(benchmark, num_qubits):
    """The dense baseline for the same energy computation."""
    simulator = DDSimulator(library.ghz_state(num_qubits))
    simulator.run_all()
    vector = simulator.statevector()
    z = np.diag([1.0, -1.0])
    x = np.array([[0.0, 1.0], [1.0, 0.0]])

    def embed(matrix, target):
        result = np.ones((1, 1))
        for level in range(num_qubits - 1, -1, -1):
            result = np.kron(result, matrix if level == target else np.eye(2))
        return result

    def run():
        energy = 0.0
        for qubit in range(num_qubits - 1):
            term = embed(z, qubit) @ embed(z, qubit + 1)
            energy += -1.0 * np.vdot(vector, term @ vector).real
        for qubit in range(num_qubits):
            energy += -0.5 * np.vdot(vector, embed(x, qubit) @ vector).real
        return energy

    energy = benchmark(run)
    assert energy == pytest.approx(-(num_qubits - 1))
