"""Sec. III's compactness claims — DD size versus the exponential vectors.

The paper motivates DDs by "the inherent tensor product structure of many
quantum states and redundancies in their description" (compact in many
cases) while acknowledging the exponential worst case.  The sweep itself
is declared in ``benchmarks/campaigns/scaling.json`` and executed once
through the campaign runner (:mod:`repro.campaign`); the tests here only
assert the paper's claims over the aggregated artifact:

* node counts of GHZ / W / product / QFT / random states versus the 2^n
  dense representation;
* the simulation-runtime crossover between the DD simulator and the dense
  numpy baseline.
"""

import numpy as np
import pytest

from repro.qc import library
from repro.simulation import DDSimulator, StatevectorSimulator

import _bench_common


@pytest.fixture(scope="module")
def scaling_artifact(bench_seed):
    return _bench_common.run_campaign_spec(
        "scaling.json", seed_offset=bench_seed
    )


def test_state_compactness_table(report, scaling_artifact):
    rows = _compactness_rows(scaling_artifact)
    for n, dense, ghz, w, product in rows:
        assert ghz == 2 * n - 1
        assert w <= n * (n + 1) // 2  # W-state DDs stay polynomial
    report(
        "scaling_state_compactness",
        ["  n     2^n   GHZ nodes   W nodes   |+>^n nodes"]
        + [
            f"{n:3d}  {dense:6d}  {ghz:9d}  {w:8d}  {product:11d}"
            for n, dense, ghz, w, product in rows
        ]
        + ["", "Sec. III-A: structured states stay linear/polynomial on DDs."],
    )


def _compactness_rows(artifact):
    ghz = _bench_common.artifact_cells(artifact, label="ghz")
    w = _bench_common.artifact_cells(artifact, label="w")
    return [
        (
            n,
            2**n,
            ghz[n]["metrics"]["final_nodes"],
            w[n]["metrics"]["final_nodes"],
            n,  # |+>^n: one node per level
        )
        for n in (4, 8, 12, 16)
    ]


def test_worst_case_table(report, scaling_artifact):
    """The exponential worst case: QFT matrices and random dense states."""
    qft = _bench_common.artifact_cells(scaling_artifact, label="qft-matrix")
    dense = _bench_common.artifact_cells(scaling_artifact, label="dense_random")

    rows = [
        (
            n,
            qft[n]["metrics"]["final_nodes"],
            (4**n - 1) // 3,
            dense[n]["metrics"]["final_nodes"],
            2**n - 1,
        )
        for n in (2, 3, 4, 5)
    ]
    for n, qft_nodes, qft_bound, random_nodes, vec_bound in rows:
        assert qft_nodes == qft_bound
        assert random_nodes == vec_bound
    report(
        "scaling_worst_case",
        ["  n   QFT-matrix nodes   (4^n-1)/3   random-state nodes   2^n - 1"]
        + [
            f"{n:3d}  {qft:16d}  {qb:10d}  {rnd:18d}  {vb:8d}"
            for n, qft, qb, rnd, vb in rows
        ]
        + ["", "Sec. III: decision diagrams are still exponential in the "
           "worst case."],
    )


@pytest.mark.parametrize("num_qubits", [10, 14, 18])
def test_dd_ghz_runtime(benchmark, num_qubits):
    def run():
        simulator = DDSimulator(library.ghz_state(num_qubits))
        simulator.run_all()
        return simulator

    simulator = benchmark(run)
    assert simulator.node_count() == 2 * num_qubits - 1


@pytest.mark.parametrize("num_qubits", [8, 10])
def test_dense_ghz_runtime(benchmark, num_qubits):
    """Dense baseline: cost doubles per qubit regardless of structure."""

    def run():
        simulator = StatevectorSimulator(library.ghz_state(num_qubits))
        simulator.run()
        return simulator

    simulator = benchmark(run)
    assert abs(np.linalg.norm(simulator.state) - 1.0) < 1e-9


def test_crossover_report(report, scaling_artifact):
    """Who wins where: DD vs dense runtime for GHZ (structured) and random
    (unstructured) circuits, read off the campaign's timing columns."""
    series = {
        label: _bench_common.artifact_cells(scaling_artifact, label=label)
        for label in ("ghz", "ghz-dense", "random-dd", "random-dense")
    }

    rows = []
    for dd_label, dense_label, name in (
        ("ghz", "ghz-dense", "ghz"),
        ("random-dd", "random-dense", "random"),
    ):
        for n in (6, 8, 10):
            dd_ms = series[dd_label][n]["timing"]["wall_seconds"] * 1e3
            dense_ms = series[dense_label][n]["timing"]["wall_seconds"] * 1e3
            rows.append((name, n, dd_ms, dense_ms))
    lines = ["circuit        n    DD [ms]   dense [ms]   winner"]
    for name, n, dd_ms, dense_ms in rows:
        winner = "DD" if dd_ms < dense_ms else "dense"
        lines.append(
            f"{name:10s}  {n:3d}  {dd_ms:9.2f}  {dense_ms:11.2f}   {winner}"
        )
    lines += [
        "",
        "Expected shape: DDs win on structured circuits as n grows (the",
        "dense cost is Theta(4^n) per gate); dense numpy wins on small or",
        "unstructured instances where DDs degenerate to 2^n nodes but pay",
        "pointer-chasing overhead.",
    ]
    report("scaling_crossover", lines)
