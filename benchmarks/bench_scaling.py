"""Sec. III's compactness claims — DD size versus the exponential vectors.

The paper motivates DDs by "the inherent tensor product structure of many
quantum states and redundancies in their description" (compact in many
cases) while acknowledging the exponential worst case.  This module
quantifies both sides:

* node counts of GHZ / W / product / QFT / random states versus the 2^n
  dense representation;
* the simulation-runtime crossover between the DD simulator and the dense
  numpy baseline.
"""

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import DDSimulator, StatevectorSimulator


def _final_nodes(circuit) -> int:
    simulator = DDSimulator(circuit, seed=0)
    simulator.run_all()
    return simulator.node_count()


def test_state_compactness_table(benchmark, report):
    def build():
        rows = []
        for n in (4, 8, 12, 16):
            ghz = _final_nodes(library.ghz_state(n))
            w = _final_nodes(library.w_state(n))
            product = n  # |+>^n: one node per level
            rows.append((n, 2**n, ghz, w, product))
        return rows

    rows = benchmark(build)
    for n, dense, ghz, w, product in rows:
        assert ghz == 2 * n - 1
        assert w <= n * (n + 1) // 2  # W-state DDs stay polynomial
    report(
        "scaling_state_compactness",
        ["  n     2^n   GHZ nodes   W nodes   |+>^n nodes"]
        + [
            f"{n:3d}  {dense:6d}  {ghz:9d}  {w:8d}  {product:11d}"
            for n, dense, ghz, w, product in rows
        ]
        + ["", "Sec. III-A: structured states stay linear/polynomial on DDs."],
    )


def test_worst_case_table(benchmark, report):
    """The exponential worst case: QFT matrices and random dense states."""

    def build():
        rows = []
        for n in (2, 3, 4, 5):
            package = DDPackage()
            qft_nodes = package.node_count(
                circuit_to_dd(package, library.qft(n))
            )
            rng = np.random.default_rng(n)
            vector = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
            vector /= np.linalg.norm(vector)
            random_nodes = package.node_count(package.from_state_vector(vector))
            rows.append((n, qft_nodes, (4**n - 1) // 3, random_nodes, 2**n - 1))
        return rows

    rows = benchmark(build)
    for n, qft_nodes, qft_bound, random_nodes, vec_bound in rows:
        assert qft_nodes == qft_bound
        assert random_nodes == vec_bound
    report(
        "scaling_worst_case",
        ["  n   QFT-matrix nodes   (4^n-1)/3   random-state nodes   2^n - 1"]
        + [
            f"{n:3d}  {qft:16d}  {qb:10d}  {rnd:18d}  {vb:8d}"
            for n, qft, qb, rnd, vb in rows
        ]
        + ["", "Sec. III: decision diagrams are still exponential in the "
           "worst case."],
    )


@pytest.mark.parametrize("num_qubits", [10, 14, 18])
def test_dd_ghz_runtime(benchmark, num_qubits):
    def run():
        simulator = DDSimulator(library.ghz_state(num_qubits))
        simulator.run_all()
        return simulator

    simulator = benchmark(run)
    assert simulator.node_count() == 2 * num_qubits - 1


@pytest.mark.parametrize("num_qubits", [8, 10])
def test_dense_ghz_runtime(benchmark, num_qubits):
    """Dense baseline: cost doubles per qubit regardless of structure."""

    def run():
        simulator = StatevectorSimulator(library.ghz_state(num_qubits))
        simulator.run()
        return simulator

    simulator = benchmark(run)
    assert abs(np.linalg.norm(simulator.state) - 1.0) < 1e-9


def test_crossover_report(benchmark, report, bench_seed):
    """Who wins where: DD vs dense runtime for GHZ (structured) and random
    (unstructured) circuits."""
    import time

    benchmark.pedantic(lambda: _final_nodes(library.ghz_state(12)),
                       rounds=1, iterations=1)
    lines = ["circuit        n    DD [ms]   dense [ms]   winner"]
    for factory, label, sizes in (
        (library.ghz_state, "ghz", (6, 8, 10)),
        (lambda n: library.random_circuit(n, 4 * n, seed=bench_seed + 1),
         "random", (6, 8, 10)),
    ):
        for n in sizes:
            circuit = factory(n)
            start = time.perf_counter()
            simulator = DDSimulator(circuit, seed=0)
            simulator.run_all()
            dd_ms = (time.perf_counter() - start) * 1e3
            start = time.perf_counter()
            dense = StatevectorSimulator(circuit, seed=0)
            dense.run()
            dense_ms = (time.perf_counter() - start) * 1e3
            winner = "DD" if dd_ms < dense_ms else "dense"
            lines.append(
                f"{label:10s}  {n:3d}  {dd_ms:9.2f}  {dense_ms:11.2f}   {winner}"
            )
    lines += [
        "",
        "Expected shape: DDs win on structured circuits as n grows (the",
        "dense cost is Theta(4^n) per gate); dense numpy wins on small or",
        "unstructured instances where DDs degenerate to 2^n nodes but pay",
        "pointer-chasing overhead.",
    ]
    report("scaling_crossover", lines)
