"""Fig. 6 — the decision diagram of the three-qubit QFT functionality.

Regenerates the diagram (21 nodes: 1 + 4 + 16, every sub-matrix distinct),
writes the colored SVG rendering used in the paper's figure, and benchmarks
construction plus rendering for growing QFT sizes.
"""

import os

import pytest

from repro.dd import DDPackage
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.vis import DDStyle, dd_to_svg, dd_to_text


def test_fig6_qft3_dd(benchmark, report, results_dir):
    def build():
        package = DDPackage()
        return package, circuit_to_dd(package, library.qft(3))

    package, functionality = benchmark(build)
    nodes = package.node_count(functionality)
    assert nodes == 21  # paper Ex. 12: "21 nodes for the entire matrix"
    svg = dd_to_svg(
        package, functionality, DDStyle.colored(),
        title="QFT3 functionality (Fig. 6)",
    )
    path = os.path.join(results_dir, "fig6_qft3.svg")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    per_level = {}
    stack, seen = [functionality.node], set()
    while stack:
        node = stack.pop()
        if node.is_terminal or node in seen:
            continue
        seen.add(node)
        per_level[node.var] = per_level.get(node.var, 0) + 1
        stack.extend(edge.node for edge in node.edges)
    report(
        "fig6_qft3_dd",
        [
            f"nodes: {nodes}   [paper Ex. 12: 21]",
            f"nodes per level: {dict(sorted(per_level.items(), reverse=True))}",
            f"colored rendering written to {path}",
            "diagram (text form):",
            dd_to_text(package, functionality),
        ],
    )


@pytest.mark.parametrize("num_qubits", [2, 3, 4, 5, 6])
def test_fig6_qft_dd_growth(benchmark, num_qubits, report):
    """The QFT matrix DD is worst-case dense: (4^n - 1)/3 nodes."""

    def build():
        package = DDPackage()
        return package, circuit_to_dd(package, library.qft(num_qubits))

    package, functionality = benchmark(build)
    nodes = package.node_count(functionality)
    expected = (4**num_qubits - 1) // 3
    assert nodes == expected
    report(
        f"fig6_qft_growth_n{num_qubits}",
        [f"QFT{num_qubits} functionality DD: {nodes} nodes "
         f"(= (4^{num_qubits}-1)/3; the QFT is a DD worst case)"],
    )
