"""Quantum error correction end-to-end: the 3-qubit repetition code.

The most integrative workload the library supports: encoding (CNOTs),
memory errors (bit-flip channels via the noise model), syndrome extraction
(CNOTs onto ancillas + measurements), classically-controlled correction,
and exact logical-fidelity evaluation (density DDs + partial trace).

Theory: with independent bit-flip probability ``p`` per data qubit, the
uncorrected qubit survives with probability ``1 - p`` while the corrected
logical qubit survives with ``1 - 3p^2 + 2p^3`` — better for every
``p < 1/2``.  The benchmark reproduces that curve exactly.
"""

import numpy as np
import pytest

from repro.dd import density
from repro.noise import NoiseModel, NoisySimulator, bit_flip
from repro.qc import QuantumCircuit

#: Lines: q0, q1 = syndrome ancillas; q2, q3, q4 = data (q4 carries |psi>).
_ANCILLA_A, _ANCILLA_B = 1, 0
_DATA = (4, 3, 2)


def repetition_code_circuit(correct: bool = True) -> QuantumCircuit:
    """Encode |0>, suffer one memory-error step, optionally correct."""
    circuit = QuantumCircuit(5, 2, name="repetition3")
    d0, d1, d2 = _DATA
    # Encode |psi> (here |0>) into the repetition code.
    circuit.cx(d0, d1)
    circuit.cx(d0, d2)
    circuit.barrier()
    # One memory step: an id gate per data qubit; the noise model turns
    # each into an independent bit-flip location.
    for qubit in _DATA:
        circuit.i(qubit)
    circuit.barrier()
    if correct:
        # Syndrome extraction: a = d0 + d1, b = d1 + d2.
        circuit.cx(d0, _ANCILLA_A)
        circuit.cx(d1, _ANCILLA_A)
        circuit.cx(d1, _ANCILLA_B)
        circuit.cx(d2, _ANCILLA_B)
        circuit.measure(_ANCILLA_A, 0)
        circuit.measure(_ANCILLA_B, 1)
        # Correction, conditioned on (c0, c1) = (a, b).
        circuit.gate("x", [d0], condition=([0, 1], 0b01))  # a=1, b=0
        circuit.gate("x", [d1], condition=([0, 1], 0b11))  # a=1, b=1
        circuit.gate("x", [d2], condition=([0, 1], 0b10))  # a=0, b=1
    # Decode.
    circuit.cx(d0, d1)
    circuit.cx(d0, d2)
    return circuit


def _logical_fidelity(probability: float, correct: bool) -> float:
    model = NoiseModel(per_gate={"id": bit_flip(probability)})
    simulator = NoisySimulator(repetition_code_circuit(correct), model)
    simulator.run()
    reduced = simulator.reduced_density_matrix([_DATA[0]])
    return float(reduced[0, 0].real)  # fidelity with the ideal |0>


@pytest.mark.parametrize("probability", [0.05, 0.1, 0.2])
def test_corrected_fidelity_matches_theory(benchmark, probability, report):
    fidelity = benchmark(_logical_fidelity, probability, True)
    theory = 1.0 - 3.0 * probability**2 + 2.0 * probability**3
    assert fidelity == pytest.approx(theory, abs=1e-9)
    report(
        f"repetition_corrected_p{probability}",
        [f"p={probability}: corrected logical fidelity {fidelity:.6f} "
         f"(theory 1 - 3p^2 + 2p^3 = {theory:.6f})"],
    )


def test_correction_beats_no_correction(benchmark, report):
    def build():
        rows = []
        for probability in (0.01, 0.05, 0.1, 0.2, 0.4, 0.5, 0.6):
            corrected = _logical_fidelity(probability, True)
            uncorrected = _logical_fidelity(probability, False)
            rows.append((probability, corrected, uncorrected))
        return rows

    rows = benchmark(build)
    for probability, corrected, uncorrected in rows:
        if probability < 0.5:
            assert corrected > uncorrected
        elif probability > 0.5:
            assert corrected < uncorrected  # beyond threshold QEC hurts
        # Uncorrected baseline is exactly 1 - p.
        assert uncorrected == pytest.approx(1.0 - probability, abs=1e-9)
    report(
        "repetition_code_curve",
        ["   p     corrected   uncorrected"]
        + [f"{p:5.2f}  {c:10.6f}  {u:11.6f}" for p, c, u in rows]
        + ["", "crossover at p = 1/2, exactly as theory predicts;",
           "all numbers exact (density DDs, no sampling)"],
    )


def test_syndrome_distribution(benchmark, report):
    """The syndrome outcome distribution under p = 0.2 bit flips."""
    model = NoiseModel(per_gate={"id": bit_flip(0.2)})

    def run():
        simulator = NoisySimulator(repetition_code_circuit(True), model)
        simulator.run()
        return simulator.classical_distribution()

    distribution = benchmark(run)
    assert abs(sum(distribution.values()) - 1.0) < 1e-9
    # No-error syndrome (00) dominates: (1-p)^3 + ... contributions.
    assert distribution["00"] > 0.5
    report(
        "repetition_syndromes",
        ["syndrome (c1 c0) distribution at p=0.2:"]
        + [f"  {key}: {value:.6f}" for key, value in sorted(distribution.items())],
    )
