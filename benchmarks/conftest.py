"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` module regenerates one figure/example of the paper:
it asserts the paper's numbers (where the paper states any), prints the
regenerated rows/series, and records them under ``benchmarks/results/`` so
the run leaves auditable artifacts (referenced by EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
import sys

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)
if SRC_DIR not in sys.path:
    sys.path.insert(0, SRC_DIR)


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print a titled report block and persist it to results/<name>.txt
    and a machine-readable results/<name>.json (rows plus a snapshot of
    the observability default registry at report time)."""

    def _report(name: str, lines) -> None:
        rows = [str(line) for line in lines]
        text = "\n".join(rows)
        banner = f"==== {name} ===="
        print(f"\n{banner}\n{text}")
        with open(os.path.join(results_dir, f"{name}.txt"), "w",
                  encoding="utf-8") as handle:
            handle.write(banner + "\n" + text + "\n")

        from repro import obs
        from repro.obs.export import registry_snapshot

        payload = {
            "name": name,
            "rows": rows,
            "metrics": registry_snapshot(obs.default_registry())["metrics"],
        }
        with open(os.path.join(results_dir, f"{name}.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    return _report
