"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` module regenerates one figure/example of the paper:
it asserts the paper's numbers (where the paper states any), prints the
regenerated rows/series, and records them under ``benchmarks/results/`` so
the run leaves auditable artifacts (referenced by EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import sys

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.abspath(os.path.join(BENCH_DIR, os.pardir, "src"))
for extra in (SRC_DIR, BENCH_DIR):
    if extra not in sys.path:
        sys.path.insert(0, extra)

import _bench_common


def pytest_addoption(parser):
    parser.addoption(
        "--json-out",
        default=None,
        help="directory for JSON result payloads "
             "(default: benchmarks/results)",
    )
    parser.addoption(
        "--bench-seed",
        type=int,
        default=None,
        help="base seed for randomized benchmarks "
             "(default: $BENCH_SEED or 0)",
    )


@pytest.fixture(scope="session")
def bench_seed(request) -> int:
    """The base seed shared by every randomized benchmark."""
    value = request.config.getoption("--bench-seed")
    return _bench_common.default_seed() if value is None else int(value)


@pytest.fixture(scope="session")
def json_out_dir(request, results_dir) -> str:
    """Directory receiving the JSON payloads (``--json-out`` or results/)."""
    override = request.config.getoption("--json-out")
    if override is None:
        return results_dir
    os.makedirs(override, exist_ok=True)
    return override


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, json_out_dir):
    """Print a titled report block and persist it to results/<name>.txt
    and a machine-readable <name>.json (rows plus a snapshot of the
    observability default registry at report time) under ``--json-out``
    or benchmarks/results/."""

    def _report(name: str, lines) -> None:
        rows = [str(line) for line in lines]
        text = "\n".join(rows)
        banner = f"==== {name} ===="
        print(f"\n{banner}\n{text}")
        with open(os.path.join(results_dir, f"{name}.txt"), "w",
                  encoding="utf-8") as handle:
            handle.write(banner + "\n" + text + "\n")

        from repro import obs
        from repro.obs.export import registry_snapshot

        payload = {
            "name": name,
            "rows": rows,
            "metrics": registry_snapshot(obs.default_registry())["metrics"],
        }
        _bench_common.write_json_result(
            name, payload,
            json_out=os.path.join(json_out_dir, f"{name}.json"),
        )

    return _report
