"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` module regenerates one figure/example of the paper:
it asserts the paper's numbers (where the paper states any), prints the
regenerated rows/series, and records them under ``benchmarks/results/`` so
the run leaves auditable artifacts (referenced by EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print a titled report block and persist it to results/<name>.txt."""

    def _report(name: str, lines) -> None:
        text = "\n".join(str(line) for line in lines)
        banner = f"==== {name} ===="
        print(f"\n{banner}\n{text}")
        with open(os.path.join(results_dir, f"{name}.txt"), "w",
                  encoding="utf-8") as handle:
            handle.write(banner + "\n" + text + "\n")

    return _report
