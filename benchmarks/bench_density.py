"""Density matrices — exact mixed-state handling versus the tool's
probabilistic approximation (paper Sec. IV-B).

The paper's tool handles resets "in a probabilistic fashion" because the
partial trace "maps pure states to mixed states".  This module quantifies
the alternative built here: the exact reset channel and the branching
ensemble simulator, benchmarked against Monte-Carlo trajectory simulation.
"""

import numpy as np
import pytest

from repro.dd import DDPackage, density
from repro.qc import QuantumCircuit, library
from repro.simulation import DDSimulator, DensityMatrixSimulator


def _bell_with_reset():
    circuit = library.bell_pair()
    circuit.reset(0)
    return circuit


def test_exact_reset_channel(benchmark, report):
    """One exact run replaces many probabilistic trajectories."""

    def run():
        simulator = DensityMatrixSimulator(_bell_with_reset())
        simulator.run()
        return simulator

    simulator = benchmark(run)
    dense = simulator.density_matrix()
    expected = np.zeros((4, 4))
    expected[0, 0] = 0.5
    expected[2, 2] = 0.5
    assert np.allclose(dense, expected)
    purity = simulator.purity()
    report(
        "density_exact_reset",
        [
            "reset of one Bell qubit (paper Sec. IV-B):",
            f"exact ensemble state: diag = {np.real(np.diag(dense)).round(3)}",
            f"purity Tr(rho^2) = {purity:.3f}  (mixed, as the paper notes)",
            "branches needed: 1 (the channel is applied deterministically)",
        ],
    )


def test_monte_carlo_reset_baseline(benchmark, report):
    """The tool-style alternative: average many random trajectories."""
    circuit = _bell_with_reset()

    def run():
        accumulated = np.zeros((4, 4), dtype=complex)
        runs = 200
        for seed in range(runs):
            simulator = DDSimulator(circuit, seed=seed)
            simulator.run_all()
            vector = simulator.statevector()
            accumulated += np.outer(vector, vector.conj())
        return accumulated / runs

    averaged = benchmark(run)
    expected = np.zeros((4, 4))
    expected[0, 0] = 0.5
    expected[2, 2] = 0.5
    deviation = float(np.max(np.abs(averaged - expected)))
    assert deviation < 0.15  # statistical noise
    report(
        "density_monte_carlo_reset",
        [
            "200 probabilistic trajectories (the tool's approach), averaged:",
            f"max deviation from the exact mixed state: {deviation:.4f}",
            "(1/sqrt(N) convergence versus one exact density-matrix run)",
        ],
    )


def test_exact_measurement_distribution(benchmark, report):
    """Exact classical distribution of a measured random circuit."""
    circuit = QuantumCircuit(3, 3)
    circuit.h(2).cx(2, 1).ry(0.9, 0).cx(0, 1)
    circuit.measure(0, 0).measure(1, 1).measure(2, 2)

    def run():
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        return simulator

    simulator = benchmark(run)
    distribution = simulator.classical_distribution()
    assert abs(sum(distribution.values()) - 1.0) < 1e-9
    report(
        "density_distribution",
        ["exact outcome distribution (no sampling noise):"]
        + [f"  {key}: {value:.6f}" for key, value in sorted(distribution.items())]
        + [f"branches: {len(simulator.branches)}"],
    )


@pytest.mark.parametrize("num_qubits", [3, 5, 7])
def test_density_unitary_evolution_runtime(benchmark, num_qubits):
    """rho -> U rho U^t for the QFT: two matrix-matrix DD products."""
    package = DDPackage()
    from repro.qc.dd_builder import circuit_to_dd

    unitary = circuit_to_dd(package, library.qft(num_qubits))
    rho = density.density_from_state(package, package.zero_state(num_qubits))

    evolved = benchmark(density.apply_unitary, package, rho, unitary)
    assert abs(density.trace(package, evolved) - 1.0) < 1e-9


def test_partial_trace_runtime(benchmark):
    """Partial trace of a 10-qubit GHZ density matrix down to 2 qubits."""
    package = DDPackage()
    simulator = DDSimulator(library.ghz_state(10), package=package)
    simulator.run_all()
    rho = density.density_from_state(package, simulator.state)

    reduced = benchmark(density.partial_trace, package, rho, list(range(8)))
    dense = package.to_matrix(reduced, 2)
    expected = np.zeros((4, 4))
    expected[0, 0] = 0.5
    expected[3, 3] = 0.5
    assert np.allclose(dense, expected)
