"""Ablations for the design choices DESIGN.md calls out.

The package-option sweep (normalization scheme, structural sharing,
complex tolerance) is declared once in ``benchmarks/campaigns/ablation.json``
and executed through the campaign runner; the tests assert over the
aggregated artifact.  Only the compute-table memoization ablation remains
a hand-rolled micro-benchmark — warm-vs-cold cache timing needs the
``benchmark`` fixture around a single in-process call, which a campaign
cell (cold package per cell, by design) cannot express.
"""

import pytest

from repro.dd import DDPackage
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd

import _bench_common


@pytest.fixture(scope="module")
def ablation_artifact(bench_seed):
    return _bench_common.run_campaign_spec(
        "ablation.json", seed_offset=bench_seed
    )


@pytest.mark.parametrize("package_label", ["l2-default", "max-magnitude"])
def test_ablation_sampling_scheme(ablation_artifact, package_label, report):
    """Sampling 500 shots from a 16-qubit GHZ state under both schemes.

    The L2 scheme (paper footnote 3) makes sampling a local coin flip per
    node; max-magnitude needs subtree-norm computations.  Both must agree
    on the physics: GHZ collapses to all-zeros or all-ones only.
    """
    cells = _bench_common.artifact_cells(
        ablation_artifact, label="ghz", package=package_label
    )
    counts = cells[16]["counts"]
    assert set(counts) == {"0" * 16, "1" * 16}
    report(
        f"ablation_sampling_{package_label}",
        [f"package: {package_label}; 500 shots from GHZ(16): "
         f"{dict(sorted(counts.items()))}"],
    )


def test_ablation_multiply_warm_cache(benchmark, report):
    """Repeated multiplication with a warm compute table."""
    package = DDPackage()
    functionality = circuit_to_dd(package, library.qft(5))
    state = package.zero_state(5)
    package.multiply(functionality, state)  # warm the caches

    benchmark(package.multiply, functionality, state)
    stats = package.stats()["mult-mv"]
    assert stats["hit_ratio"] > 0.5
    report(
        "ablation_multiply_warm",
        [f"warm multiply hit ratio: {stats['hit_ratio']:.3f}"],
    )


def test_ablation_multiply_cold_cache(benchmark):
    """The same multiplication with caches cleared before each call."""
    package = DDPackage()
    functionality = circuit_to_dd(package, library.qft(5))
    state = package.zero_state(5)

    def cold():
        package.clear_caches()
        return package.multiply(functionality, state)

    result = benchmark(cold)
    assert not result.is_zero


def test_ablation_sharing(ablation_artifact, report):
    """Unique-table sharing versus the raw decomposition-tree size.

    Without hash consing, the recursive sub-vector decomposition of
    Sec. III-A would materialize a full binary tree of 2^n - 1 internal
    nodes; sharing collapses repeated sub-vectors.
    """
    cells = _bench_common.artifact_cells(
        ablation_artifact, label="ghz", package="l2-default"
    )
    rows = [
        (n, cells[n]["metrics"]["final_nodes"], 2**n - 1)
        for n in (4, 8, 12)
    ]
    for n, shared, tree in rows:
        assert shared < tree
    report(
        "ablation_sharing",
        ["  n   shared nodes   decomposition tree"]
        + [f"{n:3d}  {shared:12d}  {tree:19d}" for n, shared, tree in rows],
    )


def test_ablation_tolerance_effect(ablation_artifact, report):
    """A too-small complex tolerance breaks node sharing after arithmetic.

    With the default tolerance, applying H twice returns exactly the
    canonical |0> node; with an extremely tight tolerance, rounding noise
    can create near-duplicate weights (more complex-table entries).
    """
    loose = _bench_common.artifact_cells(
        ablation_artifact, label="random", package="l2-default"
    )[4]["metrics"]["complex_entries"]
    tight = _bench_common.artifact_cells(
        ablation_artifact, label="random", package="tight-tol"
    )[4]["metrics"]["complex_entries"]
    assert loose <= tight
    report(
        "ablation_tolerance",
        [
            f"default tolerance: {loose} complex-table entries",
            f"tolerance 1e-15: {tight} complex-table entries",
        ],
    )
