"""Ablations for the design choices DESIGN.md calls out.

1. Vector normalization scheme: the L2 scheme (paper footnote 3) makes
   sampling a local coin flip per node; max-magnitude needs subtree-norm
   computations.
2. Compute-table memoization: warm versus cold multiplication.
3. Structural sharing: unique-table node counts versus the size of the
   plain decomposition tree.
"""

import numpy as np
import pytest

from repro.dd import DDPackage, NormalizationScheme
from repro.dd import sampling
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import DDSimulator


def _ghz_state(package, num_qubits):
    simulator = DDSimulator(
        library.ghz_state(num_qubits), package=package, seed=0
    )
    simulator.run_all()
    return simulator.state


@pytest.mark.parametrize("scheme", list(NormalizationScheme))
def test_ablation_sampling_scheme(benchmark, scheme, report):
    """Sampling 500 shots from a 16-qubit GHZ state under both schemes."""
    package = DDPackage(vector_scheme=scheme)
    state = _ghz_state(package, 16)
    rng = np.random.default_rng(3)

    counts = benchmark(sampling.sample_counts, package, state, 500, rng)
    assert set(counts) == {"0" * 16, "1" * 16}
    report(
        f"ablation_sampling_{scheme.value}",
        [f"scheme: {scheme.value}; 500 shots from GHZ(16): "
         f"{dict(sorted(counts.items()))}"],
    )


def test_ablation_multiply_warm_cache(benchmark, report):
    """Repeated multiplication with a warm compute table."""
    package = DDPackage()
    functionality = circuit_to_dd(package, library.qft(5))
    state = package.zero_state(5)
    package.multiply(functionality, state)  # warm the caches

    benchmark(package.multiply, functionality, state)
    stats = package.stats()["mult-mv"]
    assert stats["hit_ratio"] > 0.5
    report(
        "ablation_multiply_warm",
        [f"warm multiply hit ratio: {stats['hit_ratio']:.3f}"],
    )


def test_ablation_multiply_cold_cache(benchmark):
    """The same multiplication with caches cleared before each call."""
    package = DDPackage()
    functionality = circuit_to_dd(package, library.qft(5))
    state = package.zero_state(5)

    def cold():
        package.clear_caches()
        return package.multiply(functionality, state)

    result = benchmark(cold)
    assert not result.is_zero


def test_ablation_sharing(benchmark, report):
    """Unique-table sharing versus the raw decomposition-tree size.

    Without hash consing, the recursive sub-vector decomposition of
    Sec. III-A would materialize a full binary tree of 2^n - 1 internal
    nodes; sharing collapses repeated sub-vectors.
    """

    def build():
        rows = []
        for n in (4, 8, 12):
            package = DDPackage()
            state = _ghz_state(package, n)
            shared = package.node_count(state)
            tree = 2**n - 1
            rows.append((n, shared, tree))
        return rows

    rows = benchmark(build)
    for n, shared, tree in rows:
        assert shared < tree
    report(
        "ablation_sharing",
        ["  n   shared nodes   decomposition tree"]
        + [f"{n:3d}  {shared:12d}  {tree:19d}" for n, shared, tree in rows],
    )


def test_ablation_tolerance_effect(benchmark, report, bench_seed):
    """A too-small complex tolerance breaks node sharing after arithmetic.

    With the default tolerance, applying H twice returns exactly the
    canonical |0> node; with an extremely tight tolerance, rounding noise
    can create near-duplicate weights (more complex-table entries).
    """

    def run():
        results = []
        for tolerance in (1e-10, 1e-15):
            package = DDPackage(tolerance=tolerance)
            simulator = DDSimulator(
                library.random_circuit(4, 60, seed=bench_seed + 5),
                package=package
            )
            simulator.run_all()
            results.append((tolerance, len(package.complex_table)))
        return results

    results = benchmark(run)
    (loose_tol, loose_entries), (tight_tol, tight_entries) = results
    assert loose_entries <= tight_entries
    report(
        "ablation_tolerance",
        [
            f"tolerance {loose_tol:g}: {loose_entries} complex-table entries",
            f"tolerance {tight_tol:g}: {tight_entries} complex-table entries",
        ],
    )
