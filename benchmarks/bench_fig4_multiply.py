"""Fig. 4 / Ex. 9 — recursive multiplication and addition on diagrams.

Benchmarks DD matrix-vector multiplication (the simulation primitive)
against the dense numpy product for structured states, and regenerates the
recursive decomposition of Ex. 9.
"""

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd, gate_to_dd
from repro.qc.operations import GateOp
from repro.simulation.statevector import gate_unitary


def test_fig4_recursive_multiply(benchmark, report):
    """One multiply, decomposed as in Fig. 4: sub-products per successor."""
    package = DDPackage()
    m_dd = circuit_to_dd(package, library.qft(2))
    v_dd = package.zero_state(2)

    result = benchmark(package.multiply, m_dd, v_dd)
    dense = package.to_matrix(m_dd, 2) @ package.to_vector(v_dd, 2)
    assert np.allclose(package.to_vector(result, 2), dense)
    stats = package.stats()
    report(
        "fig4_multiply",
        [
            "U_QFT2 . |00> via recursive DD multiplication (Fig. 4)",
            f"result amplitudes: {np.round(package.to_vector(result, 2), 4)}",
            f"mult compute-table: {stats['mult-mv']['hits']:.0f} hits / "
            f"{stats['mult-mv']['misses']:.0f} misses",
            f"add  compute-table: {stats['add']['hits']:.0f} hits / "
            f"{stats['add']['misses']:.0f} misses",
        ],
    )


@pytest.mark.parametrize("num_qubits", [8, 12, 16])
def test_fig4_dd_apply_hadamard_layer(benchmark, num_qubits):
    """Applying H to one qubit of |0...0>: constant-size DD work."""
    package = DDPackage()
    gate = gate_to_dd(
        package, GateOp(gate="h", targets=(num_qubits // 2,)), num_qubits
    )
    state = package.zero_state(num_qubits)

    def apply():
        package.clear_caches()
        return package.multiply(gate, state)

    result = benchmark(apply)
    assert package.node_count(result) == num_qubits


@pytest.mark.parametrize("num_qubits", [6, 8, 10])
def test_fig4_dense_apply_hadamard_layer(benchmark, num_qubits):
    """The same single-gate application on the dense representation."""
    operation = GateOp(gate="h", targets=(num_qubits // 2,))
    unitary = gate_unitary(operation, num_qubits)
    state = np.zeros(1 << num_qubits, dtype=complex)
    state[0] = 1.0

    result = benchmark(lambda: unitary @ state)
    assert abs(np.linalg.norm(result) - 1.0) < 1e-9
