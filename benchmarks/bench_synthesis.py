"""Synthesis — the third design task of the paper's introduction.

Measures the DD-driven state-preparation synthesizer: gate counts track
the diagram's path structure (linear for basis/GHZ/product states,
quadratic for W states, exponential only for dense random states), and
every synthesized circuit is validated by simulating it back to the target.
"""

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.qc import library
from repro.simulation import DDSimulator
from repro.synthesis import prepare_state, synthesize_state_preparation


def _fidelity(circuit, target):
    simulator = DDSimulator(circuit)
    simulator.run_all()
    return abs(np.vdot(simulator.statevector(), target)) ** 2


def _state_of(circuit, package):
    simulator = DDSimulator(circuit, package=package, seed=0)
    simulator.run_all()
    return simulator.state, simulator.statevector()


def test_synthesis_gate_count_table(benchmark, report, bench_seed):
    def build():
        rows = []
        package = DDPackage()
        for n in (4, 6, 8):
            for label, factory in (
                ("ghz", library.ghz_state),
                ("w", library.w_state),
            ):
                state, dense = _state_of(factory(n), package)
                circuit = synthesize_state_preparation(package, state)
                assert _fidelity(circuit, dense) > 1 - 1e-9
                rows.append((label, n, circuit.num_gates))
            uniform = np.full(1 << n, (1 << n) ** -0.5)
            circuit = prepare_state(uniform)
            assert _fidelity(circuit, uniform) > 1 - 1e-9
            rows.append(("uniform", n, circuit.num_gates))
            rng = np.random.default_rng(bench_seed + n)
            dense = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
            dense /= np.linalg.norm(dense)
            circuit = prepare_state(dense)
            assert _fidelity(circuit, dense) > 1 - 1e-9
            rows.append(("random", n, circuit.num_gates))
        return rows

    rows = benchmark(build)
    table = {(label, n): gates for label, n, gates in rows}
    for n in (4, 6, 8):
        assert table[("ghz", n)] == n
        assert table[("uniform", n)] == n
        assert table[("w", n)] <= n * (n + 1) // 2
        assert table[("random", n)] >= (1 << n) - 1 - (1 << n) // 4
    report(
        "synthesis_gate_counts",
        ["state      n   gates   (2^n amplitudes)"]
        + [
            f"{label:8s} {n:3d}  {gates:6d}   ({1 << n})"
            for label, n, gates in rows
        ]
        + ["", "Gate count tracks DD path structure: linear for",
           "GHZ/product states, quadratic for W, exponential for dense",
           "random states (mirroring Sec. III's compactness story)."],
    )


@pytest.mark.parametrize("n", [6, 10, 14])
def test_synthesis_ghz_runtime(benchmark, n):
    package = DDPackage()
    simulator = DDSimulator(library.ghz_state(n), package=package)
    simulator.run_all()
    state = simulator.state

    circuit = benchmark(synthesize_state_preparation, package, state)
    assert circuit.num_gates == n


def test_synthesis_random_state_runtime(benchmark, bench_seed):
    rng = np.random.default_rng(bench_seed)
    dense = rng.normal(size=64) + 1j * rng.normal(size=64)
    dense /= np.linalg.norm(dense)

    circuit = benchmark(prepare_state, dense)
    assert _fidelity(circuit, dense) > 1 - 1e-9


def test_synthesis_roundtrip_through_verification(benchmark, report):
    """Synthesize GHZ two ways and prove the preparations equivalent on the
    |0...0> input via DDs."""
    from repro.qc.dd_builder import circuit_to_dd

    def run():
        package = DDPackage()
        state, dense = _state_of(library.ghz_state(5), package)
        synthesized = synthesize_state_preparation(package, state)
        zero = package.zero_state(5)
        out_a = package.multiply(circuit_to_dd(package, synthesized), zero)
        out_b = package.multiply(
            circuit_to_dd(package, library.ghz_state(5)), zero
        )
        return package.fidelity(out_a, out_b), synthesized.num_gates

    fidelity, gates = benchmark(run)
    assert fidelity > 1 - 1e-9
    report(
        "synthesis_roundtrip",
        [f"GHZ(5): synthesized preparation ({gates} gates) matches the "
         f"textbook circuit on |00000> with fidelity {fidelity:.12f}"],
    )
