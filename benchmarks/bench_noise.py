"""Noise-aware simulation — fidelity decay under realistic error channels.

Quantifies what users "exploring strengths and limits" (paper Sec. I)
see when noise enters: GHZ fidelity decays with the per-gate error rate,
dephasing kills coherences while preserving populations, and the exact
density-matrix treatment replaces Monte-Carlo averaging.
"""

import numpy as np
import pytest

from repro.dd import density
from repro.noise import (
    NoiseModel,
    NoisySimulator,
    amplitude_damping,
    bit_flip,
    depolarizing,
    phase_damping,
)
from repro.qc import QuantumCircuit, library


@pytest.mark.parametrize("probability", [0.001, 0.01, 0.05])
def test_noisy_ghz_fidelity(benchmark, probability, report):
    model = NoiseModel(
        single_qubit=depolarizing(probability),
        two_qubit=depolarizing(2.0 * probability),
    )

    def run():
        simulator = NoisySimulator(library.ghz_state(4), model)
        simulator.run()
        return simulator

    simulator = benchmark(run)
    fidelity = simulator.fidelity_with_ideal()
    assert 0.0 < fidelity <= 1.0
    report(
        f"noise_ghz_p{probability}",
        [f"GHZ(4), depolarizing p={probability} (2p on two-qubit gates): "
         f"fidelity {fidelity:.4f}, purity {simulator.purity():.4f}"],
    )


def test_noise_decay_series(benchmark, report):
    """The fidelity-vs-error-rate series (one row per p)."""

    def build():
        rows = []
        for probability in (0.0, 0.005, 0.01, 0.02, 0.05, 0.1):
            model = NoiseModel(
                single_qubit=depolarizing(probability),
                two_qubit=depolarizing(2.0 * probability),
            )
            simulator = NoisySimulator(library.ghz_state(4), model)
            simulator.run()
            rows.append(
                (probability, simulator.fidelity_with_ideal(), simulator.purity())
            )
        return rows

    rows = benchmark(build)
    fidelities = [fidelity for __, fidelity, __ in rows]
    assert all(a >= b for a, b in zip(fidelities, fidelities[1:]))
    report(
        "noise_decay_series",
        ["   p      fidelity   purity"]
        + [f"{p:6.3f}  {f:9.4f}  {u:7.4f}" for p, f, u in rows]
        + ["", "monotone decay with the per-gate error rate, computed",
           "exactly (no sampling noise) on density-matrix DDs"],
    )


def test_channel_zoo(benchmark, report):
    """Each channel's action on |+><+| in one table."""
    import math

    def build():
        from repro.dd import DDPackage
        from repro.noise import apply_channel

        package = DDPackage()
        inv = 1.0 / math.sqrt(2.0)
        rho = density.density_from_statevector(package, [inv, inv])
        rows = []
        for channel in (
            bit_flip(0.25),
            phase_damping(0.25),
            amplitude_damping(0.25),
            depolarizing(0.25),
        ):
            out = apply_channel(package, rho, channel, 0)
            dense = package.to_matrix(out, 1)
            rows.append(
                (channel.name, dense[0, 0].real, abs(dense[0, 1]),
                 density.purity(package, out))
            )
        return rows

    rows = benchmark(build)
    for __, population, coherence, purity in rows:
        assert 0.0 <= population <= 1.0
        assert purity <= 1.0 + 1e-9
    report(
        "noise_channel_zoo",
        ["channel                     rho_00   |rho_01|   purity"]
        + [
            f"{name:26s} {population:7.3f} {coherence:9.3f} {purity:8.3f}"
            for name, population, coherence, purity in rows
        ],
    )


def test_noisy_qft_runtime(benchmark):
    """Noisy QFT(3): channels after every gate, exact ensemble."""
    model = NoiseModel(
        single_qubit=amplitude_damping(0.01),
        two_qubit=depolarizing(0.02),
    )

    def run():
        simulator = NoisySimulator(library.qft(3), model)
        simulator.run()
        return simulator

    simulator = benchmark(run)
    assert abs(density.trace(simulator.package, simulator.state()) - 1.0) < 1e-9


def test_readout_error_distribution(benchmark, report):
    model = NoiseModel(measurement=bit_flip(0.05))
    circuit = library.bell_pair()
    circuit.measure(0, 0).measure(1, 1)

    def run():
        simulator = NoisySimulator(circuit, model)
        simulator.run()
        return simulator.classical_distribution()

    distribution = benchmark(run)
    assert abs(sum(distribution.values()) - 1.0) < 1e-9
    # Ideal: 50/50 on 00/11; readout error leaks ~5% per bit to 01/10.
    assert distribution.get("01", 0.0) > 0.01
    report(
        "noise_readout",
        ["Bell measurement with 5% readout flips (exact):"]
        + [f"  {k}: {v:.4f}" for k, v in sorted(distribution.items())],
    )
