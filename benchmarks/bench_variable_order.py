"""Variable-order ablation — canonicity is "with respect to a given
variable order" (paper Sec. III-C).

Builds a state of nearest-neighbour entangled pairs under two wire
orders: *interleaved* (partners adjacent, DD linear in n) and *blocked*
(partners n/2 apart, DD exponential in n).  The same physical state, a
2^(n/2) size gap — the classic BDD ordering phenomenon carried over to
quantum decision diagrams.
"""

import pytest

from repro.dd import DDPackage
from repro.qc import QuantumCircuit
from repro.qc.transforms import permute_qubits
from repro.simulation import DDSimulator


def _pair_circuit(num_qubits: int, interleaved: bool) -> QuantumCircuit:
    """Bell pairs between partner qubits.

    interleaved: partners (2i+1, 2i) are adjacent.
    blocked:     partners (i + n/2, i) are far apart.
    """
    circuit = QuantumCircuit(num_qubits)
    half = num_qubits // 2
    for index in range(half):
        if interleaved:
            top, bottom = 2 * index + 1, 2 * index
        else:
            top, bottom = index + half, index
        circuit.h(top)
        circuit.cx(top, bottom)
    return circuit


def _nodes(circuit: QuantumCircuit) -> int:
    simulator = DDSimulator(circuit)
    simulator.run_all()
    return simulator.node_count()


@pytest.mark.parametrize("num_qubits", [4, 8, 12])
def test_interleaved_order_is_linear(benchmark, num_qubits):
    nodes = benchmark(_nodes, _pair_circuit(num_qubits, interleaved=True))
    assert nodes == 3 * num_qubits // 2  # 1 + 2 per pair below the top


@pytest.mark.parametrize("num_qubits", [4, 8, 12])
def test_blocked_order_is_exponential(benchmark, num_qubits):
    nodes = benchmark(_nodes, _pair_circuit(num_qubits, interleaved=False))
    half = num_qubits // 2
    assert nodes >= (1 << half)  # exponential blow-up


def test_variable_order_table(benchmark, report):
    def build():
        rows = []
        for num_qubits in (4, 8, 12, 16):
            good = _nodes(_pair_circuit(num_qubits, interleaved=True))
            bad = _nodes(_pair_circuit(num_qubits, interleaved=False))
            rows.append((num_qubits, good, bad))
        return rows

    rows = benchmark(build)
    for num_qubits, good, bad in rows:
        assert good < bad
    report(
        "variable_order",
        ["same state, two wire orders (Bell pairs between partners):",
         "  n   interleaved nodes   blocked nodes   ratio"]
        + [
            f"{n:3d}  {good:17d}  {bad:14d}  {bad / good:6.1f}x"
            for n, good, bad in rows
        ]
        + ["", "Sec. III-C: decision diagrams are canonic (and compact)",
           "only relative to a variable order; a bad order costs 2^(n/2)."],
    )


def test_reordering_recovers_compactness(benchmark, report):
    """Permuting the wires of the blocked circuit back to interleaved
    partners restores the linear-size diagram."""
    num_qubits = 12
    blocked = _pair_circuit(num_qubits, interleaved=False)
    half = num_qubits // 2
    # Map blocked partner (i, i+half) onto adjacent lines (2i, 2i+1).
    mapping = [0] * num_qubits
    for index in range(half):
        mapping[index] = 2 * index
        mapping[index + half] = 2 * index + 1

    def run():
        return _nodes(permute_qubits(blocked, mapping))

    reordered_nodes = benchmark(run)
    blocked_nodes = _nodes(blocked)
    assert reordered_nodes < blocked_nodes
    assert reordered_nodes == 3 * num_qubits // 2
    report(
        "variable_order_reordering",
        [
            f"blocked order: {blocked_nodes} nodes",
            f"after wire reordering: {reordered_nodes} nodes",
            "reordering the variables recovers the compact diagram",
        ],
    )
