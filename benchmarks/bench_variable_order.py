"""Variable-order ablation — canonicity is "with respect to a given
variable order" (paper Sec. III-C), now measured over the dynamic path.

The sweep is declared in ``benchmarks/campaigns/variable_order.json``:
Bell pairs between partner qubits under an *interleaved* wire order
(partners adjacent, DD linear in n) and a *blocked* order (partners n/2
apart, DD exponential in n), plus QFT/Grover functionality builds.  Every
cell runs under three package configurations:

* ``static``  — the frozen construction order (the paper's setting);
* ``sifted``  — one manual sift after the run (``reorder="manual"``),
  with identity-skipping matrix edges;
* ``dynamic`` — pressure-triggered sifting (``reorder="pressure"`` with a
  48-node budget checked every operation) plus identity skipping, so the
  order improves *while* the diagram is being built.

The assertions freeze the honest wins and non-wins: sifting recovers the
blocked Bell state to the linear 3n/2 size, pressure sifting bounds its
*peak* to O(n) (the static peak is exponential), the QFT functionality
peak drops well past the 20% acceptance floor, the Ex. 12 alternating
gap shrinks 9 -> 5 under identity skipping — and Grover's peak does not
move, because its intermediate products are order-insensitive.
"""

import pytest

from repro.campaign import build_family
from repro.dd.package import DDPackage
from repro.qc import library
from repro.qc.transforms import permute_qubits
from repro.simulation import DDSimulator
from repro.verification import (
    ApplicationStrategy,
    check_equivalence_alternating,
)

import _bench_common

_SIZES = (4, 8, 12, 16)


@pytest.fixture(scope="module")
def order_artifact(bench_seed):
    return _bench_common.run_campaign_spec(
        "variable_order.json", seed_offset=bench_seed
    )


def _cells(artifact, label, package):
    return _bench_common.artifact_cells(artifact, label=label, package=package)


def test_interleaved_order_is_linear(order_artifact):
    cells = _cells(order_artifact, "interleaved", "static")
    for num_qubits in _SIZES:
        nodes = cells[num_qubits]["metrics"]["final_nodes"]
        assert nodes == 3 * num_qubits // 2  # 1 + 2 per pair below the top


def test_blocked_order_is_exponential(order_artifact):
    cells = _cells(order_artifact, "blocked", "static")
    for num_qubits in _SIZES:
        nodes = cells[num_qubits]["metrics"]["final_nodes"]
        assert nodes >= (1 << (num_qubits // 2))  # exponential blow-up


def test_sifting_recovers_blocked_compactness(order_artifact):
    """One manual sift takes the blocked state to the interleaved size.

    This is the dynamic-path version of wire reordering: the *same*
    exponential diagram, compacted in place to the linear 3n/2 nodes."""
    sifted = _cells(order_artifact, "blocked", "sifted")
    for num_qubits in _SIZES:
        assert sifted[num_qubits]["metrics"]["final_nodes"] == 3 * num_qubits // 2
        assert sifted[num_qubits]["metrics"]["reorder_runs"] >= 1


def test_pressure_sifting_bounds_the_blocked_peak(order_artifact):
    """The end-of-run sift cannot help the *peak* — pressure sifting can.

    Under ``reorder="pressure"`` the governor sifts whenever the live
    diagram crosses the 48-node budget, so the blocked Bell state never
    materializes its exponential form: the peak stays <= 3n while the
    static peak is 3(2^(n/2) - 1)/2 + n/2 nodes."""
    static = _cells(order_artifact, "blocked", "static")
    dynamic = _cells(order_artifact, "blocked", "dynamic")
    for num_qubits in (8, 12, 16):
        static_peak = static[num_qubits]["metrics"]["peak_nodes"]
        dynamic_peak = dynamic[num_qubits]["metrics"]["peak_nodes"]
        assert dynamic_peak <= 3 * num_qubits, (num_qubits, dynamic_peak)
        assert dynamic_peak < static_peak
        assert dynamic[num_qubits]["metrics"]["reorder_runs"] >= 1
    # The n=16 gap is the headline: 765 static vs <= 48 dynamic.
    assert static[16]["metrics"]["peak_nodes"] >= 16 * dynamic[16]["metrics"]["peak_nodes"]


def test_dynamic_path_reduces_qft_peak_at_least_20pct(order_artifact):
    """Acceptance floor: sifting + identity skipping together cut the QFT
    functionality peak by >= 20% vs the static order (measured: 56% at
    n=4, 84% at n=5)."""
    static = _cells(order_artifact, "qft-functionality", "static")
    dynamic = _cells(order_artifact, "qft-functionality", "dynamic")
    for num_qubits in (4, 5):
        static_peak = static[num_qubits]["metrics"]["peak_nodes"]
        dynamic_peak = dynamic[num_qubits]["metrics"]["peak_nodes"]
        assert dynamic_peak <= 0.8 * static_peak, (
            f"qft n={num_qubits}: dynamic peak {dynamic_peak} is not >=20% "
            f"below static {static_peak}"
        )
        assert dynamic[num_qubits]["metrics"]["identity_skips"] > 0


def test_grover_peak_is_order_insensitive(order_artifact):
    """The honest non-win: Grover's peak comes from dense intermediate
    operators that no variable order compacts, so the dynamic path may
    not regress it but cannot be expected to beat the 20% floor."""
    static = _cells(order_artifact, "grover-functionality", "static")
    dynamic = _cells(order_artifact, "grover-functionality", "dynamic")
    for num_qubits in (4, 5):
        assert (
            dynamic[num_qubits]["metrics"]["peak_nodes"]
            <= static[num_qubits]["metrics"]["peak_nodes"]
        )


def test_ex12_gap_shrinks_under_identity_skipping(benchmark, report):
    """Ex. 12's alternating-scheme peak (9 nodes static) drops to 5 once
    identity-padded gate matrices collapse — a 44% reduction, past the
    20% acceptance floor (the golden suite freezes the same numbers)."""

    def run():
        package = DDPackage(
            identity_skipping=True, reorder="manual", use_apply_kernels=False
        )
        return check_equivalence_alternating(
            library.qft(3),
            library.qft_compiled(3),
            strategy=ApplicationStrategy.COMPILATION_FLOW,
            package=package,
        )

    result = benchmark(run)
    assert result.equivalent
    assert result.max_nodes == 5  # static order: 9 (paper Ex. 12)
    report(
        "ex12_gap_identity_skipping",
        [
            "Ex. 12 alternating peak, static order:        9 nodes (paper)",
            f"Ex. 12 alternating peak, identity skipping:   {result.max_nodes} nodes",
            "reduction: 44% — identity-padded gates collapse to skip edges",
        ],
    )


def test_variable_order_table(order_artifact, report):
    good = _cells(order_artifact, "interleaved", "static")
    bad = _cells(order_artifact, "blocked", "static")
    rows = [
        (
            n,
            good[n]["metrics"]["final_nodes"],
            bad[n]["metrics"]["final_nodes"],
        )
        for n in _SIZES
    ]
    for num_qubits, good_nodes, bad_nodes in rows:
        assert good_nodes < bad_nodes
    report(
        "variable_order",
        ["same state, two wire orders (Bell pairs between partners):",
         "  n   interleaved nodes   blocked nodes   ratio"]
        + [
            f"{n:3d}  {g:17d}  {b:14d}  {b / g:6.1f}x"
            for n, g, b in rows
        ]
        + ["", "Sec. III-C: decision diagrams are canonic (and compact)",
           "only relative to a variable order; a bad order costs 2^(n/2)."],
    )


def test_dynamic_order_table(order_artifact, report):
    """Node-count and runtime deltas, static vs sifted vs dynamic."""
    lines = [
        "static vs sifted (manual, end of run) vs dynamic "
        "(pressure sifting + identity skipping):",
        "family              n   static peak/final     sifted peak/final"
        "    dynamic peak/final",
    ]
    for label, sizes in (
        ("blocked", _SIZES),
        ("qft-functionality", (4, 5)),
        ("grover-functionality", (4, 5)),
    ):
        static = _cells(order_artifact, label, "static")
        sifted = _cells(order_artifact, label, "sifted")
        dynamic = _cells(order_artifact, label, "dynamic")
        for n in sizes:
            cells = [static[n], sifted[n], dynamic[n]]
            peaks = [c["metrics"]["peak_nodes"] for c in cells]
            finals = [c["metrics"]["final_nodes"] for c in cells]
            times = [c["timing"]["wall_seconds"] for c in cells]
            lines.append(
                f"{label:18s} {n:3d}"
                + "".join(
                    f"   {p:6d}/{f:<6d} {t:6.2f}s"
                    for p, f, t in zip(peaks, finals, times)
                )
            )
    lines += [
        "",
        "peak reductions vs static: blocked n=16 94%, QFT n=5 84%,",
        "QFT n=4 56%, Ex. 12 gap 44% (see the dedicated tests);",
        "Grover 0% — its dense intermediates are order-insensitive.",
        "runtime: dynamic pays for its sifts; the win is peak memory.",
    ]
    report("variable_order_dynamic", lines)


def _nodes(circuit) -> int:
    simulator = DDSimulator(circuit)
    simulator.run_all()
    return simulator.node_count()


def test_reordering_recovers_compactness(benchmark, report, order_artifact):
    """Permuting the wires of the blocked circuit back to interleaved
    partners restores the linear-size diagram (the static-order control
    for :func:`test_sifting_recovers_blocked_compactness`)."""
    num_qubits = 12
    _, blocked = build_family(
        "bellpairs", num_qubits, params={"interleaved": False}
    )
    half = num_qubits // 2
    # Map blocked partner (i, i+half) onto adjacent lines (2i, 2i+1).
    mapping = [0] * num_qubits
    for index in range(half):
        mapping[index] = 2 * index
        mapping[index + half] = 2 * index + 1

    def run():
        return _nodes(permute_qubits(blocked, mapping))

    reordered_nodes = benchmark(run)
    blocked_cells = _cells(order_artifact, "blocked", "static")
    blocked_nodes = blocked_cells[num_qubits]["metrics"]["final_nodes"]
    assert reordered_nodes < blocked_nodes
    assert reordered_nodes == 3 * num_qubits // 2
    report(
        "variable_order_reordering",
        [
            f"blocked order: {blocked_nodes} nodes",
            f"after wire reordering: {reordered_nodes} nodes",
            "reordering the variables recovers the compact diagram",
        ],
    )
