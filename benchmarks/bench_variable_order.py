"""Variable-order ablation — canonicity is "with respect to a given
variable order" (paper Sec. III-C).

The sweep — Bell pairs between partner qubits under an *interleaved*
wire order (partners adjacent, DD linear in n) and a *blocked* order
(partners n/2 apart, DD exponential in n) — is declared in
``benchmarks/campaigns/variable_order.json``; the same physical state, a
2^(n/2) size gap.  Only the wire-reordering recovery test builds a
circuit in-process, because it transforms the circuit before running it.
"""

import pytest

from repro.campaign import build_family
from repro.qc.transforms import permute_qubits
from repro.simulation import DDSimulator

import _bench_common


@pytest.fixture(scope="module")
def order_artifact(bench_seed):
    return _bench_common.run_campaign_spec(
        "variable_order.json", seed_offset=bench_seed
    )


def test_interleaved_order_is_linear(order_artifact):
    cells = _bench_common.artifact_cells(order_artifact, label="interleaved")
    for num_qubits in (4, 8, 12, 16):
        nodes = cells[num_qubits]["metrics"]["final_nodes"]
        assert nodes == 3 * num_qubits // 2  # 1 + 2 per pair below the top


def test_blocked_order_is_exponential(order_artifact):
    cells = _bench_common.artifact_cells(order_artifact, label="blocked")
    for num_qubits in (4, 8, 12, 16):
        nodes = cells[num_qubits]["metrics"]["final_nodes"]
        assert nodes >= (1 << (num_qubits // 2))  # exponential blow-up


def test_variable_order_table(order_artifact, report):
    good = _bench_common.artifact_cells(order_artifact, label="interleaved")
    bad = _bench_common.artifact_cells(order_artifact, label="blocked")
    rows = [
        (
            n,
            good[n]["metrics"]["final_nodes"],
            bad[n]["metrics"]["final_nodes"],
        )
        for n in (4, 8, 12, 16)
    ]
    for num_qubits, good_nodes, bad_nodes in rows:
        assert good_nodes < bad_nodes
    report(
        "variable_order",
        ["same state, two wire orders (Bell pairs between partners):",
         "  n   interleaved nodes   blocked nodes   ratio"]
        + [
            f"{n:3d}  {g:17d}  {b:14d}  {b / g:6.1f}x"
            for n, g, b in rows
        ]
        + ["", "Sec. III-C: decision diagrams are canonic (and compact)",
           "only relative to a variable order; a bad order costs 2^(n/2)."],
    )


def _nodes(circuit) -> int:
    simulator = DDSimulator(circuit)
    simulator.run_all()
    return simulator.node_count()


def test_reordering_recovers_compactness(benchmark, report, order_artifact):
    """Permuting the wires of the blocked circuit back to interleaved
    partners restores the linear-size diagram."""
    num_qubits = 12
    _, blocked = build_family(
        "bellpairs", num_qubits, params={"interleaved": False}
    )
    half = num_qubits // 2
    # Map blocked partner (i, i+half) onto adjacent lines (2i, 2i+1).
    mapping = [0] * num_qubits
    for index in range(half):
        mapping[index] = 2 * index
        mapping[index + half] = 2 * index + 1

    def run():
        return _nodes(permute_qubits(blocked, mapping))

    reordered_nodes = benchmark(run)
    blocked_cells = _bench_common.artifact_cells(order_artifact, label="blocked")
    blocked_nodes = blocked_cells[num_qubits]["metrics"]["final_nodes"]
    assert reordered_nodes < blocked_nodes
    assert reordered_nodes == 3 * num_qubits // 2
    report(
        "variable_order_reordering",
        [
            f"blocked order: {blocked_nodes} nodes",
            f"after wire reordering: {reordered_nodes} nodes",
            "reordering the variables recovers the compact diagram",
        ],
    )
