"""Direct apply kernels vs. the legacy matrix path.

For each workload the same circuit is simulated twice on fresh packages —
once through the direct gate-application kernels (:mod:`repro.dd.apply`),
once through the legacy path (full-system gate DD + multiply) — and the
benchmark reports wall time, DD node allocations (unique-table misses)
and compute-table hit rates side by side.

The acceptance bar from the issue: on the 3-qubit QFT the kernel path
allocates *strictly fewer* DD nodes than the matrix path (it allocates no
matrix nodes at all).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.qc import library
from repro.simulation.simulator import DDSimulator

REPEATS = 5


def _run_path(circuit, use_apply_kernels: bool) -> dict:
    best = None
    for _ in range(REPEATS):
        simulator = DDSimulator(circuit, use_apply_kernels=use_apply_kernels)
        start = perf_counter()
        simulator.run_all()
        elapsed = perf_counter() - start
        if best is None or elapsed < best["seconds"]:
            package = simulator.package
            stats = package.stats()
            cache = stats["apply" if use_apply_kernels else "mult-mv"]
            best = {
                "seconds": elapsed,
                "final_nodes": simulator.node_count(),
                "peak_nodes": simulator.peak_node_count,
                "vector_allocations": package._vector_unique.misses,
                "matrix_allocations": package._matrix_unique.misses,
                "allocations": (
                    package._vector_unique.misses + package._matrix_unique.misses
                ),
                "cache_hit_ratio": cache["hit_ratio"],
                "state": simulator.statevector()
                if circuit.num_qubits <= 12
                else None,
            }
    return best


_WORKLOADS = [
    ("qft3", lambda: library.qft(3)),
    ("qft6", lambda: library.qft(6)),
    ("ghz12", lambda: library.ghz_state(12)),
    ("grover5", lambda: library.grover(5, 19)),
    ("random6x60", lambda: library.random_circuit(6, 60, seed=11)),
]


@pytest.mark.parametrize("name,factory", _WORKLOADS, ids=[w[0] for w in _WORKLOADS])
def test_apply_kernels_vs_matrix_path(name, factory, report):
    circuit = factory()
    kernel = _run_path(circuit, True)
    matrix = _run_path(circuit, False)

    if kernel["state"] is not None:
        assert np.abs(kernel["state"] - matrix["state"]).max() < 1e-10
    # The kernel path never builds an operation DD ...
    assert kernel["matrix_allocations"] == 0
    # ... so it allocates strictly fewer nodes (the issue's acceptance bar
    # names the 3-qubit QFT; it holds on every workload here).
    assert kernel["allocations"] < matrix["allocations"]
    # Both paths land on DDs of identical size.
    assert kernel["final_nodes"] == matrix["final_nodes"]

    speedup = matrix["seconds"] / kernel["seconds"] if kernel["seconds"] else 0.0
    report(
        f"apply_kernels_{name}",
        [
            f"{circuit.name}: {circuit.num_qubits} qubits, "
            f"{len(circuit)} operations",
            f"{'path':12s} {'seconds':>10s} {'allocs':>8s} "
            f"{'(vec+mat)':>12s} {'peak':>6s} {'cache hit':>10s}",
            f"{'kernels':12s} {kernel['seconds']:10.6f} "
            f"{kernel['allocations']:8d} "
            f"{kernel['vector_allocations']:5d}+{kernel['matrix_allocations']:<5d} "
            f"{kernel['peak_nodes']:6d} {kernel['cache_hit_ratio']:10.3f}",
            f"{'matrix':12s} {matrix['seconds']:10.6f} "
            f"{matrix['allocations']:8d} "
            f"{matrix['vector_allocations']:5d}+{matrix['matrix_allocations']:<5d} "
            f"{matrix['peak_nodes']:6d} {matrix['cache_hit_ratio']:10.3f}",
            f"speedup: {speedup:.2f}x   node-allocation ratio: "
            f"{matrix['allocations'] / max(kernel['allocations'], 1):.2f}x",
        ],
    )


def test_qft3_allocation_acceptance(report):
    """The issue's acceptance criterion, stated on its own: kernel path
    strictly fewer DD node allocations than the matrix path on QFT(3)."""
    kernel = _run_path(library.qft(3), True)
    matrix = _run_path(library.qft(3), False)
    assert kernel["allocations"] < matrix["allocations"]
    report(
        "apply_kernels_qft3_acceptance",
        [
            f"QFT(3) node allocations: kernels={kernel['allocations']} "
            f"< matrix={matrix['allocations']}",
        ],
    )
