"""Direct apply kernels vs. the legacy matrix path, and the pooled
(struct-of-arrays) storage backend vs. the legacy object backend.

Part 1 — for each workload the same circuit is simulated twice on fresh
packages — once through the direct gate-application kernels
(:mod:`repro.dd.apply`), once through the legacy path (full-system gate
DD + multiply) — and the benchmark reports wall time, DD node
allocations (unique-table misses) and compute-table hit rates side by
side.  The acceptance bar from the earlier issue: on the 3-qubit QFT the
kernel path allocates *strictly fewer* DD nodes than the matrix path (it
allocates no matrix nodes at all).

Part 2 — the same circuit is simulated on ``DDPackage(storage="object")``
and ``DDPackage(storage="pooled")`` and compared at two levels:

* **cold end-to-end** — a fresh simulator per run, timing ``run_all()``.
  This includes all the Python dispatch both backends share (circuit IR,
  kernel construction, per-step bookkeeping), which bounds the achievable
  ratio well below the hot-core ratio.
* **warm steady-state** — repeated application of the circuit's gate
  kernels to a fixed state on a pre-warmed package (caches hot, no new
  canonical weights minted).  This isolates the hot core the pooled
  rewrite targets: integer-keyed compute/apply tables and flat-array
  node access vs. object hashing and attribute chasing.

Honest numbers, honestly labeled: the ISSUE named a >=5x ambition for
the pooled backend.  Measured on this hardware the steady-state kernel
loop reaches ~3x and cold end-to-end ~1.3-2.4x — the remaining time is
shared Python dispatch that storage layout cannot remove.  The asserted
gates below (>=1.5x warm, >=1.1x cold) are deliberately conservative so
CI stays green on noisy runners while still proving the pooled backend
is strictly faster at every level.  Both backends must also agree
*bit-for-bit* on the final statevector and mint the *same number* of
canonical weights — the operation-for-operation mirroring the
differential suite relies on.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.dd.apply import apply_operation
from repro.dd.package import DDPackage
from repro.qc import library
from repro.simulation.simulator import DDSimulator

REPEATS = 5


def _run_path(circuit, use_apply_kernels: bool) -> dict:
    best = None
    for _ in range(REPEATS):
        simulator = DDSimulator(circuit, use_apply_kernels=use_apply_kernels)
        start = perf_counter()
        simulator.run_all()
        elapsed = perf_counter() - start
        if best is None or elapsed < best["seconds"]:
            package = simulator.package
            stats = package.stats()
            cache = stats["apply" if use_apply_kernels else "mult-mv"]
            best = {
                "seconds": elapsed,
                "final_nodes": simulator.node_count(),
                "peak_nodes": simulator.peak_node_count,
                "vector_allocations": package._vector_unique.misses,
                "matrix_allocations": package._matrix_unique.misses,
                "allocations": (
                    package._vector_unique.misses + package._matrix_unique.misses
                ),
                "cache_hit_ratio": cache["hit_ratio"],
                "state": simulator.statevector()
                if circuit.num_qubits <= 12
                else None,
            }
    return best


_WORKLOADS = [
    ("qft3", lambda: library.qft(3)),
    ("qft6", lambda: library.qft(6)),
    ("ghz12", lambda: library.ghz_state(12)),
    ("grover5", lambda: library.grover(5, 19)),
    ("random6x60", lambda: library.random_circuit(6, 60, seed=11)),
]


@pytest.mark.parametrize("name,factory", _WORKLOADS, ids=[w[0] for w in _WORKLOADS])
def test_apply_kernels_vs_matrix_path(name, factory, report):
    circuit = factory()
    kernel = _run_path(circuit, True)
    matrix = _run_path(circuit, False)

    if kernel["state"] is not None:
        assert np.abs(kernel["state"] - matrix["state"]).max() < 1e-10
    # The kernel path never builds an operation DD ...
    assert kernel["matrix_allocations"] == 0
    # ... so it allocates strictly fewer nodes (the issue's acceptance bar
    # names the 3-qubit QFT; it holds on every workload here).
    assert kernel["allocations"] < matrix["allocations"]
    # Both paths land on DDs of identical size.
    assert kernel["final_nodes"] == matrix["final_nodes"]

    speedup = matrix["seconds"] / kernel["seconds"] if kernel["seconds"] else 0.0
    report(
        f"apply_kernels_{name}",
        [
            f"{circuit.name}: {circuit.num_qubits} qubits, "
            f"{len(circuit)} operations",
            f"{'path':12s} {'seconds':>10s} {'allocs':>8s} "
            f"{'(vec+mat)':>12s} {'peak':>6s} {'cache hit':>10s}",
            f"{'kernels':12s} {kernel['seconds']:10.6f} "
            f"{kernel['allocations']:8d} "
            f"{kernel['vector_allocations']:5d}+{kernel['matrix_allocations']:<5d} "
            f"{kernel['peak_nodes']:6d} {kernel['cache_hit_ratio']:10.3f}",
            f"{'matrix':12s} {matrix['seconds']:10.6f} "
            f"{matrix['allocations']:8d} "
            f"{matrix['vector_allocations']:5d}+{matrix['matrix_allocations']:<5d} "
            f"{matrix['peak_nodes']:6d} {matrix['cache_hit_ratio']:10.3f}",
            f"speedup: {speedup:.2f}x   node-allocation ratio: "
            f"{matrix['allocations'] / max(kernel['allocations'], 1):.2f}x",
        ],
    )


def test_qft3_allocation_acceptance(report):
    """The issue's acceptance criterion, stated on its own: kernel path
    strictly fewer DD node allocations than the matrix path on QFT(3)."""
    kernel = _run_path(library.qft(3), True)
    matrix = _run_path(library.qft(3), False)
    assert kernel["allocations"] < matrix["allocations"]
    report(
        "apply_kernels_qft3_acceptance",
        [
            f"QFT(3) node allocations: kernels={kernel['allocations']} "
            f"< matrix={matrix['allocations']}",
        ],
    )


# ----------------------------------------------------------------------
# pooled (struct-of-arrays) vs. object storage backends
# ----------------------------------------------------------------------
#: Conservative CI gates (see module docstring for the measured numbers).
COLD_SPEEDUP_FLOOR = 1.1
WARM_SPEEDUP_FLOOR = 1.5
WARM_PASSES = 30


def _run_storage(circuit, storage: str) -> dict:
    """Best-of-``REPEATS`` cold end-to-end simulation on one backend."""
    best = None
    for _ in range(REPEATS):
        simulator = DDSimulator(
            circuit, storage=storage, use_apply_kernels=True
        )
        start = perf_counter()
        simulator.run_all()
        elapsed = perf_counter() - start
        if best is None or elapsed < best["seconds"]:
            best = {
                "seconds": elapsed,
                "final_nodes": simulator.node_count(),
                "weights": len(simulator.package.complex_table),
                "state": simulator.statevector()
                if circuit.num_qubits <= 14
                else None,
            }
    return best


def _run_storage_warm(circuit, storage: str) -> float:
    """Steady-state seconds per pass of the circuit's gate kernels.

    One pass from |0..0> builds the trajectory; two more passes over the
    *measured* trajectory warm every cache on it (the first of those still
    mints the canonical weights of the revisited intermediate states).
    Only then is the loop timed — by construction it allocates nothing.
    """
    package = DDPackage(storage=storage)
    num_qubits = circuit.num_qubits
    state = package.zero_state(num_qubits)
    package.incref(state)
    operations = [op for op in circuit.operations if hasattr(op, "matrix")]
    for operation in operations:
        state = apply_operation(package, state, operation, num_qubits)
    start_state = state
    for _ in range(2):
        state = start_state
        for operation in operations:
            state = apply_operation(package, state, operation, num_qubits)
    start = perf_counter()
    for _ in range(WARM_PASSES):
        state = start_state
        for operation in operations:
            state = apply_operation(package, state, operation, num_qubits)
    return (perf_counter() - start) / WARM_PASSES


_STORAGE_WORKLOADS = [
    ("qft10", lambda: library.qft(10)),
    ("qft14", lambda: library.qft(14)),
    ("grover7", lambda: library.grover(7, 42)),
]

_WARM_WORKLOADS = [
    ("qft12", lambda: library.qft(12)),
    ("grover7", lambda: library.grover(7, 42)),
]


@pytest.mark.parametrize(
    "name,factory", _STORAGE_WORKLOADS, ids=[w[0] for w in _STORAGE_WORKLOADS]
)
def test_pooled_vs_object_end_to_end(name, factory, report):
    circuit = factory()
    pooled = _run_storage(circuit, "pooled")
    obj = _run_storage(circuit, "object")

    # Bit-exactness: not merely close — byte-for-byte identical, because
    # the pooled engine mirrors the object backend operation for
    # operation (same lookups, same normalization, same table order).
    if pooled["state"] is not None:
        assert np.array_equal(pooled["state"], obj["state"])
    assert pooled["final_nodes"] == obj["final_nodes"]
    assert pooled["weights"] == obj["weights"]

    speedup = obj["seconds"] / pooled["seconds"] if pooled["seconds"] else 0.0
    assert speedup >= COLD_SPEEDUP_FLOOR, (
        f"pooled backend regressed on {name}: {speedup:.2f}x "
        f"< {COLD_SPEEDUP_FLOOR}x floor"
    )
    report(
        f"storage_end_to_end_{name}",
        [
            f"{circuit.name}: {circuit.num_qubits} qubits, "
            f"{len(circuit)} operations (cold end-to-end, best of {REPEATS})",
            f"{'backend':12s} {'seconds':>10s} {'final nodes':>12s} "
            f"{'weights':>8s}",
            f"{'object':12s} {obj['seconds']:10.6f} {obj['final_nodes']:12d} "
            f"{obj['weights']:8d}",
            f"{'pooled':12s} {pooled['seconds']:10.6f} "
            f"{pooled['final_nodes']:12d} {pooled['weights']:8d}",
            f"speedup: {speedup:.2f}x (gate: >={COLD_SPEEDUP_FLOOR}x)   "
            f"statevector: "
            f"{'bit-identical' if pooled['state'] is not None else 'skipped'}",
        ],
    )


@pytest.mark.parametrize(
    "name,factory", _WARM_WORKLOADS, ids=[w[0] for w in _WARM_WORKLOADS]
)
def test_pooled_vs_object_warm_kernels(name, factory, report):
    circuit = factory()
    pooled_pass = _run_storage_warm(circuit, "pooled")
    object_pass = _run_storage_warm(circuit, "object")

    speedup = object_pass / pooled_pass if pooled_pass else 0.0
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"pooled warm kernels regressed on {name}: {speedup:.2f}x "
        f"< {WARM_SPEEDUP_FLOOR}x floor"
    )
    report(
        f"storage_warm_kernels_{name}",
        [
            f"{circuit.name}: {circuit.num_qubits} qubits, "
            f"{len(circuit)} operations "
            f"(steady-state, {WARM_PASSES} timed passes)",
            f"{'backend':12s} {'ms/pass':>10s}",
            f"{'object':12s} {object_pass * 1000.0:10.3f}",
            f"{'pooled':12s} {pooled_pass * 1000.0:10.3f}",
            f"speedup: {speedup:.2f}x (gate: >={WARM_SPEEDUP_FLOOR}x)",
        ],
    )
