"""Fig. 5 / Ex. 10 — the QFT, its compiled version, and its functionality.

Regenerates the 8x8 omega-matrix of Fig. 5(c) from both the abstract
circuit (Fig. 5(a)) and the compiled circuit (Fig. 5(b)), prints the gate
sequences, and benchmarks functionality construction.
"""

import cmath
import math

import numpy as np

from repro.dd import DDPackage
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import build_unitary
from repro.vis import circuit_to_text


def _omega_matrix() -> np.ndarray:
    omega = cmath.exp(1j * math.pi / 4.0)
    return np.array(
        [[omega ** ((j * k) % 8) for k in range(8)] for j in range(8)]
    ) / math.sqrt(8.0)


def _omega_exponents(matrix: np.ndarray) -> str:
    omega = cmath.exp(1j * math.pi / 4.0)
    rows = []
    for row in matrix * math.sqrt(8.0):
        exponents = []
        for value in row:
            exponent = min(
                range(8), key=lambda k: abs(value - omega**k)
            )
            exponents.append("1" if exponent == 0 else f"w{exponent}")
        rows.append(" ".join(f"{e:>3}" for e in exponents))
    return "\n".join(rows)


def test_fig5_qft_functionality(benchmark, report):
    def build():
        package = DDPackage()
        return package, circuit_to_dd(package, library.qft(3))

    package, functionality = benchmark(build)
    dense = package.to_matrix(functionality, 3)
    assert np.allclose(dense, _omega_matrix())
    assert np.allclose(build_unitary(library.qft_compiled(3)), _omega_matrix())
    compiled = library.qft_compiled(3)
    report(
        "fig5_qft",
        [
            "Fig. 5(a) three-qubit QFT:",
            circuit_to_text(library.qft(3)),
            "",
            f"Fig. 5(b) compiled circuit ({compiled.num_gates} gates, "
            f"{sum(1 for op in compiled if type(op).__name__ == 'BarrierOp')} barriers):",
            circuit_to_text(compiled),
            "",
            "Fig. 5(c) functionality (1/sqrt(8) . omega^jk, omega = e^(i pi/4)):",
            _omega_exponents(dense),
        ],
    )


def test_fig5_compiled_qft_functionality(benchmark):
    def build():
        package = DDPackage()
        return package, circuit_to_dd(package, library.qft_compiled(3))

    package, functionality = benchmark(build)
    assert np.allclose(package.to_matrix(functionality, 3), _omega_matrix())


def test_fig5_dense_baseline(benchmark):
    unitary = benchmark(build_unitary, library.qft(3))
    assert np.allclose(unitary, _omega_matrix())
