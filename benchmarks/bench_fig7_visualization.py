"""Fig. 7 — visualization options for vector decision diagrams.

Regenerates the three rendering styles (classic, HLS color wheel, colored
weights) as SVG artifacts and benchmarks the renderer on a large diagram.
"""

import os

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import DDSimulator
from repro.vis import DDStyle, dd_to_dot, dd_to_svg
from repro.vis.svg import color_wheel_svg


def _ghz_with_phases(package):
    """A state with varied phases so the color coding is exercised."""
    simulator = DDSimulator(library.qft(3), package=package)
    simulator.run_all()
    return simulator.state


@pytest.mark.parametrize(
    "style_name", ["classic", "colored", "modern"]
)
def test_fig7_styles(benchmark, style_name, report, results_dir):
    package = DDPackage()
    state = _ghz_with_phases(package)
    style = {
        "classic": DDStyle.classic(),
        "colored": DDStyle.colored(),
        "modern": DDStyle.modern(),
    }[style_name]

    svg = benchmark(dd_to_svg, package, state, style)
    path = os.path.join(results_dir, f"fig7_{style_name}.svg")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    report(
        f"fig7_style_{style_name}",
        [
            f"style: {style_name}",
            f"edge labels: {style.edge_labels}, colored: {style.colored_edges}, "
            f"thickness: {style.weighted_thickness}, dashed: {style.dashed_nonunit}",
            f"SVG written to {path} ({len(svg)} bytes)",
        ],
    )


def test_fig7b_color_wheel(benchmark, report, results_dir):
    svg = benchmark(color_wheel_svg)
    path = os.path.join(results_dir, "fig7b_color_wheel.svg")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    from repro.vis.color import phase_to_color

    report(
        "fig7b_color_wheel",
        [
            f"HLS wheel written to {path}",
            f"phase 0    (weight  1): {phase_to_color(1 + 0j)}",
            f"phase pi/2 (weight  i): {phase_to_color(1j)}",
            f"phase pi   (weight -1): {phase_to_color(-1 + 0j)}",
            f"phase 3pi/2(weight -i): {phase_to_color(-1j)}",
        ],
    )


def test_fig7_dot_export(benchmark):
    """DOT export of a large matrix DD (graphviz interchange format)."""
    package = DDPackage()
    functionality = circuit_to_dd(package, library.qft(5))
    dot = benchmark(dd_to_dot, package, functionality, DDStyle.colored())
    assert dot.startswith("digraph")
    assert dot.count("->") > 300


def test_fig7_large_svg_render(benchmark):
    package = DDPackage()
    functionality = circuit_to_dd(package, library.qft(5))
    svg = benchmark(dd_to_svg, package, functionality, DDStyle.colored())
    assert svg.startswith("<svg")
