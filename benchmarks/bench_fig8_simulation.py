"""Fig. 8 / Ex. 13 — visualizing the simulation of the Bell circuit.

Regenerates the four screenshots of Fig. 8 as an HTML session (initial
state, Bell state, measurement dialog, post-measurement state) and
benchmarks step-through simulation on larger workloads.
"""

import math
import os

import numpy as np
import pytest

from repro.qc import library
from repro.simulation import DDSimulator
from repro.tool import SimulationSession

INV_SQRT2 = 1.0 / math.sqrt(2.0)


def test_fig8_walkthrough(benchmark, report, results_dir):
    def run():
        circuit = library.bell_pair()
        circuit.measure(0, 0)
        session = SimulationSession(circuit)
        session.forward()          # (a) -> H applied
        session.forward()          # (b) Bell state
        dialog = session.pending_dialog()
        session.forward(outcome=1)  # (c)->(d) user chooses |1>
        return session, dialog

    session, dialog = benchmark(run)
    kind, qubit, p0, p1 = dialog
    assert (p0, p1) == (0.5, 0.5)
    assert np.allclose(session.simulator.statevector(), [0, 0, 0, 1])
    path = os.path.join(results_dir, "fig8_simulation.html")
    session.export_html(path, title="Fig. 8: simulating the Bell circuit")
    report(
        "fig8_simulation",
        [
            "(a) initial state |00>",
            "(b) after H, CNOT: 1/sqrt(2)|00> + 1/sqrt(2)|11>",
            f"(c) measurement dialog on q{qubit}: "
            f"P(0)={p0:.0%}, P(1)={p1:.0%}   [paper: 50%/50%]",
            "(d) outcome |1> chosen -> post-measurement state |11> "
            "(determined by entanglement)",
            f"interactive step-through written to {path}",
        ]
        + [
            f"step {record.index}: {record.kind.value:12s} "
            f"nodes={record.node_count}"
            for record in session.simulator.records
        ],
    )


@pytest.mark.parametrize("num_qubits", [8, 16, 32, 64])
def test_fig8_ghz_simulation_scaling(benchmark, num_qubits, report):
    """GHZ simulation cost grows linearly on DDs (2^n dense)."""

    def run():
        simulator = DDSimulator(library.ghz_state(num_qubits))
        simulator.run_all()
        return simulator

    simulator = benchmark(run)
    nodes = simulator.node_count()
    assert nodes == 2 * num_qubits - 1
    report(
        f"fig8_ghz_n{num_qubits}",
        [f"GHZ({num_qubits}): final DD {nodes} nodes "
         f"(dense vector would be {2**num_qubits} amplitudes)"],
    )


def test_fig8_grover_simulation(benchmark):
    def run():
        simulator = DDSimulator(library.grover(6, 45), seed=0)
        simulator.run_all()
        return simulator

    simulator = benchmark(run)
    probabilities = np.abs(simulator.statevector()) ** 2
    assert int(np.argmax(probabilities)) == 45


def test_fig8_sampling_throughput(benchmark):
    """Weak simulation: single-path sampling from a 20-qubit GHZ DD."""
    simulator = DDSimulator(library.ghz_state(20))
    simulator.run_all()

    counts = benchmark(simulator.sample_counts, 1000, 7)
    assert set(counts) == {"0" * 20, "1" * 20}
