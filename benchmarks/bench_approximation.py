"""Approximation — trading fidelity for diagram size.

The node-count/fidelity trade-off curve for three state families:
spiky (one dominant amplitude + noise floor: huge savings for tiny
fidelity cost), GHZ (nothing to prune: perfectly structured), and
maximally random (no savings without real damage).  The quantitative face
of the paper's "strengths and limits" theme.
"""

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.dd.approximation import prune_small_branches, prune_to_size
from repro.qc import library
from repro.simulation import DDSimulator


def _spiky(package, num_qubits, seed=0):
    rng = np.random.default_rng(seed)
    size = 1 << num_qubits
    vector = np.zeros(size, dtype=complex)
    vector[0] = 1.0
    vector[1:] = 0.01 * (rng.normal(size=size - 1) + 1j * rng.normal(size=size - 1))
    vector /= np.linalg.norm(vector)
    return package.from_state_vector(vector)


def _random(package, num_qubits, seed=1):
    rng = np.random.default_rng(seed)
    vector = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    vector /= np.linalg.norm(vector)
    return package.from_state_vector(vector)


def test_tradeoff_curves(benchmark, report, bench_seed):
    def build():
        rows = []
        package = DDPackage()
        ghz_sim = DDSimulator(library.ghz_state(10), package=package)
        ghz_sim.run_all()
        states = {
            "spiky(10)": _spiky(package, 10, seed=bench_seed),
            "ghz(10)": ghz_sim.state,
            "random(10)": _random(package, 10, seed=bench_seed + 1),
        }
        for label, state in states.items():
            for threshold in (1e-5, 1e-4, 1e-3):
                result = prune_small_branches(package, state, threshold)
                rows.append(
                    (label, threshold, result.nodes_before,
                     result.nodes_after, result.fidelity)
                )
        return rows

    rows = benchmark(build)
    table = {(label, t): (na, f) for label, t, __, na, f in rows}
    # The spiky state compresses massively at modest fidelity cost (the
    # noise floor carries ~15% of the mass at this size).
    assert table[("spiky(10)", 1e-3)][0] < 40
    assert table[("spiky(10)", 1e-3)][1] > 0.8
    # GHZ is untouched.
    assert table[("ghz(10)", 1e-3)][1] == pytest.approx(1.0)
    report(
        "approximation_tradeoff",
        ["state        threshold   before   after   fidelity"]
        + [
            f"{label:11s}  {t:9.0e}  {nb:6d}  {na:6d}  {f:9.6f}"
            for label, t, nb, na, f in rows
        ]
        + ["", "spiky states compress ~20x above the noise floor;",
           "structured states are untouched; random states resist."],
    )


@pytest.mark.parametrize("num_qubits", [8, 10, 12])
def test_prune_runtime(benchmark, num_qubits, bench_seed):
    package = DDPackage()
    state = _spiky(package, num_qubits, seed=bench_seed)
    result = benchmark(prune_small_branches, package, state, 1e-4)
    assert result.fidelity > 0.75


def test_prune_to_size_budgeted(benchmark, report, bench_seed):
    package = DDPackage()
    state = _spiky(package, 10, seed=bench_seed)

    result = benchmark(prune_to_size, package, state, 32)
    assert result.nodes_after <= 32
    report(
        "approximation_budget",
        [f"spiky(10): {result.nodes_before} -> {result.nodes_after} nodes "
         f"({result.compression:.1f}x) at fidelity {result.fidelity:.6f}"],
    )
