"""Fig. 2 / Ex. 1-2, 6-7 — decision diagrams for states and operations.

Regenerates the three diagrams of Fig. 2 — the Bell state (3 nodes, both
paths with amplitude 1/sqrt(2)), the Hadamard gate (1 node) and the
controlled-NOT (3 nodes) — including the measurement statistics of Ex. 2,
and benchmarks state-DD construction.
"""

import math

import numpy as np

from repro.dd import DDPackage, sampling
from repro.vis import dd_to_text

INV_SQRT2 = 1.0 / math.sqrt(2.0)


def test_fig2a_bell_state_dd(benchmark, report, bench_seed):
    def build():
        package = DDPackage()
        return package, package.from_state_vector(
            [INV_SQRT2, 0.0, 0.0, INV_SQRT2]
        )

    package, state = benchmark(build)
    nodes = package.node_count(state)
    assert nodes == 3  # paper Ex. 6
    p0, p1 = sampling.qubit_probabilities(package, state, 0)
    assert (p0, p1) == (0.5, 0.5)  # paper Ex. 2
    counts = sampling.sample_counts(package, state, 1000,
                                    np.random.default_rng(bench_seed))
    report(
        "fig2a_bell_dd",
        [
            f"nodes (terminal excluded): {nodes}   [paper: 3]",
            f"amplitude |00>: {package.amplitude(state, '00'):.6f}   [paper: 1/sqrt(2)]",
            f"amplitude |11>: {package.amplitude(state, '11'):.6f}   [paper: 1/sqrt(2)]",
            f"P(q0=0), P(q0=1) = {p0:.2f}, {p1:.2f}   [paper Ex. 2: 50%/50%]",
            f"1000 samples: {dict(sorted(counts.items()))}",
            "diagram:",
            dd_to_text(package, state),
        ],
    )


def test_fig2b_hadamard_dd(benchmark, report):
    def build():
        package = DDPackage()
        return package, package.from_matrix(
            np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        )

    package, gate = benchmark(build)
    assert package.node_count(gate) == 1  # paper Fig. 2(b)
    report(
        "fig2b_hadamard_dd",
        [
            f"nodes: {package.node_count(gate)}   [paper: 1]",
            f"root weight: {gate.weight:.6f}   [paper: 1/sqrt(2)]",
            "diagram:",
            dd_to_text(package, gate),
        ],
    )


def test_fig2c_cnot_dd(benchmark, report):
    cnot = np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=float
    )

    def build():
        package = DDPackage()
        return package, package.from_matrix(cnot)

    package, gate = benchmark(build)
    assert package.node_count(gate) == 3  # paper Fig. 2(c): q1 + two q0 nodes
    report(
        "fig2c_cnot_dd",
        [
            f"nodes: {package.node_count(gate)}   [paper: 3]",
            "diagram (successor order U00 U01 U10 U11, Ex. 7):",
            dd_to_text(package, gate),
        ],
    )
