"""Shared CLI plumbing for the benchmark harness.

Every benchmark entry point — the pytest harness (``conftest.py``) and the
standalone scripts (``bench_soak.py`` & friends) — takes the same two
knobs:

* ``--json-out PATH``: where to write the machine-readable result payload
  (default: ``benchmarks/results/<name>.json``), so CI jobs can collect
  artifacts from one configurable location.
* ``--seed N`` (scripts) / ``--bench-seed N`` (pytest): the base seed for
  any randomized workload, defaulting to the ``BENCH_SEED`` environment
  variable — CI can rotate seeds fleet-wide without touching commands.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Environment variable holding the fleet-wide base seed.
SEED_ENV = "BENCH_SEED"


def default_seed() -> int:
    """Base seed from ``$BENCH_SEED`` (0 when unset or unparsable)."""
    raw = os.environ.get(SEED_ENV, "")
    try:
        return int(raw) if raw.strip() else 0
    except ValueError:
        return 0


def add_common_arguments(parser) -> None:
    """Attach the shared ``--json-out`` / ``--seed`` flags to ``parser``."""
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="write the JSON result payload to PATH "
             "(default: benchmarks/results/<name>.json)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=default_seed(),
        help="base seed for randomized workloads "
             f"(default: ${SEED_ENV} or 0)",
    )


def write_json_result(
    name: str, payload: Dict[str, Any], json_out: Optional[str] = None
) -> str:
    """Persist ``payload`` to ``json_out`` or ``results/<name>.json``."""
    path = json_out or os.path.join(RESULTS_DIR, f"{name}.json")
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# campaign-backed benchmarks
# ----------------------------------------------------------------------

#: Where the declarative sweep specs live (``benchmarks/campaigns/``).
CAMPAIGNS_DIR = os.path.join(os.path.dirname(__file__), "campaigns")


def run_campaign_spec(
    spec_file: str, seed_offset: int = 0, out_root: Optional[str] = None
) -> Dict[str, Any]:
    """Run one of the committed campaign specs and return its artifact.

    The benchmark sweeps (scaling / ablation / variable order) are
    declared in ``benchmarks/campaigns/*.json`` and executed through the
    campaign runner; the pytest benches only assert over the returned
    artifact.  ``seed_offset`` threads ``--bench-seed`` / ``$BENCH_SEED``
    into every cell of the sweep.
    """
    from repro.campaign import load_spec, run_campaign

    spec = load_spec(os.path.join(CAMPAIGNS_DIR, spec_file))
    out_dir = os.path.join(
        out_root or RESULTS_DIR, "campaigns", spec.name
    )
    return run_campaign(
        spec, out_dir, seed_offset=seed_offset, fresh=True
    )


def artifact_cells(
    artifact: Dict[str, Any],
    label: Optional[str] = None,
    package: Optional[str] = None,
) -> Dict[int, Dict[str, Any]]:
    """Index an artifact's ``ok`` cells by circuit size for one series.

    Raises if a matching cell is not ``ok`` — benchmark assertions should
    fail loudly on a crashed/timed-out cell, not silently skip it.
    """
    selected: Dict[int, Dict[str, Any]] = {}
    for cell_id, entry in artifact["cells"].items():
        coords = entry["coordinates"]
        if label is not None and coords["label"] != label:
            continue
        if package is not None and coords["package"] != package:
            continue
        if entry["status"] != "ok":
            raise AssertionError(
                f"campaign cell {cell_id} is {entry['status']}: {entry['error']}"
            )
        selected[coords["size"]] = entry
    return selected
