"""Fig. 3 / Ex. 8 — tensor products by terminal replacement.

Regenerates H (x) I2 on decision diagrams and benchmarks the DD tensor
product against numpy's dense ``kron`` for growing identity sizes: the DD
version is linear in the number of qubits, the dense one exponential.
"""

import math

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.vis import dd_to_text

_H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)


def test_fig3_h_kron_identity(benchmark, report):
    def build():
        package = DDPackage()
        h_dd = package.from_matrix(_H)
        id_dd = package.identity(1)
        return package, package.kron(h_dd, id_dd)

    package, product = benchmark(build)
    assert np.allclose(package.to_matrix(product, 2), np.kron(_H, np.eye(2)))
    assert package.node_count(product) == 2  # H node stacked on the I node
    report(
        "fig3_kron",
        [
            f"H (x) I2 nodes: {package.node_count(product)} "
            "(terminal of H replaced by the root of I2)",
            "diagram:",
            dd_to_text(package, product),
        ],
    )


@pytest.mark.parametrize("num_qubits", [4, 8, 12])
def test_fig3_dd_kron_scaling(benchmark, num_qubits, report):
    def build():
        package = DDPackage()
        h_dd = package.from_matrix(_H)
        id_dd = package.identity(num_qubits - 1)
        return package, package.kron(h_dd, id_dd)

    package, product = benchmark(build)
    nodes = package.node_count(product)
    assert nodes == num_qubits  # linear growth
    report(
        f"fig3_kron_scaling_n{num_qubits}",
        [f"H (x) I_(2^{num_qubits - 1}): {nodes} nodes "
         f"(dense matrix would be {4**num_qubits} entries)"],
    )


@pytest.mark.parametrize("num_qubits", [4, 8, 12])
def test_fig3_dense_kron_baseline(benchmark, num_qubits):
    def build():
        result = _H
        for _ in range(num_qubits - 1):
            result = np.kron(result, np.eye(2))
        return result

    dense = benchmark(build)
    assert dense.shape == (1 << num_qubits, 1 << num_qubits)
