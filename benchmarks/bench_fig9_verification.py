"""Fig. 9 / Ex. 14-15 — visualizing the verification of the QFT circuits.

Regenerates the verification walkthrough (three gates of G, six of G'
applied, diagram close to the identity; finishing confirms equivalence) as
an HTML session and benchmarks both verification flavours.
"""

import os

from repro.qc import library
from repro.tool import VerificationSession
from repro.verification import (
    ApplicationStrategy,
    check_equivalence_alternating,
    check_equivalence_construct,
)


def test_fig9_walkthrough(benchmark, report, results_dir):
    def run():
        session = VerificationSession(library.qft(3), library.qft_compiled(3))
        session.run_compilation_flow()
        return session

    session = benchmark(run)
    assert session.is_identity()
    assert session.peak_node_count == 9
    path = os.path.join(results_dir, "fig9_verification.html")
    session.export_html(path, title="Fig. 9: verifying the QFT circuits")
    chart_path = os.path.join(results_dir, "fig9_trace.svg")
    with open(chart_path, "w", encoding="utf-8") as handle:
        handle.write(session.trace_svg("QFT3: node count per application"))
    trace_lines = [
        f"{frame.title}  --  {frame.description}" for frame in session.frames
    ]
    report(
        "fig9_verification",
        [
            f"final diagram is the identity: {session.is_identity()}",
            f"peak nodes during verification: {session.peak_node_count} "
            "[paper Ex. 12: 9]",
            f"interactive step-through written to {path}",
            "trace:",
        ]
        + trace_lines,
    )


def test_fig9_construct_checker(benchmark):
    result = benchmark(
        check_equivalence_construct, library.qft(3), library.qft_compiled(3)
    )
    assert result.equivalent
    assert result.max_nodes == 21


def test_fig9_alternating_checker(benchmark):
    result = benchmark(
        check_equivalence_alternating,
        library.qft(3),
        library.qft_compiled(3),
        ApplicationStrategy.COMPILATION_FLOW,
    )
    assert result.equivalent
    assert result.max_nodes == 9


def test_fig9_larger_qft_verification(benchmark, report):
    """The same comparison for the 6-qubit QFT pair."""

    def run():
        return check_equivalence_alternating(
            library.qft(6),
            library.qft_compiled(6),
            ApplicationStrategy.COMPILATION_FLOW,
        )

    result = benchmark(run)
    monolithic = check_equivalence_construct(
        library.qft(6), library.qft_compiled(6)
    )
    assert result.equivalent and monolithic.equivalent
    assert result.max_nodes < monolithic.max_nodes
    report(
        "fig9_qft6",
        [
            f"QFT6 alternating peak: {result.max_nodes} nodes",
            f"QFT6 monolithic peak:  {monolithic.max_nodes} nodes",
            f"reduction: {monolithic.max_nodes / result.max_nodes:.1f}x",
        ],
    )
