"""Fig. 1 — quantum operations and their unitary matrices.

Regenerates the Hadamard matrix (Fig. 1(a)), the controlled-NOT matrix
(Fig. 1(b)) and the system matrix of the two-gate circuit G (Fig. 1(c)),
and benchmarks gate-DD construction against dense tensor-product embedding.
"""

import math

import numpy as np

from repro.dd import DDPackage
from repro.qc import library
from repro.qc.gates import gate_matrix
from repro.qc.operations import GateOp
from repro.simulation import build_unitary
from repro.simulation.statevector import gate_unitary

_H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
_CNOT = np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]])


def _format(matrix: np.ndarray) -> str:
    rows = []
    for row in np.asarray(matrix):
        rows.append(
            "[" + " ".join(f"{value.real:+.3f}{value.imag:+.3f}j" for value in row) + "]"
        )
    return "\n".join(rows)


def test_fig1_matrices(benchmark, report):
    def build():
        package = DDPackage()
        return package.controlled_gate(
            2, gate_matrix("x"), 0, controls=[1]
        ), package

    gate_dd, package = benchmark(build)
    assert np.allclose(gate_matrix("h"), _H)
    assert np.allclose(package.to_matrix(gate_dd, 2), _CNOT)
    circuit_unitary = build_unitary(library.bell_pair())
    assert np.allclose(circuit_unitary, _CNOT @ np.kron(_H, np.eye(2)))
    report(
        "fig1_gates",
        [
            "Fig. 1(a) Hadamard:",
            _format(_H),
            "Fig. 1(b) Controlled-NOT:",
            _format(_CNOT),
            "Fig. 1(c) circuit G = CNOT . (H x I2):",
            _format(circuit_unitary),
        ],
    )


def test_fig1_dense_embedding_baseline(benchmark):
    """Dense baseline: full 2^n x 2^n tensor-product extension (Ex. 3)."""
    operation = GateOp(gate="x", targets=(0,), controls=(1,))
    dense = benchmark(gate_unitary, operation, 10)
    assert dense.shape == (1024, 1024)


def test_fig1_dd_embedding(benchmark):
    """The same 10-qubit embedding on decision diagrams (linear size)."""

    def build():
        package = DDPackage()
        return package, package.controlled_gate(
            10, gate_matrix("x"), 0, controls=[9]
        )

    package, gate_dd = benchmark(build)
    assert package.node_count(gate_dd) <= 2 * 10
