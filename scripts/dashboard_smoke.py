#!/usr/bin/env python
"""Loopback smoke test of the SSE streams and the /dashboard page (CI).

Starts a server on an ephemeral port, attaches a metrics-stream client and
a session-frame client, drives a 3-qubit QFT session to the end (forcing
one mid-stream reconnect with ``Last-Event-ID``), asserts every frame
arrived exactly once and in order, fetches ``/dashboard`` and checks the
page is fully self-contained (no ``http://``/``https://`` references),
then stops the server with a stream still open to exercise the drain.

Artifacts land in ``benchmarks/results/dashboard_smoke.txt`` and
``benchmarks/results/dashboard.html`` for upload.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import urllib.request
from http.client import HTTPConnection

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.qc import library  # noqa: E402
from repro.service import DDToolServer, ServiceConfig  # noqa: E402


def _request(base, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=60) as response:
        body = response.read()
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(body)
        return response.status, body


def _open_stream(server, path, last_event_id=None):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=30)
    headers = {"Last-Event-ID": str(last_event_id)} if last_event_id else {}
    connection.request("GET", path, headers=headers)
    response = connection.getresponse()
    assert response.status == 200, response.read()
    assert response.getheader("Content-Type") == "text/event-stream"
    return connection, response


def _read_sse(response):
    event_id, kind, data_lines = None, None, []
    while True:
        raw = response.readline()
        if not raw:
            return
        line = raw.decode().rstrip("\n")
        if line.startswith(":") or line.startswith("retry:"):
            continue
        if line == "":
            if kind is not None or data_lines:
                data = json.loads("\n".join(data_lines)) if data_lines else None
                yield event_id, kind, data
            event_id, kind, data_lines = None, None, []
            continue
        if line.startswith("id: "):
            event_id = int(line[4:])
        elif line.startswith("event: "):
            kind = line[7:]
        elif line.startswith("data: "):
            data_lines.append(line[6:])


def main() -> int:
    qft = library.qft(3).to_qasm()
    steps = []

    config = ServiceConfig(port=0, workers=0, metrics_interval=0.2,
                           heartbeat_interval=1.0, drain_timeout=10.0)
    server = DDToolServer(config).start()
    try:
        base = server.url
        steps.append(f"server listening at {base}")

        # A metrics-stream client collecting in the background.
        metric_kinds = []
        done = threading.Event()

        def metrics_client():
            connection, response = _open_stream(server, "/stream/metrics")
            for _, kind, _ in _read_sse(response):
                metric_kinds.append(kind)
                if done.is_set() and "delta" in metric_kinds:
                    break
            connection.close()

        watcher = threading.Thread(target=metrics_client)
        watcher.start()

        status, session = _request(base, "POST", "/sessions", {
            "kind": "simulation", "qasm": qft, "seed": 0,
        })
        assert status == 201, session
        sid, total = session["session_id"], session["total"]
        steps.append(f"created session {sid} with {total} operations")

        # Frame stream: read the first two frames, then force a reconnect
        # with Last-Event-ID and collect the rest — no gaps, no duplicates.
        connection, response = _open_stream(server, f"/sessions/{sid}/stream")
        frames, cursor = [], None

        def take_frames(reader, stop_after=None, stop_index=None):
            nonlocal cursor
            for event_id, kind, data in reader:
                if kind != "frame":
                    continue
                frames.append(data["index"])
                cursor = event_id
                if stop_after is not None and len(frames) >= stop_after:
                    return
                if stop_index is not None and data["index"] == stop_index:
                    return

        stepper = threading.Thread(target=lambda: [
            _request(base, "POST", f"/sessions/{sid}/step",
                     {"action": "forward"})
            for _ in range(total)
        ])
        stepper.start()
        take_frames(_read_sse(response), stop_after=2)
        connection.close()
        steps.append(f"read {len(frames)} frames, forcing a reconnect "
                     f"at event id {cursor}")
        connection, response = _open_stream(
            server, f"/sessions/{sid}/stream", last_event_id=cursor
        )
        take_frames(_read_sse(response), stop_index=total)
        connection.close()
        stepper.join()
        assert frames == list(range(total + 1)), frames
        steps.append(f"all {total + 1} frames arrived in order with no "
                     "duplicates across the reconnect")

        done.set()
        _request(base, "DELETE", f"/sessions/{sid}")
        watcher.join(timeout=30)
        assert not watcher.is_alive(), "metrics client never finished"
        assert metric_kinds[0] == "snapshot", metric_kinds[:3]
        assert "delta" in metric_kinds, metric_kinds
        assert "session.created" in metric_kinds, metric_kinds
        steps.append("metrics stream delivered snapshot, deltas and "
                     "lifecycle events")

        status, page = _request(base, "GET", "/dashboard")
        assert status == 200
        html = page.decode()
        assert "http://" not in html and "https://" not in html, \
            "dashboard must be fully self-contained"
        assert "EventSource" in html and "/stream/metrics" in html
        steps.append(f"/dashboard served {len(html)} bytes, fully "
                     "self-contained (no external references)")

        # Stop with a stream still open: the drain must end it cleanly.
        connection, response = _open_stream(server, "/stream/metrics")
        reader = _read_sse(response)
        assert next(reader)[1] == "snapshot"
    finally:
        server.stop()
    tail = [kind for _, kind, _ in reader]
    assert tail and tail[-1] == "shutdown", tail
    connection.close()
    steps.append("server stop drained the open stream with a shutdown event")

    results_dir = os.path.join(ROOT, "benchmarks", "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "dashboard_smoke.txt"), "w",
              encoding="utf-8") as handle:
        handle.write("==== dashboard smoke ====\n")
        handle.write("\n".join(steps) + "\n")
    with open(os.path.join(results_dir, "dashboard.html"), "w",
              encoding="utf-8") as handle:
        handle.write(html)
    print("\n".join(steps))
    print("dashboard smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
