#!/usr/bin/env python
"""Loopback smoke test of the service, runnable as a plain script (CI).

Starts a server on an ephemeral port, drives a 3-qubit QFT simulation
session step by step, exercises the cached ``/simulate`` path and the
Ex. 12 ``/verify`` check, asserts that ``/metrics`` exposes the request
counters, and writes the run report plus the metrics exposition to
``benchmarks/results/service_smoke.{txt,json}`` for artifact upload.

Environment: ``SERVICE_SMOKE_WORKERS`` (default 2) selects the pool size.
"""

from __future__ import annotations

import json
import os
import sys
import urllib.request

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.qc import library  # noqa: E402
from repro.service import DDToolServer, ServiceConfig  # noqa: E402


def _request(base, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=60) as response:
        body = response.read()
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(body)
        return response.status, body


def main() -> int:
    workers = int(os.environ.get("SERVICE_SMOKE_WORKERS", "2"))
    qft = library.qft(3).to_qasm()
    qft_compiled = library.qft_compiled(3).to_qasm()
    steps = []

    config = ServiceConfig(port=0, workers=workers)
    with DDToolServer(config) as server:
        base = server.url
        steps.append(f"server listening at {base} with {workers} worker(s)")

        status, health = _request(base, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok", health
        steps.append("healthz ok")

        # Drive a QFT simulation session step by step.
        status, session = _request(base, "POST", "/sessions", {
            "kind": "simulation", "qasm": qft, "seed": 0,
        })
        assert status == 201, session
        sid = session["session_id"]
        position = 0
        while True:
            status, state = _request(
                base, "POST", f"/sessions/{sid}/step", {"action": "forward"}
            )
            assert status == 200, state
            position = state["position"]
            if state["at_end"]:
                break
        assert state["node_count"] == 3, state
        steps.append(f"stepped QFT session to the end ({position} steps, "
                     f"{state['node_count']} nodes)")
        _request(base, "DELETE", f"/sessions/{sid}")

        # Cached one-shot simulation.
        payload = {"qasm": qft, "shots": 64, "seed": 0}
        status, first = _request(base, "POST", "/simulate", payload)
        assert status == 200 and first["cached"] is False, first
        status, second = _request(base, "POST", "/simulate", payload)
        assert status == 200 and second["cached"] is True, second
        steps.append("repeated /simulate served from the result cache")

        # Paper Ex. 12 through the API.
        status, verdict = _request(base, "POST", "/verify", {
            "left": qft, "right": qft_compiled, "strategy": "compilation-flow",
        })
        assert status == 200 and verdict["equivalent"], verdict
        assert verdict["peak_nodes"] == 9, verdict
        steps.append("verify(qft3, compiled) equivalent with peak 9 nodes")

        status, metrics = _request(base, "GET", "/metrics")
        assert status == 200
        text = metrics.decode()
        assert "service_requests_total{" in text, text[:400]
        assert "service_cache_hits_total 1" in text, text[:400]
        steps.append("/metrics exposes request counters and the cache hit")

        status, report = _request(base, "GET", "/report")
        assert status == 200

    results_dir = os.path.join(ROOT, "benchmarks", "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "service_smoke.txt"), "w",
              encoding="utf-8") as handle:
        handle.write("==== service smoke ====\n")
        handle.write("\n".join(steps) + "\n\n")
        handle.write(report.decode())
        handle.write("\n")
    with open(os.path.join(results_dir, "service_smoke.json"), "w",
              encoding="utf-8") as handle:
        json.dump({"steps": steps, "metrics": text.splitlines()},
                  handle, indent=2)
        handle.write("\n")
    print("\n".join(steps))
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
