#!/usr/bin/env python
"""Self-hosted saturation run of the service front end.

Boots a loopback :class:`~repro.service.server.DDToolServer`, drives it
with the multi-process load generator (:mod:`repro.service.loadgen`) in
the cached and uncached regimes, prints the obs run report, and writes

* ``benchmarks/results/service_loadgen.json`` — the campaign-format
  artifact (``qdd-campaign-artifact-v1``) with p50/p95/p99 and rps per
  (mode, connections) cell;
* ``benchmarks/results/service_loadgen.txt`` — the human-readable
  metrics report.

Used by the CI ``service-load`` smoke job (200 connections, 10 s) and
by hand for full saturation runs::

    PYTHONPATH=src python scripts/service_loadgen.py \
        --connections 1000 --duration 10 --processes 4

Exit status is non-zero if any transport errors occurred, so CI fails
when the front end drops connections under load.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.export import run_report  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.service import DDToolServer, ServiceConfig  # noqa: E402
from repro.service.loadgen import (  # noqa: E402
    load_artifact,
    publish_metrics,
    run_load,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--connections", type=int, default=200,
                        help="concurrent keep-alive connections (default 200)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds per regime (default 10)")
    parser.add_argument("--processes", type=int, default=2,
                        help="generator processes (default 2)")
    parser.add_argument("--workers", type=int, default=2,
                        help="server worker shards (default 2)")
    parser.add_argument("--frontend", choices=("eventloop", "threaded"),
                        default="eventloop")
    parser.add_argument("--modes", default="cached,uncached",
                        help="comma list of regimes (default cached,uncached)")
    parser.add_argument("--uncached-connections", type=int, default=None,
                        help="override connection count for the uncached "
                             "regime (defaults to --connections)")
    parser.add_argument("--output-dir", type=Path,
                        default=REPO_ROOT / "benchmarks" / "results")
    args = parser.parse_args(argv)

    modes = [mode.strip() for mode in args.modes.split(",") if mode.strip()]
    config = ServiceConfig(
        port=0, workers=args.workers, cache_capacity=4096,
        frontend=args.frontend,
    )
    registry = MetricsRegistry(enabled=True)
    results = []
    with DDToolServer(config) as server:
        host, port = server.address
        print(f"serving on {server.url} ({args.frontend} front end, "
              f"{args.workers} worker shards)", file=sys.stderr)
        for mode in modes:
            connections = args.connections
            if mode == "uncached" and args.uncached_connections is not None:
                connections = args.uncached_connections
            print(f"[{mode}] {connections} connections for "
                  f"{args.duration:.0f}s ...", file=sys.stderr)
            result = run_load(
                host, port,
                connections=connections,
                duration=args.duration,
                processes=args.processes,
                mode=mode,
            )
            publish_metrics(result, registry)
            results.append(result)
            print(f"[{mode}] {result.requests} requests, "
                  f"{result.rps:.1f} req/s, p50={result.p50_ms:.2f}ms "
                  f"p99={result.p99_ms:.2f}ms, errors={result.errors}",
                  file=sys.stderr)

    report = run_report(
        registry,
        title=f"service loadgen ({args.frontend}, "
              f"{args.connections} connections)",
    )
    print(report)

    artifact = load_artifact(results, frontend=args.frontend)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    json_path = args.output_dir / "service_loadgen.json"
    text_path = args.output_dir / "service_loadgen.txt"
    json_path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    text_path.write_text(report + "\n")
    print(f"wrote {json_path} and {text_path}", file=sys.stderr)

    total_errors = sum(result.errors for result in results)
    if total_errors:
        print(f"FAIL: {total_errors} transport errors", file=sys.stderr)
        return 1
    if any(result.requests == 0 for result in results):
        print("FAIL: a regime completed zero requests", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
