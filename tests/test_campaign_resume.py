"""Resume after SIGKILL — the executor's durability contract, end to end.

Launches ``qdd-tool campaign run`` as a real subprocess, SIGKILLs it once
the journal shows partial progress, then resumes in-process and checks:

* cells journaled before the kill are **not** re-executed (each appears
  exactly once in the manifest afterwards);
* the final aggregate is identical (modulo wall-clock timing) to an
  uninterrupted run of the same spec.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import deterministic_view, load_spec, run_campaign

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

# ~0.1s per cell on one core: slow enough to land a kill mid-campaign,
# fast enough that the uninterrupted reference run stays cheap.
SPEC = {
    "format": "qdd-campaign-spec-v1",
    "name": "killable",
    "description": "SIGKILL resume fixture",
    "cells": {
        "families": [
            {"family": "random", "sizes": [10], "params": {"depth": 80}},
        ],
        "seeds": list(range(20)),
        "packages": [{"label": "default"}],
    },
    "execution": {"workers": 0, "cell_timeout": 60.0},
    "gates": [{"metric": "final_nodes", "tolerance_pct": 0.0}],
}


def _cell_lines(manifest_path):
    """The journaled cell records (header excluded, torn lines skipped)."""
    if not os.path.exists(manifest_path):
        return []
    records = []
    with open(manifest_path, "r", encoding="utf-8") as handle:
        for line in handle:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and entry.get("cell_id"):
                records.append(entry)
    return records


@pytest.mark.slow
def test_sigkill_then_resume(tmp_path):
    spec_path = tmp_path / "killable.json"
    spec_path.write_text(json.dumps(SPEC), encoding="utf-8")
    out = tmp_path / "out"
    manifest_path = os.path.join(str(out), "manifest.jsonl")

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run", str(spec_path),
         "--out", str(out), "--quiet"],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if len(_cell_lines(manifest_path)) >= 2:
                break
            if process.poll() is not None:
                pytest.fail(
                    "campaign subprocess exited before it could be killed"
                )
            time.sleep(0.01)
        else:
            pytest.fail("campaign subprocess made no journal progress")
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    survivors = _cell_lines(manifest_path)
    survivor_ids = [record["cell_id"] for record in survivors]
    assert len(survivor_ids) >= 2
    assert len(survivor_ids) < 20, "kill landed after the campaign finished"

    spec = load_spec(str(spec_path))
    resumed = run_campaign(spec, str(out))
    assert resumed["summary"]["ok"] == 20
    assert resumed["summary"]["statuses"] == {"ok": 20}

    # Completed cells were not re-executed: each pre-kill record is still
    # journaled exactly once (a re-run would have appended a second line).
    after = [record["cell_id"] for record in _cell_lines(manifest_path)]
    for cell_id in survivor_ids:
        assert after.count(cell_id) == 1, cell_id
    assert sorted(after) == sorted(
        f"random-n10-default-s{seed}-r0" for seed in range(20)
    )

    # The aggregate matches an uninterrupted run of the same spec.
    reference = run_campaign(spec, str(tmp_path / "reference"), fresh=True)
    assert deterministic_view(resumed) == deterministic_view(reference)
