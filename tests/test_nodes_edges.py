"""Unit tests for nodes and edges."""

import pytest

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge, ONE_EDGE, ZERO_EDGE
from repro.dd.node import MatrixNode, TERMINAL, VectorNode


class TestNodes:
    def test_terminal_properties(self):
        assert TERMINAL.is_terminal
        assert TERMINAL.var == -1
        assert TERMINAL.edges == ()

    def test_vector_node_arity(self):
        node = VectorNode(0, (ZERO_EDGE, ONE_EDGE))
        assert not node.is_terminal
        assert len(node.edges) == 2
        with pytest.raises(ValueError):
            VectorNode(0, (ZERO_EDGE,))

    def test_matrix_node_arity(self):
        node = MatrixNode(0, (ONE_EDGE, ZERO_EDGE, ZERO_EDGE, ONE_EDGE))
        assert len(node.edges) == 4
        with pytest.raises(ValueError):
            MatrixNode(0, (ZERO_EDGE, ONE_EDGE))

    def test_uids_are_unique(self):
        a = VectorNode(0, (ZERO_EDGE, ONE_EDGE))
        b = VectorNode(0, (ZERO_EDGE, ONE_EDGE))
        assert a.uid != b.uid


class TestEdges:
    def test_zero_edge(self):
        assert ZERO_EDGE.is_zero
        assert ZERO_EDGE.is_terminal
        assert ZERO_EDGE.weight == ComplexTable.ZERO

    def test_one_edge(self):
        assert not ONE_EDGE.is_zero
        assert ONE_EDGE.is_terminal

    def test_with_weight(self):
        edge = ONE_EDGE.with_weight(0.5 + 0j)
        assert edge.weight == 0.5 + 0j
        assert edge.node is TERMINAL

    def test_scaled_by_one_is_identity(self):
        table = ComplexTable()
        edge = Edge(TERMINAL, table.lookup(0.25))
        assert edge.scaled(ComplexTable.ONE, table) is edge

    def test_scaled_to_zero_collapses(self):
        table = ComplexTable()
        edge = Edge(TERMINAL, table.lookup(0.25))
        assert edge.scaled(ComplexTable.ZERO, table) is ZERO_EDGE

    def test_scaled_multiplies_and_canonicalizes(self):
        table = ComplexTable()
        edge = Edge(TERMINAL, table.lookup(0.5))
        scaled = edge.scaled(table.lookup(0.5), table)
        assert scaled.weight == table.lookup(0.25)

    def test_edges_are_value_objects(self):
        table = ComplexTable()
        weight = table.lookup(0.5)
        assert Edge(TERMINAL, weight) == Edge(TERMINAL, weight)
