"""Property-based tests for the extension subsystems: density matrices,
state-preparation synthesis, and circuit transforms."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dd import DDPackage, density
from repro.qc import library
from repro.qc.transforms import (
    decompose_to_primitives,
    permute_qubits,
    remove_barriers,
)
from repro.simulation import DDSimulator, DensityMatrixSimulator, build_unitary
from repro.synthesis import prepare_state
from tests.test_properties import random_circuits, state_vectors


class TestDensityProperties:
    @given(vector=state_vectors(max_qubits=3))
    @settings(max_examples=40, deadline=None)
    def test_pure_density_has_unit_trace_and_purity(self, vector):
        package = DDPackage()
        rho = density.density_from_statevector(package, vector)
        assert abs(density.trace(package, rho) - 1.0) < 1e-9
        assert abs(density.purity(package, rho) - 1.0) < 1e-9

    @given(vector=state_vectors(max_qubits=3), qubit_seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_partial_trace_preserves_trace(self, vector, qubit_seed):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        qubit = qubit_seed % n
        rho = density.density_from_statevector(package, vector)
        reduced = density.partial_trace(package, rho, [qubit])
        if n == 1:
            assert abs(reduced.weight - 1.0) < 1e-9
        else:
            assert abs(density.trace(package, reduced) - 1.0) < 1e-9

    @given(vector=state_vectors(max_qubits=3), qubit_seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_reset_preserves_trace_and_zeros_the_qubit(self, vector, qubit_seed):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        qubit = qubit_seed % n
        rho = density.density_from_statevector(package, vector)
        after = density.reset(package, rho, qubit)
        assert abs(density.trace(package, after) - 1.0) < 1e-9
        p0, p1 = density.measure_probabilities(package, after, qubit)
        assert p1 < 1e-9

    @given(vector=state_vectors(max_qubits=3))
    @settings(max_examples=30, deadline=None)
    def test_density_diagonal_is_outcome_distribution(self, vector):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        rho = density.density_from_statevector(package, vector)
        dense = package.to_matrix(rho, n)
        assert np.allclose(np.diag(dense).real, np.abs(vector) ** 2, atol=1e-9)


class TestSynthesisProperties:
    @given(vector=state_vectors(max_qubits=4))
    @settings(max_examples=40, deadline=None)
    def test_prepared_state_matches_target(self, vector):
        circuit = prepare_state(vector)
        simulator = DDSimulator(circuit)
        simulator.run_all()
        fidelity = abs(np.vdot(simulator.statevector(), vector)) ** 2
        assert fidelity > 1.0 - 1e-9

    @given(vector=state_vectors(max_qubits=3))
    @settings(max_examples=25, deadline=None)
    def test_optimized_and_raw_agree(self, vector):
        for optimize in (True, False):
            circuit = prepare_state(vector, optimize=optimize)
            simulator = DDSimulator(circuit)
            simulator.run_all()
            assert abs(np.vdot(simulator.statevector(), vector)) ** 2 > 1 - 1e-9


class TestTransformProperties:
    @given(circuit=random_circuits(max_qubits=3, max_depth=15),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_permutation_conjugates(self, circuit, seed):
        rng = np.random.default_rng(seed)
        mapping = list(rng.permutation(circuit.num_qubits))
        permuted = permute_qubits(circuit, mapping)
        size = 1 << circuit.num_qubits
        p_matrix = np.zeros((size, size))
        for basis in range(size):
            image = 0
            for line in range(circuit.num_qubits):
                if basis & (1 << line):
                    image |= 1 << mapping[line]
            p_matrix[image, basis] = 1.0
        expected = p_matrix @ build_unitary(circuit) @ p_matrix.T
        assert np.allclose(build_unitary(permuted), expected, atol=1e-9)

    @given(circuit=random_circuits(max_qubits=3, max_depth=15))
    @settings(max_examples=25, deadline=None)
    def test_remove_barriers_preserves_unitary(self, circuit):
        assert np.allclose(
            build_unitary(remove_barriers(circuit)),
            build_unitary(circuit),
            atol=1e-9,
        )

    @given(circuit=random_circuits(max_qubits=3, max_depth=12))
    @settings(max_examples=20, deadline=None)
    def test_decompose_preserves_unitary(self, circuit):
        compiled = decompose_to_primitives(circuit)
        assert np.allclose(
            build_unitary(compiled), build_unitary(circuit), atol=1e-9
        )


class TestSimulatorAgreement:
    @given(circuit=random_circuits(max_qubits=3, max_depth=12))
    @settings(max_examples=20, deadline=None)
    def test_density_simulator_matches_vector_simulator_on_unitaries(
        self, circuit
    ):
        exact = DensityMatrixSimulator(circuit)
        exact.run()
        vector_sim = DDSimulator(circuit)
        vector_sim.run_all()
        vector = vector_sim.statevector()
        assert np.allclose(
            exact.density_matrix(), np.outer(vector, vector.conj()), atol=1e-8
        )
