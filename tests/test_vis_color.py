"""Unit tests for the HLS color wheel and weight formatting (Fig. 7(b))."""

import math

from repro.vis.color import (
    hls_wheel_color,
    phase_to_color,
    pretty_complex,
    weight_to_width,
)


class TestColorWheel:
    def test_phase_zero_is_red(self):
        assert hls_wheel_color(0.0) == "#ff0000"

    def test_cardinal_phases_are_distinct(self):
        colors = {
            hls_wheel_color(k * math.pi / 2) for k in range(4)
        }
        assert len(colors) == 4

    def test_full_turn_wraps(self):
        assert hls_wheel_color(2 * math.pi) == hls_wheel_color(0.0)

    def test_phase_to_color_uses_weight_phase(self):
        assert phase_to_color(complex(1.0, 0.0)) == "#ff0000"
        assert phase_to_color(complex(2.0, 0.0)) == "#ff0000"  # magnitude-free

    def test_negative_real_is_cyan(self):
        # pi phase -> hue 0.5 -> cyan.
        assert phase_to_color(complex(-1.0, 0.0)) == "#00ffff"

    def test_output_format(self):
        color = hls_wheel_color(1.234)
        assert color.startswith("#") and len(color) == 7


class TestWidth:
    def test_magnitude_one_gives_maximum(self):
        assert weight_to_width(1.0 + 0j) == 4.0

    def test_magnitude_zero_gives_minimum(self):
        assert weight_to_width(0.0 + 0j) == 0.5

    def test_linear_midpoint(self):
        assert abs(weight_to_width(0.5 + 0j) - 2.25) < 1e-12

    def test_clipped_above_one(self):
        assert weight_to_width(5.0 + 0j) == 4.0

    def test_custom_bounds(self):
        assert weight_to_width(1.0, minimum=1.0, maximum=2.0) == 2.0


class TestPrettyComplex:
    def test_integers(self):
        assert pretty_complex(1.0 + 0j) == "1"
        assert pretty_complex(-2.0 + 0j) == "-2"

    def test_sqrt2_fractions(self):
        inv = 1.0 / math.sqrt(2.0)
        assert pretty_complex(complex(inv, 0)) == "1/√2"
        assert pretty_complex(complex(-inv, 0)) == "-1/√2"
        assert pretty_complex(complex(inv**2, 0)) == "1/2"

    def test_imaginary_units(self):
        assert pretty_complex(1j) == "i"
        assert pretty_complex(-1j) == "-i"
        assert pretty_complex(0.5j) == "1/2i"

    def test_unit_magnitude_phase_form(self):
        value = complex(math.cos(0.3), math.sin(0.3))
        rendered = pretty_complex(value)
        assert rendered.startswith("e^(i")

    def test_general_complex(self):
        rendered = pretty_complex(0.25 + 0.1j)
        assert "+" in rendered and rendered.endswith("i")

    def test_simple_fractions(self):
        assert pretty_complex(0.25 + 0j) == "1/4"
