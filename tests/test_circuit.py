"""Unit tests for the circuit IR and operations."""

import math

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.qc import QuantumCircuit
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, ResetOp
from repro.simulation import build_unitary


class TestOperations:
    def test_gateop_validates_arity(self):
        with pytest.raises(CircuitError):
            GateOp(gate="h", targets=(0, 1))
        with pytest.raises(CircuitError):
            GateOp(gate="rx", targets=(0,))  # missing parameter

    def test_gateop_rejects_duplicate_lines(self):
        with pytest.raises(CircuitError):
            GateOp(gate="x", targets=(0,), controls=(0,))

    def test_gateop_qubits(self):
        op = GateOp(gate="x", targets=(0,), controls=(2,), negative_controls=(1,))
        assert set(op.qubits) == {0, 1, 2}
        assert op.num_controls == 2

    def test_gateop_unitary_flag(self):
        plain = GateOp(gate="x", targets=(0,))
        conditioned = GateOp(gate="x", targets=(0,), condition=((0,), 1))
        assert plain.is_unitary
        assert not conditioned.is_unitary

    def test_gateop_inverse_keeps_lines(self):
        op = GateOp(gate="s", targets=(0,), controls=(1,))
        inverse = op.inverse()
        assert inverse.gate == "sdg"
        assert inverse.controls == (1,)

    def test_conditioned_inverse_rejected(self):
        op = GateOp(gate="x", targets=(0,), condition=((0,), 1))
        with pytest.raises(CircuitError):
            op.inverse()

    def test_label_renders_pi_fractions(self):
        op = GateOp(gate="p", params=(math.pi / 2,), targets=(0,))
        assert op.label() == "P(pi/2)"
        op = GateOp(gate="p", params=(-math.pi / 4,), targets=(0,))
        assert op.label() == "P(-pi/4)"

    def test_measure_reset_barrier_qubits(self):
        assert MeasureOp(qubit=1, clbit=0).qubits == (1,)
        assert ResetOp(qubit=2).qubits == (2,)
        assert BarrierOp(lines=(0, 1)).qubits == (0, 1)


class TestCircuitBuilding:
    def test_requires_positive_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)
        with pytest.raises(CircuitError):
            QuantumCircuit(2, -1)

    def test_builder_methods_chain(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).barrier().measure(0, 0)
        assert len(circuit) == 5

    def test_out_of_range_qubit(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.h(2)

    def test_out_of_range_clbit(self):
        circuit = QuantumCircuit(2, 1)
        with pytest.raises(CircuitError):
            circuit.measure(0, 1)

    def test_condition_value_range(self):
        circuit = QuantumCircuit(1, 2)
        with pytest.raises(CircuitError):
            circuit.gate("x", [0], condition=([0, 1], 4))

    def test_swap_orders_targets_high_low(self):
        circuit = QuantumCircuit(3)
        circuit.swap(0, 2)
        assert circuit[0].targets == (2, 0)
        circuit.swap(2, 0)
        assert circuit[1].targets == (2, 0)

    def test_barrier_defaults_to_all_lines(self):
        circuit = QuantumCircuit(3)
        circuit.barrier()
        assert circuit[0].lines == (0, 1, 2)

    def test_measure_all(self):
        circuit = QuantumCircuit(2, 2)
        circuit.measure_all()
        assert circuit.count_ops() == {"measure": 2}
        with pytest.raises(CircuitError):
            QuantumCircuit(2, 1).measure_all()

    def test_iteration_and_indexing(self):
        circuit = QuantumCircuit(1)
        circuit.x(0).z(0)
        assert [op.gate for op in circuit] == ["x", "z"]
        assert circuit[1].gate == "z"


class TestCircuitQueries:
    def test_count_ops_with_controls(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).ccx(0, 1, 2)
        assert circuit.count_ops() == {"h": 1, "cx": 1, "ccx": 1}

    def test_num_gates_excludes_specials(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0).barrier().measure(0, 0).reset(1)
        assert circuit.num_gates == 1

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        assert circuit.depth() == 1

    def test_depth_serial_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        assert circuit.depth() == 3

    def test_depth_barrier_forces_layer(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        assert circuit.depth() == 2

    def test_has_nonunitary_operations(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).barrier()
        assert not circuit.has_nonunitary_operations
        circuit.measure(0, 0)
        assert circuit.has_nonunitary_operations


class TestInverseCompose:
    def test_inverse_gives_identity(self):
        circuit = QuantumCircuit(2)
        circuit.h(1).cx(1, 0).t(0).rz(0.3, 1).swap(0, 1)
        combined = circuit.compose(circuit.inverse())
        assert np.allclose(build_unitary(combined), np.eye(4))

    def test_inverse_preserves_barriers(self):
        circuit = QuantumCircuit(1)
        circuit.x(0).barrier().s(0)
        inverse = circuit.inverse()
        kinds = [type(op).__name__ for op in inverse]
        assert kinds == ["GateOp", "BarrierOp", "GateOp"]
        assert inverse[0].gate == "sdg"

    def test_inverse_rejects_measurement(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.inverse()

    def test_compose_size_mismatch(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        clone = circuit.copy()
        clone.z(0)
        assert len(circuit) == 1
        assert len(clone) == 2
