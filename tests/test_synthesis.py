"""Unit tests for DD-based state-preparation synthesis."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage, NormalizationScheme
from repro.errors import DDError, InvalidStateError
from repro.qc import library
from repro.simulation import DDSimulator
from repro.synthesis import prepare_state, synthesize_state_preparation
from tests.conftest import random_state


def _fidelity(circuit, target):
    simulator = DDSimulator(circuit)
    simulator.run_all()
    return abs(np.vdot(simulator.statevector(), target)) ** 2


class TestCorrectness:
    @pytest.mark.parametrize("index", [0, 1, 5, 7])
    def test_basis_states(self, index):
        target = np.zeros(8)
        target[index] = 1.0
        circuit = prepare_state(target)
        assert _fidelity(circuit, target) > 1.0 - 1e-9
        # Basis states need only X gates.
        assert all(op.gate == "x" for op in circuit)

    def test_bell_state(self):
        target = np.array([1, 0, 0, 1]) / math.sqrt(2)
        circuit = prepare_state(target)
        assert _fidelity(circuit, target) > 1.0 - 1e-9

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_random_states(self, n, rng):
        target = random_state(n, rng)
        circuit = prepare_state(target)
        assert _fidelity(circuit, target) > 1.0 - 1e-9

    def test_complex_phases(self, rng):
        target = np.exp(1j * rng.uniform(0, 2 * np.pi, size=8))
        target /= np.linalg.norm(target)
        circuit = prepare_state(target)
        assert _fidelity(circuit, target) > 1.0 - 1e-9

    def test_from_existing_dd(self, package):
        simulator = DDSimulator(library.w_state(5), package=package)
        simulator.run_all()
        circuit = synthesize_state_preparation(package, simulator.state)
        assert _fidelity(circuit, simulator.statevector()) > 1.0 - 1e-9

    def test_unoptimized_variant(self, rng):
        target = random_state(3, rng)
        circuit = prepare_state(target, optimize=False)
        assert _fidelity(circuit, target) > 1.0 - 1e-9


class TestGateCounts:
    def test_ghz_is_linear(self, package):
        simulator = DDSimulator(library.ghz_state(10), package=package)
        simulator.run_all()
        circuit = synthesize_state_preparation(package, simulator.state)
        assert circuit.num_gates == 10

    def test_uniform_superposition_is_linear(self):
        n = 6
        target = np.full(1 << n, (1 << n) ** -0.5)
        circuit = prepare_state(target)
        assert circuit.num_gates == n
        # All uncontrolled single-qubit rotations.
        assert all(op.num_controls == 0 for op in circuit)

    def test_w_state_is_quadratic(self, package):
        for n in (3, 5, 7):
            simulator = DDSimulator(library.w_state(n), package=package)
            simulator.run_all()
            circuit = synthesize_state_preparation(package, simulator.state)
            assert circuit.num_gates <= n * (n + 1) // 2

    def test_optimization_reduces_uniform_count(self):
        n = 5
        target = np.full(1 << n, (1 << n) ** -0.5)
        optimized = prepare_state(target, optimize=True)
        raw = prepare_state(target, optimize=False)
        assert optimized.num_gates == n
        assert raw.num_gates == (1 << n) - 1


class TestValidation:
    def test_rejects_unnormalized(self):
        with pytest.raises(InvalidStateError):
            prepare_state([1.0, 1.0])

    def test_rejects_zero_vector_dd(self, package):
        from repro.dd.edge import ZERO_EDGE

        with pytest.raises(InvalidStateError):
            synthesize_state_preparation(package, ZERO_EDGE)

    def test_rejects_max_magnitude_scheme(self, max_package):
        state = max_package.from_state_vector([1.0, 0.0])
        with pytest.raises(DDError):
            synthesize_state_preparation(max_package, state)


class TestRoundtrip:
    def test_synthesis_composes_with_verification(self):
        """The synthesized Bell preparation agrees with the paper's Bell
        circuit on the |00> input (they may differ on other columns)."""
        from repro.dd import DDPackage
        from repro.qc.dd_builder import circuit_to_dd

        target = np.array([1, 0, 0, 1]) / math.sqrt(2)
        synthesized = prepare_state(target)
        reference = library.bell_pair()
        package = DDPackage()
        zero = package.zero_state(2)
        out_a = package.multiply(circuit_to_dd(package, synthesized), zero)
        out_b = package.multiply(circuit_to_dd(package, reference), zero)
        assert package.fidelity(out_a, out_b) > 1.0 - 1e-9

    def test_simulate_synthesize_simulate_is_fixpoint(self, package, rng):
        """prepare(simulate(prepare(v))) reproduces v."""
        target = random_state(3, rng)
        circuit = prepare_state(target, package=package)
        simulator = DDSimulator(circuit, package=package)
        simulator.run_all()
        again = synthesize_state_preparation(package, simulator.state)
        assert _fidelity(again, target) > 1.0 - 1e-9
