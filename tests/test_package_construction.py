"""Unit tests for DD construction: states, basis states, matrices."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.dd.node import TERMINAL
from repro.errors import DDError, InvalidStateError

INV_SQRT2 = 1.0 / math.sqrt(2.0)


class TestStates:
    def test_zero_state_vector(self, package):
        state = package.zero_state(3)
        vector = package.to_vector(state)
        expected = np.zeros(8)
        expected[0] = 1.0
        assert np.allclose(vector, expected)

    def test_zero_state_is_minimal(self, package):
        # One node per level: the most compact possible representation.
        assert package.node_count(package.zero_state(5)) == 5

    def test_basis_state_from_int(self, package):
        state = package.basis_state(3, 5)  # |101>
        vector = package.to_vector(state)
        assert vector[5] == 1.0
        assert np.sum(np.abs(vector)) == 1.0

    def test_basis_state_from_string(self, package):
        state = package.basis_state(3, "101")
        assert package.to_vector(state)[5] == 1.0

    def test_basis_state_from_bits(self, package):
        state = package.basis_state(3, [1, 0, 1])
        assert package.to_vector(state)[5] == 1.0

    def test_basis_state_out_of_range(self, package):
        with pytest.raises(DDError):
            package.basis_state(2, 4)
        with pytest.raises(DDError):
            package.basis_state(2, "011")
        with pytest.raises(DDError):
            package.basis_state(0, 0)

    def test_bell_state_structure(self, package):
        """Paper Ex. 6 / Fig. 2(a): 3 nodes, amplitudes 1/sqrt(2)."""
        state = package.from_state_vector([INV_SQRT2, 0.0, 0.0, INV_SQRT2])
        assert package.node_count(state) == 3
        assert abs(package.amplitude(state, "00") - INV_SQRT2) < 1e-12
        assert abs(package.amplitude(state, "11") - INV_SQRT2) < 1e-12
        assert package.amplitude(state, "01") == 0.0
        assert package.amplitude(state, "10") == 0.0

    def test_from_state_vector_roundtrip(self, package, rng):
        from tests.conftest import random_state

        vector = random_state(4, rng)
        state = package.from_state_vector(vector)
        assert np.allclose(package.to_vector(state), vector)

    def test_from_state_vector_invalid_length(self, package):
        with pytest.raises(InvalidStateError):
            package.from_state_vector([1.0, 0.0, 0.0])
        with pytest.raises(InvalidStateError):
            package.from_state_vector([1.0])

    def test_product_state_shares_nodes(self, package):
        """|+>^n has exactly one node per level thanks to sharing."""
        n = 4
        vector = np.full(1 << n, (INV_SQRT2) ** n)
        state = package.from_state_vector(vector)
        assert package.node_count(state) == n

    def test_canonicity_same_vector_same_node(self, package):
        a = package.from_state_vector([0.6, 0.0, 0.8, 0.0])
        b = package.from_state_vector([0.6, 0.0, 0.8, 0.0])
        assert a.node is b.node
        assert a.weight == b.weight

    def test_l2_normalized_subtrees(self, package):
        """Under the L2 scheme, every node's successor weights have norm 1."""
        state = package.from_state_vector([0.1, 0.2, 0.3, np.sqrt(0.86)])
        stack = [state.node]
        seen = set()
        while stack:
            node = stack.pop()
            if node.is_terminal or node in seen:
                continue
            seen.add(node)
            total = sum(abs(edge.weight) ** 2 for edge in node.edges)
            assert abs(total - 1.0) < 1e-9
            stack.extend(edge.node for edge in node.edges)


class TestMatrices:
    def test_identity(self, package):
        operation = package.identity(3)
        assert np.allclose(package.to_matrix(operation), np.eye(8))
        assert package.node_count(operation) == 3

    def test_identity_requires_positive_size(self, package):
        with pytest.raises(DDError):
            package.identity(0)

    def test_from_matrix_roundtrip(self, package, rng):
        from tests.conftest import random_unitary

        matrix = random_unitary(3, rng)
        operation = package.from_matrix(matrix)
        assert np.allclose(package.to_matrix(operation), matrix)

    def test_from_matrix_shape_checks(self, package):
        with pytest.raises(DDError):
            package.from_matrix(np.zeros((3, 3)))
        with pytest.raises(DDError):
            package.from_matrix(np.zeros((2, 4)))
        with pytest.raises(DDError):
            package.from_matrix(np.zeros((1, 1)))

    def test_hadamard_dd_single_node(self, package):
        """Paper Fig. 2(b): the Hadamard DD has one node."""
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        operation = package.from_matrix(h)
        assert package.node_count(operation) == 1
        assert np.allclose(package.to_matrix(operation), h)

    def test_cnot_dd_three_nodes(self, package):
        """Paper Fig. 2(c): the CNOT DD has one q1 node and two q0 nodes."""
        cnot = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=float
        )
        operation = package.from_matrix(cnot)
        assert package.node_count(operation) == 3

    def test_matrix_entry(self, package):
        cnot = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=float
        )
        operation = package.from_matrix(cnot)
        for row in range(4):
            for column in range(4):
                assert (
                    abs(package.matrix_entry(operation, row, column) - cnot[row, column])
                    < 1e-12
                )

    def test_canonicity_same_matrix_same_node(self, package, rng):
        from tests.conftest import random_unitary

        matrix = random_unitary(2, rng)
        a = package.from_matrix(matrix)
        b = package.from_matrix(matrix.copy())
        assert a.node is b.node


class TestQueries:
    def test_num_qubits(self, package):
        assert package.num_qubits(package.zero_state(4)) == 4
        assert package.num_qubits(package.identity(2)) == 2

    def test_node_count_excludes_terminal(self, package):
        state = package.zero_state(1)
        assert package.node_count(state) == 1
        assert state.node.edges[0].node is TERMINAL

    def test_amplitude_of_zero_branch(self, package):
        state = package.zero_state(2)
        assert package.amplitude(state, "11") == 0.0

    def test_norm_squared(self, package):
        state = package.from_state_vector([0.6, 0.0, 0.0, 0.8])
        assert abs(package.norm_squared(state) - 1.0) < 1e-12

    def test_fidelity_orthogonal_and_identical(self, package):
        a = package.basis_state(2, 0)
        b = package.basis_state(2, 3)
        assert package.fidelity(a, b) == 0.0
        assert abs(package.fidelity(a, a) - 1.0) < 1e-12

    def test_stats_structure(self, package):
        state = package.zero_state(3)  # noqa: F841 - keeps the nodes alive
        stats = package.stats()
        assert "unique_vector" in stats
        assert "add" in stats
        assert stats["unique_vector"]["entries"] >= 1

    def test_clear_caches(self, package):
        a = package.single_qubit_gate(2, np.array([[0, 1], [1, 0]]), 0)
        package.multiply(a, package.zero_state(2))
        package.clear_caches()
        assert package.stats()["mult-mv"]["entries"] == 0
