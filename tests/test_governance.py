"""Resource-governance tests: budgets, refcounted roots, mark-and-sweep GC.

The governor must reclaim memory without ever compromising canonicity:
every live root (simulator states, verification engines, session holds)
has to read back the exact same amplitudes after any number of
collections, and the paper's headline numbers (Ex. 12's peak of 9 nodes)
must be unaffected by running under a tight budget.
"""

import math

import pytest

from repro.dd import (
    DDPackage,
    GcStats,
    MemoryBudget,
    PressureLevel,
    ResourceGovernor,
)
from repro.dd.edge import Edge
from repro.dd.node import TERMINAL
from repro.errors import DDError
from repro.qc import library
from repro.qc.circuit import QuantumCircuit
from repro.simulation.simulator import DDSimulator
from repro.tool.session import SimulationSession, VerificationSession
from repro.verification import ApplicationStrategy, check_equivalence_alternating


# ----------------------------------------------------------------------
# budget validation and pressure arithmetic
# ----------------------------------------------------------------------
class TestMemoryBudget:
    def test_default_budget_is_unlimited(self):
        budget = MemoryBudget()
        assert not budget.limited

    def test_any_limit_makes_it_limited(self):
        assert MemoryBudget(max_nodes=100).limited
        assert MemoryBudget(max_complex_entries=100).limited
        assert MemoryBudget(max_bytes=1 << 20).limited

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(max_nodes=0)
        with pytest.raises(ValueError):
            MemoryBudget(max_bytes=-1)
        with pytest.raises(ValueError):
            MemoryBudget(soft_fraction=0.0)
        with pytest.raises(ValueError):
            MemoryBudget(soft_fraction=1.5)
        with pytest.raises(ValueError):
            MemoryBudget(check_interval=0)

    def test_unlimited_budget_never_collects(self):
        package = DDPackage()
        simulator = DDSimulator(library.qft(3), package=package)
        simulator.run_all()
        assert package.governor.pressure() is PressureLevel.OK
        for _ in range(1000):
            assert not package.governor.should_collect()

    def test_pressure_tiers(self):
        package = DDPackage(budget=MemoryBudget(max_nodes=10))
        governor = package.governor
        assert governor.pressure() in (
            PressureLevel.OK, PressureLevel.SOFT, PressureLevel.HARD
        )
        # Ten thousand basis-state nodes blow any 10-node budget.
        tight = DDPackage(budget=MemoryBudget(max_nodes=2))
        simulator = DDSimulator(library.qft(3), package=tight)
        simulator.run_all()
        assert tight.governor.pressure() is PressureLevel.HARD
        assert tight.governor.utilization() > 1.0


# ----------------------------------------------------------------------
# refcounted roots
# ----------------------------------------------------------------------
class TestRootRegistry:
    def test_incref_returns_edge(self):
        package = DDPackage()
        state = package.zero_state(2)
        assert package.incref(state) is state

    def test_decref_of_unregistered_edge_is_noop(self):
        package = DDPackage()
        package.decref(package.zero_state(2))  # must not raise

    def test_registered_root_weight_survives_forced_gc(self):
        package = DDPackage()
        simulator = DDSimulator(library.ghz_state(3), package=package)
        simulator.run_all()
        state = simulator.state
        amplitude = package.amplitude(state, "000")
        package.gc(force=True)
        # The complex-table sweep must keep the root's weight: the exact
        # same representative object answers amplitude queries afterwards.
        assert package.amplitude(state, "000") == amplitude
        assert abs(amplitude - 1.0 / math.sqrt(2.0)) < 1e-12

    def test_dead_roots_are_purged_not_leaked(self):
        package = DDPackage(budget=MemoryBudget(max_nodes=10_000))
        for _ in range(32):
            simulator = DDSimulator(library.qft(3), package=package)
            simulator.run_all()
            simulator.close()
            del simulator
        package.gc(force=True)
        # After the holders died the registry self-cleans on collection.
        assert len(package.governor._roots) == 0


# ----------------------------------------------------------------------
# mark-and-sweep correctness
# ----------------------------------------------------------------------
class TestGarbageCollection:
    def test_forced_gc_returns_stats(self):
        package = DDPackage()
        stats = package.gc(force=True)
        assert isinstance(stats, GcStats)
        assert stats.level is PressureLevel.HARD
        assert stats.nodes_reclaimed >= 0
        assert stats.duration_seconds >= 0.0
        assert "nodes_reclaimed" in stats.as_dict()

    def test_gc_reclaims_dead_diagrams(self):
        package = DDPackage()
        simulator = DDSimulator(library.qft(4), package=package)
        simulator.run_all()
        complex_before = len(package.complex_table)
        simulator.close()
        del simulator
        package.gc(force=True)
        # Nodes die with their last reference (WeakValueDictionary) and the
        # sweep drops the now-orphaned complex entries down to ~the seeds.
        assert package.governor.node_count() <= 2
        assert len(package.complex_table) <= complex_before

    def test_live_states_read_back_identically_after_gc(self):
        # Property: for every live root, post-gc amplitudes are *exactly*
        # the pre-gc amplitudes (canonicity: identical objects, not merely
        # close values).
        package = DDPackage()
        simulator = DDSimulator(library.qft(3), package=package, seed=7)
        simulator.run_all()
        before = [
            package.amplitude(simulator.state, format(i, "03b"))
            for i in range(8)
        ]
        package.gc(force=True)
        after = [
            package.amplitude(simulator.state, format(i, "03b"))
            for i in range(8)
        ]
        assert before == after

    def test_simulation_continues_correctly_across_gc(self):
        package = DDPackage()
        reference = DDSimulator(library.qft(3), seed=3)
        reference.run_all()
        simulator = DDSimulator(library.qft(3), package=package, seed=3)
        for _ in range(3):
            simulator.step_forward()
        package.gc(force=True)
        while not simulator.at_end:
            simulator.step_forward()
        assert simulator.statevector() == pytest.approx(
            reference.statevector()
        )

    def test_budgeted_package_stays_within_reach_of_budget(self):
        # Repeated throwaway simulations under a tight budget must not grow
        # tables without bound: periodic collection keeps reclaiming them.
        package = DDPackage(budget=MemoryBudget(max_nodes=64, check_interval=8))
        for _ in range(20):
            simulator = DDSimulator(library.qft(3), package=package)
            simulator.run_all()
            simulator.close()
            del simulator
        package.gc(force=True)
        assert package.governor.node_count() <= 64
        assert package.governor.stats()["gc_runs"] >= 1

    def test_gc_metrics_exported(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        package = DDPackage(registry=registry)
        simulator = DDSimulator(library.qft(3), package=package)
        simulator.run_all()
        package.gc(force=True)
        registry.collect()
        assert registry.get("dd_gc_runs_total").value >= 1
        assert registry.get("dd_table_bytes").value > 0


# ----------------------------------------------------------------------
# the paper's numbers under governance
# ----------------------------------------------------------------------
class TestPaperInvariantsUnderGovernance:
    def test_ex12_peak_is_9_with_governor_enabled(self):
        """Paper Ex. 12's peak of 9 nodes must hold under a tight budget."""
        package = DDPackage(budget=MemoryBudget(max_nodes=256, check_interval=4))
        result = check_equivalence_alternating(
            library.qft(3),
            library.qft_compiled(3),
            strategy=ApplicationStrategy.COMPILATION_FLOW,
            package=package,
        )
        assert result.equivalent
        assert result.max_nodes == 9

    def test_verification_session_peak_with_budget(self):
        package = DDPackage(budget=MemoryBudget(max_nodes=256))
        session = VerificationSession(
            library.qft(3), library.qft_compiled(3), package=package
        )
        session.run_compilation_flow()
        assert session.is_identity()
        assert session.peak_node_count == 9
        session.close()

    def test_clear_caches_composes_with_inflight_sessions(self):
        package = DDPackage()
        session = SimulationSession(library.ghz_state(3), package=package, seed=0)
        session.forward()
        package.clear_caches()
        package.gc(force=True)
        session.to_end(stop_at_breakpoints=False)
        amplitude = package.amplitude(session.state, "111")
        assert abs(amplitude - 1.0 / math.sqrt(2.0)) < 1e-12
        # Navigation backward across the cache clear also still works:
        # the incref'd history states survived the sweep.
        session.to_start()
        assert package.amplitude(session.state, "000") == 1.0


# ----------------------------------------------------------------------
# unique-table hygiene (satellite: no non-finite weights)
# ----------------------------------------------------------------------
class TestUniqueTableGuards:
    def test_non_finite_weight_cannot_enter_unique_table(self):
        package = DDPackage()
        bad = Edge(TERMINAL, complex(float("inf"), 0.0))
        good = Edge(TERMINAL, complex(1.0, 0.0))
        with pytest.raises(DDError):
            package._vector_unique.get_or_create(0, (bad, good))
        with pytest.raises(DDError):
            package._matrix_unique.get_or_create(
                0, (good, bad, bad, good)
            )

    def test_non_finite_rejected_before_normalization_too(self):
        package = DDPackage()
        bad = Edge(TERMINAL, complex(0.0, float("nan")))
        good = Edge(TERMINAL, complex(1.0, 0.0))
        with pytest.raises(DDError):
            package.make_vector_node(0, (bad, good))


# ----------------------------------------------------------------------
# governor internals
# ----------------------------------------------------------------------
class TestGovernorLifecycle:
    def test_governor_does_not_keep_package_alive(self):
        import weakref

        package = DDPackage()
        governor = package.governor
        ref = weakref.ref(package)
        del package
        assert ref() is None
        with pytest.raises(ReferenceError):
            governor.package

    def test_stats_shape(self):
        package = DDPackage(budget=MemoryBudget(max_nodes=1000))
        stats = package.stats()["governance"]
        for key in ("pressure", "nodes", "table_bytes", "gc_runs",
                    "gc_nodes_reclaimed", "utilization"):
            assert key in stats

    def test_soft_collection_shrinks_compute_tables(self):
        package = DDPackage()
        simulator = DDSimulator(library.qft(3), package=package)
        simulator.run_all()
        entries_before = package.governor.compute_entry_count()
        stats = package.governor.collect(level=PressureLevel.SOFT, force=True)
        assert stats.compute_entries_dropped >= 0
        assert package.governor.compute_entry_count() <= entries_before

    @pytest.mark.parametrize("storage", ["pooled", "object"])
    def test_hard_collection_resets_compute_table_hit_ratios(self, storage):
        """After a HARD collection empties the compute tables, their
        hit/miss counters must restart from zero — otherwise ``stats()``
        and ``/metrics`` report a stale pre-collection ratio against an
        empty table (ISSUE 7, satellite 4)."""
        package = DDPackage(storage=storage)
        simulator = DDSimulator(library.qft(4), package=package)
        simulator.run_all()
        tables = list(package._compute_tables())
        assert any(t.hits + t.misses > 0 for t in tables)
        package.governor.collect(level=PressureLevel.HARD, force=True)
        for table in tables:
            assert table.hits == 0, table.name
            assert table.misses == 0, table.name
        # ...and the table really is empty, so the zeroed ratio is honest.
        assert package.governor.compute_entry_count() == 0

    def test_shrink_that_drops_entries_resets_counters(self):
        from repro.dd.compute_table import ComputeTable

        table = ComputeTable("t", capacity=64)
        for index in range(10):
            table.insert(index, index)
            table.lookup(index)
        assert table.hits == 10
        dropped = table.shrink(0.5)
        assert dropped == 5
        assert table.hits == 0 and table.misses == 0
        # A shrink that drops nothing keeps the (fresh) counters intact.
        table.lookup(9)
        empty = ComputeTable("e", capacity=64)
        assert empty.shrink(0.5) == 0
        assert table.hits + table.misses == 1
