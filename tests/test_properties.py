"""Property-based tests (hypothesis) for the core invariants.

These exercise the DD package against dense linear algebra on randomized
inputs: canonicity, roundtrips, linearity, unitarity, probability laws.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dd import DDPackage, NormalizationScheme
from repro.dd import sampling
from repro.qc import QuantumCircuit, library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import DDSimulator, StatevectorSimulator, build_unitary
from repro.verification import check_equivalence_construct

# Bounded sizes keep dense references tractable.
_num_qubits = st.integers(min_value=1, max_value=4)


@st.composite
def state_vectors(draw, max_qubits: int = 4):
    n = draw(st.integers(min_value=1, max_value=max_qubits))
    size = 1 << n
    elements = st.tuples(
        st.floats(-1.0, 1.0, allow_nan=False), st.floats(-1.0, 1.0, allow_nan=False)
    )
    raw = draw(
        st.lists(elements, min_size=size, max_size=size).filter(
            lambda values: sum(re * re + im * im for re, im in values) > 1e-6
        )
    )
    vector = np.array([complex(re, im) for re, im in raw])
    return vector / np.linalg.norm(vector)


@st.composite
def unitaries(draw, max_qubits: int = 3):
    n = draw(st.integers(min_value=1, max_value=max_qubits))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    size = 1 << n
    matrix = rng.normal(size=(size, size)) + 1j * rng.normal(size=(size, size))
    q, r = np.linalg.qr(matrix)
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))


@st.composite
def random_circuits(draw, max_qubits: int = 4, max_depth: int = 25):
    n = draw(st.integers(min_value=1, max_value=max_qubits))
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return library.random_circuit(n, depth, seed=seed)


class TestVectorRoundtrips:
    @given(vector=state_vectors())
    @settings(max_examples=60, deadline=None)
    def test_from_to_vector_roundtrip(self, vector):
        package = DDPackage()
        state = package.from_state_vector(vector)
        assert np.allclose(package.to_vector(state, int(math.log2(len(vector)))),
                           vector, atol=1e-9)

    @given(vector=state_vectors())
    @settings(max_examples=60, deadline=None)
    def test_canonicity(self, vector):
        """Same vector built twice -> the very same root node."""
        package = DDPackage()
        a = package.from_state_vector(vector)
        b = package.from_state_vector(vector.copy())
        assert a.node is b.node
        assert a.weight == b.weight

    @given(vector=state_vectors())
    @settings(max_examples=40, deadline=None)
    def test_both_schemes_represent_the_same_vector(self, vector):
        n = int(math.log2(len(vector)))
        for scheme in NormalizationScheme:
            package = DDPackage(vector_scheme=scheme)
            state = package.from_state_vector(vector)
            assert np.allclose(package.to_vector(state, n), vector, atol=1e-9)

    @given(vector=state_vectors())
    @settings(max_examples=40, deadline=None)
    def test_amplitudes_match_paths(self, vector):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        state = package.from_state_vector(vector)
        for index in range(len(vector)):
            assert abs(package.amplitude(state, index, n) - vector[index]) < 1e-9


class TestLinearAlgebraLaws:
    @given(matrix=unitaries(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_multiply_matches_numpy(self, matrix, seed):
        package = DDPackage()
        n = int(math.log2(matrix.shape[0]))
        rng = np.random.default_rng(seed)
        vector = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        vector /= np.linalg.norm(vector)
        result = package.multiply(
            package.from_matrix(matrix), package.from_state_vector(vector)
        )
        assert np.allclose(package.to_vector(result, n), matrix @ vector, atol=1e-9)

    @given(matrix=unitaries())
    @settings(max_examples=40, deadline=None)
    def test_unitary_times_adjoint_is_identity(self, matrix):
        package = DDPackage()
        n = int(math.log2(matrix.shape[0]))
        operation = package.from_matrix(matrix)
        product = package.multiply(operation, package.adjoint(operation))
        identity = package.identity(n)
        assert product.node is identity.node

    @given(vector=state_vectors(max_qubits=3), scale_re=st.floats(-2, 2),
           scale_im=st.floats(-2, 2))
    @settings(max_examples=40, deadline=None)
    def test_add_scaled_self(self, vector, scale_re, scale_im):
        scale = complex(scale_re, scale_im)
        package = DDPackage()
        n = int(math.log2(len(vector)))
        state = package.from_state_vector(vector)
        scaled = state.scaled(package.complex_table.lookup(scale), package.complex_table)
        total = package.add(state, scaled)
        assert np.allclose(
            package.to_vector(total, n) if not total.is_zero else np.zeros(1 << n),
            vector * (1 + scale),
            atol=1e-8,
        )

    @given(a=unitaries(max_qubits=2), b=unitaries(max_qubits=2))
    @settings(max_examples=30, deadline=None)
    def test_kron_matches_numpy(self, a, b):
        package = DDPackage()
        na = int(math.log2(a.shape[0]))
        nb = int(math.log2(b.shape[0]))
        result = package.kron(package.from_matrix(a), package.from_matrix(b))
        assert np.allclose(
            package.to_matrix(result, na + nb), np.kron(a, b), atol=1e-9
        )


class TestProbabilityLaws:
    @given(vector=state_vectors())
    @settings(max_examples=40, deadline=None)
    def test_probabilities_sum_to_one(self, vector):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        state = package.from_state_vector(vector)
        for qubit in range(n):
            p0, p1 = sampling.qubit_probabilities(package, state, qubit)
            assert abs(p0 + p1 - 1.0) < 1e-9
            assert p0 >= 0.0 and p1 >= 0.0

    @given(vector=state_vectors(max_qubits=3), qubit_seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_collapse_preserves_conditional_distribution(self, vector, qubit_seed):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        qubit = qubit_seed % n
        state = package.from_state_vector(vector)
        p0, p1 = sampling.qubit_probabilities(package, state, qubit)
        outcome = 0 if p0 >= p1 else 1
        __, probability, collapsed = sampling.measure_qubit(
            package, state, qubit, outcome=outcome
        )
        dense = package.to_vector(collapsed, n)
        mask = 1 << qubit
        expected = np.array([
            vector[i] if bool(i & mask) == bool(outcome) else 0.0
            for i in range(len(vector))
        ]) / math.sqrt(probability)
        # Equality up to nothing - the projector approach is exact.
        assert np.allclose(dense, expected, atol=1e-8)


class TestCircuitLevelProperties:
    @given(circuit=random_circuits())
    @settings(max_examples=25, deadline=None)
    def test_dd_simulation_matches_dense(self, circuit):
        dd = DDSimulator(circuit)
        dd.run_all()
        dense = StatevectorSimulator(circuit)
        dense.run()
        assert np.allclose(dd.statevector(), dense.state, atol=1e-8)

    @given(circuit=random_circuits(max_qubits=3, max_depth=15))
    @settings(max_examples=20, deadline=None)
    def test_circuit_functionality_matches_dense(self, circuit):
        package = DDPackage()
        functionality = circuit_to_dd(package, circuit)
        assert np.allclose(
            package.to_matrix(functionality, circuit.num_qubits),
            build_unitary(circuit),
            atol=1e-8,
        )

    @given(circuit=random_circuits(max_qubits=3, max_depth=12))
    @settings(max_examples=20, deadline=None)
    def test_circuit_equivalent_to_itself_and_double_inverse(self, circuit):
        result = check_equivalence_construct(circuit, circuit.inverse().inverse())
        assert result.equivalent

    @given(circuit=random_circuits(max_qubits=3, max_depth=12))
    @settings(max_examples=20, deadline=None)
    def test_inverse_concatenation_is_identity(self, circuit):
        package = DDPackage()
        combined = circuit.compose(circuit.inverse())
        functionality = circuit_to_dd(package, combined)
        identity = package.identity(circuit.num_qubits)
        assert functionality.node is identity.node

    @given(circuit=random_circuits(max_qubits=4, max_depth=20))
    @settings(max_examples=20, deadline=None)
    def test_qasm_roundtrip_preserves_functionality(self, circuit):
        from repro.qc.qasm import parse_qasm

        reparsed = parse_qasm(circuit.to_qasm())
        assert np.allclose(
            build_unitary(reparsed), build_unitary(circuit), atol=1e-9
        )
