"""Tests for the in-process event bus behind the SSE streams.

Covers monotonic ids, bounded per-subscriber queues with drop-oldest
semantics (and the ``dd_stream_dropped_total`` counter), Last-Event-ID
replay, blocking get with timeout, and close-wakes-everyone shutdown.
"""

import threading
import time

import pytest

from repro.obs import EventBus, MetricsRegistry


class TestPublishSubscribe:
    def test_events_carry_monotonic_ids(self):
        bus = EventBus()
        sub = bus.subscribe()
        ids = [bus.publish("tick", {"n": n}).id for n in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        received = [sub.get(timeout=1) for _ in range(5)]
        assert [event.id for event in received] == ids
        assert [event.data["n"] for event in received] == list(range(5))

    def test_every_subscriber_sees_every_event(self):
        bus = EventBus()
        subs = [bus.subscribe() for _ in range(3)]
        bus.publish("a")
        bus.publish("b")
        for sub in subs:
            assert [sub.get(timeout=1).kind for _ in range(2)] == ["a", "b"]

    def test_publish_copies_data(self):
        bus = EventBus()
        sub = bus.subscribe()
        payload = {"x": 1}
        bus.publish("k", payload)
        payload["x"] = 99
        assert sub.get(timeout=1).data == {"x": 1}

    def test_get_timeout_returns_none_but_not_closed(self):
        bus = EventBus()
        sub = bus.subscribe()
        start = time.monotonic()
        assert sub.get(timeout=0.05) is None
        assert time.monotonic() - start >= 0.04
        assert not sub.closed

    def test_blocked_get_wakes_on_publish(self):
        bus = EventBus()
        sub = bus.subscribe()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(sub.get(timeout=5))
        )
        thread.start()
        time.sleep(0.05)
        bus.publish("wake")
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert results[0].kind == "wake"


class TestBackpressure:
    def test_slow_subscriber_drops_oldest(self):
        registry = MetricsRegistry(enabled=True)
        bus = EventBus(registry=registry, max_queue=3)
        sub = bus.subscribe()
        for n in range(10):
            bus.publish("tick", {"n": n})
        # Only the 3 newest remain; the 7 oldest were dropped.
        kept = [sub.get(timeout=0.1).data["n"] for _ in range(3)]
        assert kept == [7, 8, 9]
        assert sub.get(timeout=0.01) is None
        assert sub.dropped == 7
        assert registry.counter("dd_stream_dropped_total").value == 7

    def test_drops_are_per_subscriber(self):
        bus = EventBus(max_queue=2)
        slow = bus.subscribe()
        fast = bus.subscribe(max_queue=100)
        for n in range(5):
            bus.publish("tick", {"n": n})
        assert slow.dropped == 3
        assert fast.dropped == 0
        assert fast.pending == 5


class TestReplay:
    def test_zero_replays_full_history(self):
        bus = EventBus(history=16)
        bus.publish("a")
        bus.publish("b")
        sub = bus.subscribe(last_event_id=0)
        assert [sub.get(timeout=1).kind for _ in range(2)] == ["a", "b"]

    def test_resume_after_cursor_without_duplicates(self):
        bus = EventBus()
        for n in range(6):
            bus.publish("tick", {"n": n})
        sub = bus.subscribe(last_event_id=4)
        replayed = [sub.get(timeout=1).id for _ in range(2)]
        assert replayed == [5, 6]
        assert sub.get(timeout=0.01) is None

    def test_none_starts_from_now(self):
        bus = EventBus()
        bus.publish("old")
        sub = bus.subscribe()
        bus.publish("new")
        assert sub.get(timeout=1).kind == "new"
        assert sub.get(timeout=0.01) is None

    def test_history_is_bounded(self):
        bus = EventBus(history=3)
        for n in range(10):
            bus.publish("tick", {"n": n})
        sub = bus.subscribe(last_event_id=0)
        assert [sub.get(timeout=1).data["n"] for _ in range(3)] == [7, 8, 9]


class TestShutdown:
    def test_close_wakes_blocked_subscribers(self):
        bus = EventBus()
        sub = bus.subscribe()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(sub.get(timeout=5))
        )
        thread.start()
        time.sleep(0.05)
        bus.close()
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert results == [None]
        assert sub.closed

    def test_queued_events_drain_after_close(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.publish("pending")
        bus.close()
        event = sub.get(timeout=1)
        assert event is not None and event.kind == "pending"
        assert sub.get(timeout=0.01) is None

    def test_publish_after_close_is_noop(self):
        bus = EventBus()
        bus.close()
        assert bus.publish("late") is None
        assert bus.last_id == 0

    def test_subscribe_after_close_returns_closed_subscription(self):
        bus = EventBus()
        bus.publish("before")
        bus.close()
        sub = bus.subscribe(last_event_id=0)
        assert sub.closed
        assert sub.get(timeout=0.1).kind == "before"  # replay still works
        assert sub.get(timeout=0.01) is None

    def test_close_is_idempotent(self):
        bus = EventBus()
        bus.close()
        bus.close()
        assert bus.closed

    def test_detached_subscription_stops_receiving(self):
        bus = EventBus()
        sub = bus.subscribe()
        sub.close()
        bus.publish("after")
        assert sub.get(timeout=0.01) is None
        assert bus.subscriber_count == 0


class TestSseFraming:
    def test_to_sse_has_id_event_and_single_data_line(self):
        bus = EventBus()
        event = bus.publish("frame", {"svg": "<svg/>", "n": 1})
        text = event.to_sse()
        lines = text.split("\n")
        assert lines[0] == f"id: {event.id}"
        assert lines[1] == "event: frame"
        assert lines[2].startswith("data: {")
        assert text.endswith("\n\n")
        assert sum(1 for line in lines if line.startswith("data:")) == 1

    def test_subscriber_gauge_tracks_attach_detach(self):
        registry = MetricsRegistry(enabled=True)
        bus = EventBus(registry=registry)
        gauge = registry.gauge("dd_stream_subscribers")
        sub = bus.subscribe()
        assert gauge.value == 1
        sub.close()
        assert gauge.value == 0
