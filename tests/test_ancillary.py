"""Unit tests for ancillary/garbage-aware equivalence checking."""

import pytest

from repro.errors import VerificationError
from repro.qc import QuantumCircuit, library
from repro.verification import check_equivalence_ancillary


def _toffoli_direct():
    circuit = QuantumCircuit(3)
    circuit.ccx(0, 1, 2)
    return circuit


def _toffoli_with_clean_ancilla():
    circuit = QuantumCircuit(4)
    circuit.ccx(0, 1, 3)  # compute AND on the ancilla
    circuit.cx(3, 2)      # copy to the target
    circuit.ccx(0, 1, 3)  # uncompute
    return circuit


def _toffoli_with_dirty_ancilla():
    circuit = QuantumCircuit(4)
    circuit.ccx(0, 1, 3)
    circuit.cx(3, 2)
    return circuit  # ancilla left holding AND(q0, q1)


class TestAncillaries:
    def test_same_size_circuits(self):
        result = check_equivalence_ancillary(
            library.qft(2), library.qft(2), seed=0
        )
        assert result.equivalent

    def test_extra_untouched_line(self):
        small = library.qft(2)
        big = QuantumCircuit(3)
        for operation in small:
            big.append(operation)
        assert check_equivalence_ancillary(small, big, seed=0)

    def test_uncomputed_ancilla_is_equivalent(self):
        result = check_equivalence_ancillary(
            _toffoli_direct(), _toffoli_with_clean_ancilla(), seed=0
        )
        assert result.equivalent
        assert result.max_deviation < 1e-9

    def test_dirty_ancilla_is_caught(self):
        result = check_equivalence_ancillary(
            _toffoli_direct(), _toffoli_with_dirty_ancilla(), seed=0
        )
        assert not result.equivalent
        assert result.first_failure is not None

    def test_order_of_arguments_irrelevant(self):
        assert check_equivalence_ancillary(
            _toffoli_with_clean_ancilla(), _toffoli_direct(), seed=0
        )


class TestGarbage:
    def test_dirty_ancilla_as_classical_garbage(self):
        """On basis stimuli only, a garbage-marked dirty ancilla is fine
        (the reversible-logic garbage convention)."""
        result = check_equivalence_ancillary(
            _toffoli_direct(),
            _toffoli_with_dirty_ancilla(),
            garbage_qubits=[3],
            num_random_stimuli=0,
            seed=0,
        )
        assert result.equivalent

    def test_entangled_garbage_differs_on_superpositions(self):
        """With superposition stimuli the entangled garbage line makes the
        reduced outputs differ (mixed vs pure) — reported honestly."""
        result = check_equivalence_ancillary(
            _toffoli_direct(),
            _toffoli_with_dirty_ancilla(),
            garbage_qubits=[3],
            num_random_stimuli=8,
            seed=0,
        )
        assert not result.equivalent

    def test_garbage_on_data_line(self):
        """Garbage can also mask a data qubit difference."""
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.h(0).x(1)
        assert not check_equivalence_ancillary(a, b, seed=0)
        assert check_equivalence_ancillary(
            a, b, garbage_qubits=[1], num_random_stimuli=0, seed=0
        )

    def test_garbage_out_of_range(self):
        with pytest.raises(VerificationError):
            check_equivalence_ancillary(
                _toffoli_direct(), _toffoli_direct(), garbage_qubits=[5]
            )


class TestStimuli:
    def test_basis_cap_subsamples(self):
        result = check_equivalence_ancillary(
            library.qft(3), library.qft(3),
            max_basis_stimuli=4, num_random_stimuli=2, seed=1,
        )
        assert result.equivalent
        assert result.stimuli_run == 6

    def test_random_stimuli_catch_phase_differences(self):
        """A CZ difference is invisible on basis states but caught by
        superposition stimuli."""
        a = QuantumCircuit(2)
        a.i(0)
        b = QuantumCircuit(2)
        b.cz(0, 1)
        basis_only = check_equivalence_ancillary(
            a, b, num_random_stimuli=0, seed=0
        )
        assert basis_only.equivalent  # basis states cannot see CZ
        with_random = check_equivalence_ancillary(
            a, b, num_random_stimuli=8, seed=0
        )
        assert not with_random.equivalent

    def test_nonunitary_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(VerificationError):
            check_equivalence_ancillary(circuit, QuantumCircuit(1))
