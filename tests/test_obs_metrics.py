"""Tests for the metrics layer: instruments, registry, exporters.

Covers counter/gauge/histogram semantics, the get-or-create registry with
label keying, the global and per-registry no-op modes, collectors, and the
JSON / Prometheus / run-report exporters — plus the integration points that
the rest of the package relies on (table counters as thin views, package op
metrics, the CLI's ``--json`` / ``--prom`` output).
"""

import json
import math

import pytest

from repro import obs
from repro.dd import DDPackage
from repro.dd.compute_table import ComputeTable
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_snapshot,
    run_report,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    DEFAULT_COUNT_BUCKETS,
)
from repro.qc import library
from repro.tool.cli import main


@pytest.fixture
def restore_global_switch():
    """Any test toggling the global switch must leave it on for the rest."""
    yield
    obs.set_enabled(True)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("requests_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_set_value_and_reset(self):
        counter = Counter("hits")
        counter.inc(7)
        counter.set_value(2)
        assert counter.value == 2
        counter.reset()
        assert counter.value == 0

    def test_labels_are_copied(self):
        labels = {"table": "add"}
        counter = Counter("x", labels=labels)
        labels["table"] = "mutated"
        assert counter.labels == {"table": "add"}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("occupancy")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_set_max_only_raises(self):
        gauge = Gauge("peak")
        gauge.set_max(9)
        assert gauge.value == 9
        gauge.set_max(4)
        assert gauge.value == 9
        gauge.set_max(21)
        assert gauge.value == 21


class TestHistogram:
    def test_bucket_bounds_are_inclusive(self):
        hist = Histogram("n", buckets=(1, 2, 4))
        for value in (0.5, 1, 2, 3, 4, 100):
            hist.observe(value)
        cumulative = dict(hist.cumulative_buckets())
        assert cumulative[1.0] == 2  # 0.5 and 1 (bound inclusive)
        assert cumulative[2.0] == 3
        assert cumulative[4.0] == 5
        assert cumulative[float("inf")] == 6

    def test_count_sum_mean(self):
        hist = Histogram("d", buckets=(10,))
        assert hist.mean == 0.0
        hist.observe(2)
        hist.observe(4)
        assert hist.count == 2
        assert hist.sum == 6
        assert hist.mean == 3

    def test_bounds_sorted_and_nonempty(self):
        hist = Histogram("h", buckets=(4, 1, 2))
        assert hist.bounds == (1.0, 2.0, 4.0)
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_reset(self):
        hist = Histogram("h", buckets=(1,))
        hist.observe(0.5)
        hist.reset()
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.cumulative_buckets()[-1][1] == 0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry(enabled=True)
        a = registry.counter("ops_total", {"op": "add"})
        b = registry.counter("ops_total", {"op": "add"})
        c = registry.counter("ops_total", {"op": "multiply"})
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_get_and_reset(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("a")
        assert registry.get("a") is counter
        assert registry.get("missing") is None
        registry.reset()
        assert len(registry) == 0

    def test_collectors_run_on_collect(self):
        registry = MetricsRegistry(enabled=True)
        gauge = registry.gauge("sampled")
        registry.add_collector(lambda: gauge.set(42))
        [collected] = registry.collect()
        assert collected.value == 42

    def test_collector_exceptions_swallowed(self):
        registry = MetricsRegistry(enabled=True)

        def broken():
            raise RuntimeError("dead weakref")

        registry.add_collector(broken)
        registry.counter("ok")
        assert [m.name for m in registry.collect()] == ["ok"]


class TestNoOpMode:
    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c") is NULL_HISTOGRAM
        assert len(registry) == 0
        assert registry.collect() == []

    def test_null_instruments_ignore_everything(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(3)
        NULL_GAUGE.set_max(9)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_HISTOGRAM.cumulative_buckets() == []

    def test_global_switch_governs_default_registries(self, restore_global_switch):
        obs.set_enabled(False)
        assert not obs.is_enabled()
        registry = MetricsRegistry()  # enabled=None defers to the switch
        assert registry.counter("x") is NULL_COUNTER
        obs.set_enabled(True)
        assert isinstance(registry.counter("x"), Counter)

    def test_explicit_enabled_overrides_global(self, restore_global_switch):
        obs.set_enabled(False)
        registry = MetricsRegistry(enabled=True)
        assert isinstance(registry.counter("x"), Counter)

    def test_disabled_package_runs_dark(self, restore_global_switch):
        obs.set_enabled(False)
        package = DDPackage()
        edge = package.zero_state(2)
        package.add(edge, edge)
        assert len(package.registry) == 0
        obs.set_enabled(True)


class TestExporters:
    @staticmethod
    def _sample_registry() -> MetricsRegistry:
        registry = MetricsRegistry(enabled=True)
        registry.counter("dd_ops_total", {"op": "add"}).inc(3)
        registry.gauge("sim_nodes").set(7)
        hist = registry.histogram("sim_step_seconds", buckets=(0.001, 0.01))
        hist.observe(0.0005)
        hist.observe(0.5)
        return registry

    def test_json_snapshot_round_trips(self):
        registry = self._sample_registry()
        payload = json.loads(to_json(registry))
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["dd_ops_total"]["value"] == 3
        assert by_name["dd_ops_total"]["labels"] == {"op": "add"}
        assert by_name["sim_nodes"]["type"] == "gauge"
        hist = by_name["sim_step_seconds"]
        assert hist["count"] == 2
        assert hist["buckets"][-1] == {"le": "+Inf", "count": 2}

    def test_snapshot_matches_collect(self):
        registry = self._sample_registry()
        snapshot = registry_snapshot(registry)
        assert len(snapshot["metrics"]) == len(registry.collect())

    def test_prometheus_golden_output(self):
        registry = self._sample_registry()
        text = to_prometheus(registry)
        assert "# TYPE dd_ops_total counter" in text
        assert 'dd_ops_total{op="add"} 3' in text
        assert "# TYPE sim_nodes gauge" in text
        assert "sim_nodes 7" in text
        assert "# TYPE sim_step_seconds histogram" in text
        assert 'sim_step_seconds_bucket{le="0.001"} 1' in text
        assert 'sim_step_seconds_bucket{le="+Inf"} 2' in text
        assert "sim_step_seconds_count 2" in text
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c", {"path": 'a"b\\c\nd'}).inc()
        text = to_prometheus(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_run_report_derives_hit_ratios(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("dd_compute_table_hits_total", {"table": "add"}).inc(3)
        registry.counter("dd_compute_table_misses_total", {"table": "add"}).inc(1)
        report = run_report(registry, title="demo")
        assert "==== run report: demo ====" in report
        assert "[dd]" in report
        assert "[hit ratios]" in report
        assert 'dd_compute_table{table="add"}: 0.750 (3/4)' in report

    def test_run_report_empty_registry(self):
        report = run_report(MetricsRegistry(enabled=True))
        assert "no metrics recorded" in report


class TestTableIntegration:
    def test_compute_table_stats_sync_into_registry(self):
        registry = MetricsRegistry(enabled=True)
        table = ComputeTable("add", registry=registry)
        key = ("k",)
        assert table.lookup(key) is None
        table.insert(key, "value")
        assert table.lookup(key) == "value"
        assert table.hits == 1
        assert table.misses == 1
        registry.collect()  # the sync collector copies the plain ints over
        hits = registry.get("dd_compute_table_hits_total", {"table": "add"})
        assert hits.value == 1
        table.hits = 0  # legacy reset is visible after the next collect
        registry.collect()
        assert hits.value == 0

    def test_dead_table_does_not_break_collect(self):
        registry = MetricsRegistry(enabled=True)
        table = ComputeTable("add", registry=registry)
        table.lookup(("k",))
        registry.collect()
        del table
        registry.collect()  # weakref-bound collector must cope
        misses = registry.get("dd_compute_table_misses_total", {"table": "add"})
        assert misses.value == 1  # last synced value survives

    def test_package_op_metrics(self):
        registry = MetricsRegistry(enabled=True)
        package = DDPackage(registry=registry)
        zero = package.zero_state(2)
        package.add(zero, zero)
        package.add(zero, zero)
        ops = registry.get("dd_ops_total", {"op": "add"})
        assert ops.value == 2
        timer = registry.get("dd_op_seconds", {"op": "add"})
        assert timer.count == 2
        assert timer.sum >= 0

    def test_package_occupancy_collected_at_export(self):
        registry = MetricsRegistry(enabled=True)
        package = DDPackage(registry=registry)
        state = package.zero_state(2)  # keep the DD alive (weak unique table)
        assert state is not None
        registry.collect()
        occupancy = registry.get("dd_unique_table_entries", {"kind": "vector"})
        assert occupancy is not None
        assert occupancy.value >= 1

    def test_simulation_feeds_registry(self):
        registry = MetricsRegistry(enabled=True)
        from repro.simulation import DDSimulator
        from repro.obs import Tracer

        simulator = DDSimulator(
            library.ghz_state(3), seed=0, registry=registry,
            tracer=Tracer(enabled=False),
        )
        simulator.run(stop_at_breakpoints=False)
        assert registry.get("sim_steps_total").value == 3
        assert registry.get("sim_peak_nodes").value >= 3
        assert registry.get("sim_step_seconds").count == 3


class TestCliExports:
    def test_stats_json_is_valid(self, tmp_path, capsys):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(library.ghz_state(3).to_qasm())
        assert main(["stats", str(qasm), "--seed", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {m["name"] for m in payload["metrics"]}
        assert "dd_compute_table_hits_total" in names
        assert "dd_unique_table_entries" in names
        assert "sim_peak_nodes" in names

    def test_stats_prom_is_valid_exposition(self, tmp_path, capsys):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(library.ghz_state(3).to_qasm())
        assert main(["stats", str(qasm), "--seed", "0", "--prom"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE dd_compute_table_hits_total counter" in text
        assert "# TYPE sim_peak_nodes gauge" in text
        # Every non-comment line is "name{labels} value".
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value.replace("+Inf", "inf"))

    def test_stats_default_report_has_ratios_and_peak(self, tmp_path, capsys):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(library.ghz_state(3).to_qasm())
        assert main(["stats", str(qasm), "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "[hit ratios]" in out
        assert "sim_peak_nodes" in out
        assert "dd_unique_table_entries" in out


def test_default_registry_is_process_wide():
    assert obs.default_registry() is obs.default_registry()


def test_default_count_buckets_cover_paper_scale():
    # Ex. 12's 9- and 21-node peaks must land in distinct finite buckets.
    assert any(b >= 9 for b in DEFAULT_COUNT_BUCKETS)
    assert not math.isinf(DEFAULT_COUNT_BUCKETS[-1])


class TestHistogramQuantiles:
    """Interpolated p50/p95/p99 estimates from fixed buckets."""

    def test_empty_histogram_is_zero(self):
        hist = Histogram("h", buckets=(1, 2, 4))
        assert hist.quantile(0.5) == 0.0
        assert hist.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_quantile_range_is_validated(self):
        hist = Histogram("h", buckets=(1,))
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_uniform_fill_interpolates_linearly(self):
        hist = Histogram("h", buckets=(10, 20, 30, 40))
        for value in range(40):  # 10 observations per bucket
            hist.observe(value + 0.5)
        # The median rank (20 of 40) falls exactly at the end of the
        # second bucket under linear interpolation.
        assert hist.quantile(0.5) == pytest.approx(20.0)
        assert hist.quantile(0.25) == pytest.approx(10.0)
        # p99: rank 39.6 of 40 -> 9.6/10 through the (30, 40] bucket.
        assert hist.quantile(0.99) == pytest.approx(39.6)

    def test_overflow_ranks_clamp_to_last_finite_bound(self):
        hist = Histogram("h", buckets=(1, 2))
        for _ in range(10):
            hist.observe(100.0)  # everything in the +Inf bucket
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(0.99) == 2.0

    def test_percentiles_are_monotonic(self):
        hist = Histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.002, 0.003, 0.05, 0.02, 0.5, 2.0):
            hist.observe(value)
        p = hist.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_run_report_includes_percentiles(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("svc_seconds", (0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        report = run_report(registry)
        assert "p50=" in report and "p95=" in report and "p99=" in report

    def test_null_histogram_has_percentiles(self):
        registry = MetricsRegistry(enabled=False)
        hist = registry.histogram("off_seconds", (1.0,))
        assert hist.quantile(0.5) == 0.0
        assert hist.percentiles()["p99"] == 0.0


class TestPrometheusExpositionRules:
    """promtool-style checks of the text exposition format.

    These encode the rules `promtool check metrics` enforces for
    histograms: an explicit `+Inf` bucket, cumulative bucket counts, the
    `+Inf` bucket equal to `_count`, and exactly one TYPE line per metric
    name.
    """

    @staticmethod
    def _histogram_lines(text, name):
        buckets, total, summed = [], None, None
        for line in text.splitlines():
            if line.startswith(f"{name}_bucket"):
                le = line.split('le="', 1)[1].split('"', 1)[0]
                buckets.append((le, float(line.rsplit(" ", 1)[1])))
            elif line.startswith(f"{name}_count"):
                total = float(line.rsplit(" ", 1)[1])
            elif line.startswith(f"{name}_sum"):
                summed = float(line.rsplit(" ", 1)[1])
        return buckets, total, summed

    def test_histogram_has_explicit_inf_bucket_equal_to_count(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("rule_seconds", (0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        buckets, total, summed = self._histogram_lines(
            to_prometheus(registry), "rule_seconds"
        )
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == total == 3
        assert summed == pytest.approx(5.55)

    def test_histogram_buckets_are_cumulative_and_sorted(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("cumu_seconds", (0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        buckets, _, _ = self._histogram_lines(
            to_prometheus(registry), "cumu_seconds"
        )
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)  # cumulative => non-decreasing
        assert counts == [2, 3, 4, 4]
        bounds = [float(le.replace("+Inf", "inf")) for le, _ in buckets]
        assert bounds == sorted(bounds)

    def test_le_boundary_is_inclusive(self):
        # Prometheus `le` is <=: an observation exactly on a bound counts
        # into that bound's bucket.
        registry = MetricsRegistry(enabled=True)
        registry.histogram("edge_seconds", (1.0, 2.0)).observe(1.0)
        buckets, _, _ = self._histogram_lines(
            to_prometheus(registry), "edge_seconds"
        )
        assert buckets[0] == ("1", 1.0)

    def test_exactly_one_type_line_per_metric_name(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("multi_total", {"kind": "a"}).inc()
        registry.counter("multi_total", {"kind": "b"}).inc()
        text = to_prometheus(registry)
        assert text.count("# TYPE multi_total counter") == 1


class TestSnapshotDelta:
    def test_unchanged_registry_yields_empty_delta(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c_total").inc()
        before = registry_snapshot(registry)
        after = registry_snapshot(registry)
        assert obs.snapshot_delta(before, after) == {"metrics": []}

    def test_only_changed_scalars_appear(self):
        registry = MetricsRegistry(enabled=True)
        changed = registry.counter("changed_total")
        registry.counter("steady_total").inc()
        before = registry_snapshot(registry)
        changed.inc()
        delta = obs.snapshot_delta(before, registry_snapshot(registry))
        assert [m["name"] for m in delta["metrics"]] == ["changed_total"]

    def test_histogram_delta_carries_only_changed_buckets(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("d_seconds", (0.1, 1.0, 10.0))
        hist.observe(0.05)
        before = registry_snapshot(registry)
        hist.observe(5.0)  # lands in the (1.0, 10.0] bucket
        delta = obs.snapshot_delta(before, registry_snapshot(registry))
        [entry] = delta["metrics"]
        assert entry["count"] == 2
        changed_les = {bucket["le"] for bucket in entry["buckets"]}
        # Cumulative counts: only the 10.0 and +Inf buckets moved.
        assert changed_les == {10.0, "+Inf"}

    def test_new_instruments_appear_whole(self):
        registry = MetricsRegistry(enabled=True)
        before = registry_snapshot(registry)
        registry.counter("late_total").inc()
        delta = obs.snapshot_delta(before, registry_snapshot(registry))
        assert [m["name"] for m in delta["metrics"]] == ["late_total"]

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry(enabled=True)
        a = registry.counter("lbl_total", {"kind": "a"})
        registry.counter("lbl_total", {"kind": "b"}).inc()
        before = registry_snapshot(registry)
        a.inc()
        delta = obs.snapshot_delta(before, registry_snapshot(registry))
        assert [m["labels"] for m in delta["metrics"]] == [{"kind": "a"}]
