"""Unit tests for DD arithmetic: add, multiply, kron, adjoint, inner product."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.dd.edge import ZERO_EDGE
from repro.errors import DDError, DimensionMismatchError
from tests.conftest import random_state, random_unitary

H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)
CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)


class TestAdd:
    def test_vector_addition(self, package, rng):
        a = random_state(3, rng)
        b = random_state(3, rng)
        result = package.add(
            package.from_state_vector(a), package.from_state_vector(b)
        )
        assert np.allclose(package.to_vector(result, 3), a + b)

    def test_add_zero_identity(self, package):
        state = package.zero_state(2)
        assert package.add(state, ZERO_EDGE) == state
        assert package.add(ZERO_EDGE, state) == state

    def test_add_cancellation(self, package):
        state = package.from_state_vector([0.6, 0.0, 0.0, 0.8])
        negated = state.with_weight(package.complex_table.lookup(-state.weight))
        result = package.add(state, negated)
        assert result.is_zero

    def test_add_is_commutative(self, package, rng):
        a = package.from_state_vector(random_state(2, rng))
        b = package.from_state_vector(random_state(2, rng))
        left = package.add(a, b)
        right = package.add(b, a)
        assert left.node is right.node
        assert package.complex_table.approx_equal(left.weight, right.weight)

    def test_matrix_addition(self, package, rng):
        a = random_unitary(2, rng)
        b = random_unitary(2, rng)
        result = package.add(package.from_matrix(a), package.from_matrix(b))
        assert np.allclose(package.to_matrix(result, 2), a + b)

    def test_level_mismatch_rejected(self, package):
        with pytest.raises(DimensionMismatchError):
            package.add(package.zero_state(2), package.zero_state(3))


class TestMultiply:
    def test_matrix_vector(self, package, rng):
        matrix = random_unitary(3, rng)
        vector = random_state(3, rng)
        result = package.multiply(
            package.from_matrix(matrix), package.from_state_vector(vector)
        )
        assert np.allclose(package.to_vector(result, 3), matrix @ vector)

    def test_matrix_matrix(self, package, rng):
        a = random_unitary(2, rng)
        b = random_unitary(2, rng)
        result = package.multiply(package.from_matrix(a), package.from_matrix(b))
        assert np.allclose(package.to_matrix(result, 2), a @ b)

    def test_hadamard_on_zero(self, package):
        """Paper Ex. 3: (H (x) I)|00> = 1/sqrt(2)(|00> + |10>)."""
        gate = package.single_qubit_gate(2, H, 1)
        result = package.multiply(gate, package.zero_state(2))
        inv = 1.0 / math.sqrt(2.0)
        assert np.allclose(package.to_vector(result, 2), [inv, 0.0, inv, 0.0])

    def test_bell_circuit_evolution(self, package):
        """Paper Ex. 5: CNOT (H (x) I) |00> = Bell state."""
        state = package.zero_state(2)
        state = package.multiply(package.single_qubit_gate(2, H, 1), state)
        state = package.multiply(
            package.controlled_gate(2, X, 0, controls=[1]), state
        )
        inv = 1.0 / math.sqrt(2.0)
        assert np.allclose(package.to_vector(state, 2), [inv, 0.0, 0.0, inv])

    def test_multiply_by_zero(self, package):
        gate = package.single_qubit_gate(2, H, 0)
        assert package.multiply(gate, ZERO_EDGE).is_zero
        assert package.multiply(ZERO_EDGE, package.zero_state(2)).is_zero

    def test_first_operand_must_be_matrix(self, package):
        state = package.zero_state(2)
        with pytest.raises(DDError):
            package.multiply(state, state)

    def test_unitarity_preserved(self, package, rng):
        """U^t U = I on diagrams, exactly (canonical identity node)."""
        matrix = random_unitary(2, rng)
        operation = package.from_matrix(matrix)
        product = package.multiply(package.adjoint(operation), operation)
        identity = package.identity(2)
        assert product.node is identity.node
        assert package.complex_table.approx_equal(product.weight, 1.0 + 0j)

    def test_multiply_preserves_norm(self, package, rng):
        matrix = random_unitary(3, rng)
        vector = random_state(3, rng)
        result = package.multiply(
            package.from_matrix(matrix), package.from_state_vector(vector)
        )
        assert abs(package.norm_squared(result) - 1.0) < 1e-9


class TestKron:
    def test_kron_matches_numpy(self, package, rng):
        a = random_unitary(1, rng)
        b = random_unitary(2, rng)
        result = package.kron(package.from_matrix(a), package.from_matrix(b))
        assert np.allclose(package.to_matrix(result, 3), np.kron(a, b))

    def test_kron_vectors(self, package, rng):
        a = random_state(1, rng)
        b = random_state(2, rng)
        result = package.kron(
            package.from_state_vector(a), package.from_state_vector(b)
        )
        assert np.allclose(package.to_vector(result, 3), np.kron(a, b))

    def test_h_kron_identity(self, package):
        """Paper Ex. 8 / Fig. 3: H (x) I2 by terminal replacement."""
        h_dd = package.from_matrix(H)
        id_dd = package.identity(1)
        result = package.kron(h_dd, id_dd)
        assert np.allclose(package.to_matrix(result, 2), np.kron(H, np.eye(2)))
        # Terminal replacement: just one extra node on top of the identity.
        assert package.node_count(result) == 2

    def test_kron_with_zero(self, package):
        assert package.kron(ZERO_EDGE, package.identity(1)).is_zero
        assert package.kron(package.identity(1), ZERO_EDGE).is_zero

    def test_kron_associative(self, package, rng):
        a = package.from_matrix(random_unitary(1, rng))
        b = package.from_matrix(random_unitary(1, rng))
        c = package.from_matrix(random_unitary(1, rng))
        left = package.kron(package.kron(a, b), c)
        right = package.kron(a, package.kron(b, c))
        assert left.node is right.node
        assert package.complex_table.approx_equal(left.weight, right.weight)


class TestAdjoint:
    def test_adjoint_matches_numpy(self, package, rng):
        matrix = random_unitary(3, rng)
        operation = package.from_matrix(matrix)
        assert np.allclose(
            package.to_matrix(package.adjoint(operation), 3), matrix.conj().T
        )

    def test_adjoint_involution(self, package, rng):
        matrix = random_unitary(2, rng)
        operation = package.from_matrix(matrix)
        twice = package.adjoint(package.adjoint(operation))
        assert twice.node is operation.node
        assert package.complex_table.approx_equal(twice.weight, operation.weight)

    def test_adjoint_of_zero(self, package):
        assert package.adjoint(ZERO_EDGE).is_zero


class TestInnerProduct:
    def test_matches_numpy(self, package, rng):
        a = random_state(3, rng)
        b = random_state(3, rng)
        result = package.inner_product(
            package.from_state_vector(a), package.from_state_vector(b)
        )
        assert abs(result - np.vdot(a, b)) < 1e-9

    def test_conjugate_symmetry(self, package, rng):
        a = package.from_state_vector(random_state(2, rng))
        b = package.from_state_vector(random_state(2, rng))
        forward = package.inner_product(a, b)
        backward = package.inner_product(b, a)
        assert abs(forward - backward.conjugate()) < 1e-9

    def test_with_zero(self, package):
        state = package.zero_state(2)
        assert package.inner_product(state, ZERO_EDGE) == 0.0
