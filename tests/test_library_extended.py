"""Unit tests for the extended circuit library: inverse QFT, QPE, DJ."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.qc import library
from repro.simulation import DensityMatrixSimulator, build_unitary


class TestQftInverse:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_is_the_inverse(self, n):
        forward = build_unitary(library.qft(n))
        backward = build_unitary(library.qft_inverse(n))
        assert np.allclose(backward @ forward, np.eye(1 << n))

    def test_matches_conjugate_transpose_of_formula(self):
        assert np.allclose(
            build_unitary(library.qft_inverse(3)),
            library.qft_matrix(3).conj().T,
        )


class TestPhaseEstimation:
    @pytest.mark.parametrize("m,j", [(3, 1), (3, 5), (4, 11), (2, 3)])
    def test_exact_phase_is_deterministic(self, m, j):
        phase = j / (1 << m)
        simulator = DensityMatrixSimulator(library.phase_estimation(m, phase))
        simulator.run()
        distribution = simulator.classical_distribution()
        expected = format(j, f"0{m}b")
        assert distribution == {expected: pytest.approx(1.0)}

    def test_inexact_phase_concentrates_on_nearest(self):
        phase = 0.2  # between 1/8 and 2/8; nearest 3-bit value is 2/8
        simulator = DensityMatrixSimulator(library.phase_estimation(3, phase))
        simulator.run()
        distribution = simulator.classical_distribution()
        best = max(distribution, key=distribution.get)
        assert int(best, 2) / 8 == pytest.approx(0.25)
        assert distribution[best] > 0.4

    def test_precision_improves_with_counting_qubits(self):
        phase = 0.2
        errors = []
        for m in (2, 4, 6):
            simulator = DensityMatrixSimulator(library.phase_estimation(m, phase))
            simulator.run()
            distribution = simulator.classical_distribution()
            estimate = sum(
                int(outcome, 2) / (1 << m) * probability
                for outcome, probability in distribution.items()
            )
            errors.append(abs(estimate - phase))
        assert errors[-1] < errors[0]

    def test_validation(self):
        with pytest.raises(CircuitError):
            library.phase_estimation(0, 0.5)


class TestDeutschJozsa:
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_constant_oracle_measures_zero(self, n):
        simulator = DensityMatrixSimulator(library.deutsch_jozsa(n))
        simulator.run()
        assert simulator.classical_distribution() == {"0" * n: pytest.approx(1.0)}

    @pytest.mark.parametrize("mask", [1, 5, 7])
    def test_balanced_oracle_measures_mask(self, mask):
        simulator = DensityMatrixSimulator(
            library.deutsch_jozsa(3, balanced_mask=mask)
        )
        simulator.run()
        expected = format(mask, "03b")
        assert simulator.classical_distribution() == {expected: pytest.approx(1.0)}

    def test_balanced_never_reads_zero(self):
        for mask in range(1, 8):
            simulator = DensityMatrixSimulator(
                library.deutsch_jozsa(3, balanced_mask=mask)
            )
            simulator.run()
            assert "000" not in simulator.classical_distribution()

    def test_validation(self):
        with pytest.raises(CircuitError):
            library.deutsch_jozsa(0)
        with pytest.raises(CircuitError):
            library.deutsch_jozsa(3, balanced_mask=0)
        with pytest.raises(CircuitError):
            library.deutsch_jozsa(3, balanced_mask=8)
