"""Unit tests for the interactive terminal tool (REPL)."""

import io

import pytest

from repro.qc import library
from repro.tool.repl import InteractiveTool, run_repl


@pytest.fixture
def bell_path(tmp_path):
    circuit = library.bell_pair()
    circuit.measure(0, 0)
    path = tmp_path / "bell.qasm"
    path.write_text(circuit.to_qasm())
    return str(path)


class TestCommands:
    def test_load(self, bell_path):
        tool = InteractiveTool()
        out = tool.execute(f"load {bell_path}")
        assert "2 qubits" in out and "3 operations" in out

    def test_commands_require_circuit(self):
        tool = InteractiveTool()
        assert "no circuit loaded" in tool.execute("step")
        assert "no circuit loaded" in tool.execute("show")

    def test_unknown_command(self):
        tool = InteractiveTool()
        assert "unknown command" in tool.execute("frobnicate")

    def test_help(self):
        tool = InteractiveTool()
        out = tool.execute("help")
        for command in ("load", "step", "back", "export"):
            assert command in out

    def test_empty_line(self):
        assert InteractiveTool().execute("   ") == ""

    def test_source(self, bell_path):
        tool = InteractiveTool()
        tool.execute(f"load {bell_path}")
        out = tool.execute("source")
        assert "q1:" in out and "[H]" in out

    def test_step_and_back(self, bell_path):
        tool = InteractiveTool(seed=0)
        tool.execute(f"load {bell_path}")
        out = tool.execute("step")
        assert "gate" in out and "[1/3]" in out
        out = tool.execute("back")
        assert "[0/3]" in out

    def test_measurement_dialog(self, bell_path):
        tool = InteractiveTool(seed=0)
        tool.execute(f"load {bell_path}")
        tool.execute("step")
        tool.execute("step")
        # A bare 'step' at a superposed measurement shows the dialog...
        out = tool.execute("step")
        assert "dialog" in out and "P(0)=0.500" in out
        # ... and answering it collapses the state.
        out = tool.execute("step 1")
        assert "outcome 1" in out
        vector = tool.execute("vector")
        assert "|11>" in vector and "|00>" not in vector

    def test_run_stops_at_breakpoint(self, tmp_path):
        circuit = library.bell_pair()
        circuit.barrier()
        circuit.x(0)
        path = tmp_path / "barrier.qasm"
        path.write_text(circuit.to_qasm())
        tool = InteractiveTool()
        tool.execute(f"load {path}")
        out = tool.execute("run")
        assert "executed 3 step(s)" in out

    def test_end_and_start(self, bell_path):
        tool = InteractiveTool(seed=0)
        tool.execute(f"load {bell_path}")
        out = tool.execute("end")
        assert "[3/3]" in out
        out = tool.execute("start")
        assert "[0/3]" in out

    def test_show_and_style(self, bell_path):
        tool = InteractiveTool(seed=0)
        tool.execute(f"load {bell_path}")
        tool.execute("step")
        tool.execute("step")
        out = tool.execute("show")
        assert "q1" in out and "1/√2" in out
        assert "style set to colored" == tool.execute("style colored")
        assert "usage" in tool.execute("style neon")

    def test_probs_and_sample(self, bell_path):
        tool = InteractiveTool(seed=1)
        tool.execute(f"load {bell_path}")
        tool.execute("step")
        tool.execute("step")
        assert "P(0)=0.5000" in tool.execute("probs 0")
        out = tool.execute("sample 50")
        assert "|00>" in out or "|11>" in out

    def test_bloch(self, bell_path):
        tool = InteractiveTool(seed=0)
        tool.execute(f"load {bell_path}")
        out = tool.execute("bloch")
        assert "q0" in out and "|r|=1.000" in out

    def test_export(self, bell_path, tmp_path):
        tool = InteractiveTool(seed=0)
        tool.execute(f"load {bell_path}")
        tool.execute("end")
        target = tmp_path / "session.html"
        out = tool.execute(f"export {target}")
        assert "wrote" in out
        assert target.read_text().startswith("<!DOCTYPE html>")

    def test_stats(self, bell_path):
        tool = InteractiveTool(seed=0)
        tool.execute(f"load {bell_path}")
        tool.execute("end")
        assert "unique_vector" in tool.execute("stats")

    def test_quit(self):
        tool = InteractiveTool()
        assert tool.execute("quit") == "bye"
        assert tool.finished

    def test_error_reporting(self, bell_path):
        tool = InteractiveTool()
        tool.execute(f"load {bell_path}")
        assert "error" in tool.execute("probs notanumber")
        assert "error" in tool.execute("load /nonexistent/file.qasm")


class TestRunRepl:
    def test_scripted_session(self, bell_path):
        script = io.StringIO(
            f"load {bell_path}\nstep\nstep\nstep 0\nvector\nquit\n"
        )
        output = io.StringIO()
        run_repl(script, output, seed=0, interactive=False)
        text = output.getvalue()
        assert "loaded" in text
        assert "|00>" in text
        assert "bye" in text

    def test_eof_terminates(self):
        output = io.StringIO()
        run_repl(io.StringIO(""), output, interactive=False)
        assert output.getvalue() == ""

    def test_prompt_written_in_interactive_mode(self, bell_path):
        script = io.StringIO("quit\n")
        output = io.StringIO()
        run_repl(script, output, interactive=True)
        assert "qdd> " in output.getvalue()
