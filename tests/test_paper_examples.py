"""Integration tests reproducing every numbered example and figure of the
paper (Wille/Burgholzer/Artner, DATE 2021).

Each test cites the example/figure it verifies; together they constitute
the reproduction evidence recorded in EXPERIMENTS.md.
"""

import cmath
import math

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.dd import sampling
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import DDSimulator, build_unitary
from repro.tool import SimulationSession, VerificationSession
from repro.verification import (
    ApplicationStrategy,
    check_equivalence_alternating,
    check_equivalence_construct,
)

INV_SQRT2 = 1.0 / math.sqrt(2.0)


class TestSection2QuantumComputing:
    def test_example1_bell_state_is_valid_and_entangled(self, package):
        """Ex. 1: 1/sqrt(2)[1,0,0,1] is a valid, entangled state."""
        vector = np.array([INV_SQRT2, 0.0, 0.0, INV_SQRT2])
        assert abs(np.sum(np.abs(vector) ** 2) - 1.0) < 1e-12
        # Entanglement: no product decomposition |q1> (x) |q0| exists; the
        # reduced 2x2 amplitude matrix has rank 2.
        assert np.linalg.matrix_rank(vector.reshape(2, 2)) == 2

    def test_example2_measurement_is_fifty_fifty_and_correlated(self, package):
        """Ex. 2: each outcome 50%; the second qubit is then determined."""
        state = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
        p0, p1 = sampling.qubit_probabilities(package, state, 0)
        assert abs(p0 - 0.5) < 1e-12 and abs(p1 - 0.5) < 1e-12
        for outcome, expected in ((0, [1, 0, 0, 0]), (1, [0, 0, 0, 1])):
            __, __, collapsed = sampling.measure_qubit(
                package, state, 0, outcome=outcome
            )
            assert np.allclose(package.to_vector(collapsed, 2), expected)

    def test_example3_hadamard_on_msq(self, package):
        """Ex. 3: (H (x) I2)|00> = 1/sqrt(2)[1,0,1,0]."""
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        gate = package.single_qubit_gate(2, h, 1)
        assert np.allclose(package.to_matrix(gate, 2), np.kron(h, np.eye(2)))
        result = package.multiply(gate, package.zero_state(2))
        assert np.allclose(
            package.to_vector(result, 2), [INV_SQRT2, 0, INV_SQRT2, 0]
        )

    def test_figure1_gate_matrices(self):
        """Fig. 1(a)/(b): the H and CNOT matrices."""
        from repro.qc.gates import gate_matrix
        from repro.qc.operations import GateOp
        from repro.simulation.statevector import gate_unitary

        assert np.allclose(
            gate_matrix("h"), np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        )
        cnot = gate_unitary(GateOp(gate="x", targets=(0,), controls=(1,)), 2)
        assert np.allclose(
            cnot, [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
        )

    def test_example4_5_circuit_evolution(self):
        """Ex. 4/5 / Fig. 1(c): |00> -> 1/sqrt(2)(|00>+|10|) -> Bell."""
        simulator = DDSimulator(library.bell_pair())
        simulator.step_forward()
        assert np.allclose(
            simulator.statevector(), [INV_SQRT2, 0, INV_SQRT2, 0]
        )
        simulator.step_forward()
        assert np.allclose(
            simulator.statevector(), [INV_SQRT2, 0, 0, INV_SQRT2]
        )

    def test_figure1c_circuit_unitary(self):
        """Fig. 1(c): U = CNOT . (H (x) I2)."""
        h = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        cnot = np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]])
        assert np.allclose(
            build_unitary(library.bell_pair()), cnot @ np.kron(h, np.eye(2))
        )


class TestSection3DecisionDiagrams:
    def test_example6_bell_dd_three_nodes(self, package):
        """Ex. 6 / Fig. 2(a): 3 nodes; both paths have amplitude 1/sqrt(2)."""
        state = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
        assert package.node_count(state) == 3
        assert abs(package.amplitude(state, "00") - INV_SQRT2) < 1e-12
        assert abs(package.amplitude(state, "11") - INV_SQRT2) < 1e-12

    def test_example7_gate_dds(self, package):
        """Ex. 7 / Fig. 2(b)/(c): Hadamard (1 node) and CNOT (3 nodes)."""
        h = package.from_matrix(np.array([[1, 1], [1, -1]]) / math.sqrt(2))
        assert package.node_count(h) == 1
        cnot = package.from_matrix(
            np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]])
        )
        assert package.node_count(cnot) == 3
        # Successor order: U00, U01, U10, U11 (paper Ex. 7).
        top = cnot.node
        assert not top.edges[0].is_zero and top.edges[1].is_zero
        assert top.edges[2].is_zero and not top.edges[3].is_zero

    def test_example8_kron_by_terminal_replacement(self, package):
        """Ex. 8 / Fig. 3: H (x) I2 built on diagrams."""
        h = package.from_matrix(np.array([[1, 1], [1, -1]]) / math.sqrt(2))
        identity = package.identity(1)
        product = package.kron(h, identity)
        assert np.allclose(
            package.to_matrix(product, 2),
            np.kron(np.array([[1, 1], [1, -1]]) / math.sqrt(2), np.eye(2)),
        )
        # Terminal replacement: the identity node is reused as-is.
        assert product.node.edges[0].node is identity.node

    def test_example9_figure4_multiplication_recursion(self, package, rng):
        """Ex. 9 / Fig. 4: recursive matrix-vector decomposition."""
        from tests.conftest import random_state, random_unitary

        matrix = random_unitary(2, rng)
        vector = random_state(2, rng)
        m_dd = package.from_matrix(matrix)
        v_dd = package.from_state_vector(vector)
        result = package.multiply(m_dd, v_dd)
        assert np.allclose(package.to_vector(result, 2), matrix @ vector)

    def test_sampling_footnote3(self, package):
        """Footnote 3 / Sec. III-B: L2 normalization makes branch
        probabilities local edge-weight magnitudes."""
        state = package.from_state_vector(
            [math.sqrt(0.4), math.sqrt(0.1), math.sqrt(0.3), math.sqrt(0.2)]
        )
        w0, w1 = state.node.edges
        assert abs(abs(w0.weight) ** 2 - 0.5) < 1e-12
        assert abs(abs(w1.weight) ** 2 - 0.5) < 1e-12


class TestSectionVerification:
    def test_example10_figure5_qft_functionality(self):
        """Ex. 10 / Fig. 5: both QFT circuits realize (1/sqrt(8)) omega^(jk)
        with omega = exp(i pi / 4)."""
        omega = cmath.exp(1j * math.pi / 4.0)
        expected = np.array(
            [[omega ** ((j * k) % 8) for k in range(8)] for j in range(8)]
        ) / math.sqrt(8.0)
        assert np.allclose(build_unitary(library.qft(3)), expected)
        assert np.allclose(build_unitary(library.qft_compiled(3)), expected)
        # omega = sqrt(i) = (1+i)/sqrt(2), as stated in Ex. 10.
        assert cmath.isclose(omega, (1 + 1j) / math.sqrt(2.0))
        assert cmath.isclose(omega**2, 1j)

    def test_example11_figure6_canonical_comparison(self, package):
        """Ex. 11 / Fig. 6: both circuits give the *same* DD root."""
        left = circuit_to_dd(package, library.qft(3))
        right = circuit_to_dd(package, library.qft_compiled(3))
        assert left.node is right.node
        assert package.complex_table.approx_equal(left.weight, right.weight)
        result = check_equivalence_construct(
            library.qft(3), library.qft_compiled(3)
        )
        assert result.equivalent

    def test_example12_nine_vs_twentyone_nodes(self):
        """Ex. 12: the alternating scheme needs a maximum of 9 nodes, versus
        21 nodes for building the entire system matrix."""
        alternating = check_equivalence_alternating(
            library.qft(3),
            library.qft_compiled(3),
            strategy=ApplicationStrategy.COMPILATION_FLOW,
        )
        monolithic = check_equivalence_construct(
            library.qft(3), library.qft_compiled(3)
        )
        assert alternating.equivalent and monolithic.equivalent
        assert alternating.max_nodes == 9
        assert monolithic.max_nodes == 21


class TestSection4Visualization:
    def test_figure7_styles(self, package):
        """Fig. 7: classic mode, the HLS wheel, and colored edges."""
        from repro.vis import DDStyle, dd_to_svg
        from repro.vis.color import phase_to_color
        from repro.vis.svg import color_wheel_svg

        state = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
        classic = dd_to_svg(package, state, DDStyle.classic())
        assert "1/√2" in classic and "stroke-dasharray" in classic
        colored = dd_to_svg(package, state, DDStyle.colored())
        assert "1/√2" not in colored
        # The wheel anchors: phase 0 -> red, pi -> cyan, pi/2 ~ chartreuse.
        assert phase_to_color(1 + 0j) == "#ff0000"
        assert phase_to_color(-1 + 0j) == "#00ffff"
        assert color_wheel_svg().count("<polygon") >= 72

    def test_figure8_simulation_walkthrough(self):
        """Fig. 8: the four screenshots of the simulation feature."""
        circuit = library.bell_pair()
        circuit.measure(0, 0)
        session = SimulationSession(circuit)
        # (a) initial state |00>
        assert np.allclose(session.simulator.statevector(), [1, 0, 0, 0])
        # (b) after both gates: the Bell state
        session.forward()
        session.forward()
        assert np.allclose(
            session.simulator.statevector(), [INV_SQRT2, 0, 0, INV_SQRT2]
        )
        # (c) measurement dialog shows 50/50
        kind, qubit, p0, p1 = session.pending_dialog()
        assert (p0, p1) == (0.5, 0.5)
        # (d) choosing |1> collapses to |11>
        session.forward(outcome=1)
        assert np.allclose(session.simulator.statevector(), [0, 0, 0, 1])
        assert len(session.frames) == 4

    def test_figure9_verification_walkthrough(self):
        """Fig. 9: three gates of G and six of G' applied; the diagram
        stays close to the identity, and finishing confirms equivalence."""
        session = VerificationSession(library.qft(3), library.qft_compiled(3))
        for _ in range(3):
            session.apply_left()
            session.apply_right_to_barrier()
        # Close to the identity throughout (identity itself has 3 nodes).
        assert session.peak_node_count <= 9
        session.run_compilation_flow()
        assert session.is_identity()

    def test_breakpoints_of_section4b(self):
        """Sec. IV-B: barriers, measurements and resets act as breakpoints."""
        from repro.qc import QuantumCircuit

        circuit = QuantumCircuit(1, 1)
        circuit.h(0).barrier().h(0).measure(0, 0).reset(0)
        simulator = DDSimulator(circuit, seed=0)
        stops = []
        while not simulator.at_end:
            records = simulator.run()
            stops.append(records[-1].kind.value)
        assert stops == ["barrier", "measurement", "reset"]
