"""Breakpoint and measurement-dialog edge cases in tool sessions.

The service layer replays these session semantics verbatim, so the corner
cases — a breakpoint as the very last operation, stepping backward across
a measurement, querying the dialog after fast-forward — are pinned here.
"""

import pytest

from repro.errors import SimulationError
from repro.qc.circuit import QuantumCircuit
from repro.tool.session import SimulationSession


def _h_then_barrier():
    return QuantumCircuit(1, name="hb").h(0).barrier()


def _h_measure_h():
    circuit = QuantumCircuit(1, 1, name="hmh")
    return circuit.h(0).measure(0, 0).h(0)


class TestBreakpointAsFinalOp:
    def test_to_end_stops_on_final_barrier_at_end(self):
        session = SimulationSession(_h_then_barrier())
        records = session.to_end(stop_at_breakpoints=True)
        assert records[-1].is_breakpoint
        assert session.simulator.at_end
        # The dialog query after the very last operation must not raise.
        assert session.pending_dialog() is None

    def test_forward_past_final_barrier_raises(self):
        session = SimulationSession(_h_then_barrier())
        session.to_end(stop_at_breakpoints=True)
        with pytest.raises(SimulationError):
            session.forward()

    def test_frames_cover_every_step(self):
        session = SimulationSession(_h_then_barrier())
        session.to_end(stop_at_breakpoints=True)
        assert len(session.frames) == 3  # initial + H + barrier


class TestBackwardAcrossMeasurement:
    def test_backward_restores_superposition_and_classical_bits(self):
        session = SimulationSession(_h_measure_h())
        session.forward()                # H
        record = session.forward(outcome=1)
        assert record.outcome == 1
        assert session.simulator.classical_bits == (1,)
        assert session.simulator.node_count() == 1  # collapsed to |1>

        session.backward()               # undo the measurement
        assert session.simulator.classical_bits == (0,)
        p0, p1 = session.simulator.probabilities(0)
        assert p0 == pytest.approx(0.5)
        assert p1 == pytest.approx(0.5)
        # The dialog is pending again for the restored superposition.
        kind, qubit, p0, p1 = session.pending_dialog()
        assert (kind, qubit) == ("measure", 0)

    def test_remeasure_with_other_outcome(self):
        session = SimulationSession(_h_measure_h())
        session.forward()
        session.forward(outcome=1)
        session.backward()
        record = session.forward(outcome=0)
        assert record.outcome == 0
        assert session.simulator.classical_bits == (0,)

    def test_to_start_across_measurement(self):
        session = SimulationSession(_h_measure_h())
        session.to_end(stop_at_breakpoints=False)
        session.to_start()
        assert session.simulator.at_start
        assert session.simulator.classical_bits == (0,)
        assert len(session.frames) == 1

    def test_backward_at_start_raises(self):
        session = SimulationSession(_h_measure_h())
        with pytest.raises(SimulationError):
            session.backward()


class TestPendingDialogAfterToEnd:
    def test_dialog_none_at_circuit_end(self):
        circuit = QuantumCircuit(1, 1).h(0).measure(0, 0)
        session = SimulationSession(circuit, seed=0)
        session.to_end(stop_at_breakpoints=False)
        assert session.simulator.at_end
        assert session.pending_dialog() is None

    def test_fast_forward_stops_at_measurement_then_dialog_reflects_next_op(self):
        session = SimulationSession(_h_measure_h(), seed=0)
        records = session.to_end(stop_at_breakpoints=True)
        # stopped right after the measurement breakpoint ...
        assert records[-1].kind.value == "measurement"
        assert not session.simulator.at_end
        # ... and the next operation is a plain gate: no dialog.
        assert session.pending_dialog() is None

    def test_dialog_only_for_superposed_qubits(self):
        circuit = QuantumCircuit(1, 1).x(0).measure(0, 0)
        session = SimulationSession(circuit)
        session.forward()  # X: the qubit is deterministically |1>
        assert session.pending_dialog() is None

    def test_dialog_for_pending_reset(self):
        circuit = QuantumCircuit(1).h(0).reset(0)
        session = SimulationSession(circuit)
        session.forward()
        kind, qubit, p0, p1 = session.pending_dialog()
        assert kind == "reset"
        assert p0 == pytest.approx(0.5)

    def test_to_end_resumes_after_breakpoint(self):
        session = SimulationSession(_h_measure_h(), seed=0)
        session.to_end(stop_at_breakpoints=True)   # stops after measure
        session.to_end(stop_at_breakpoints=True)   # runs the trailing H
        assert session.simulator.at_end


class TestNavigationPastEndStaysResumable:
    def test_failed_forward_leaves_session_consistent(self):
        session = SimulationSession(_h_then_barrier())
        session.to_end(stop_at_breakpoints=False)
        position = session.simulator.position
        frames = len(session.frames)
        with pytest.raises(SimulationError):
            session.forward()
        # The failed step must not advance the position, grow the frame
        # list, or wedge navigation: backward still works.
        assert session.simulator.position == position
        assert len(session.frames) == frames
        session.backward()
        assert session.simulator.position == position - 1
        session.forward()
        assert session.simulator.at_end

    def test_dialog_query_at_end_is_stable(self):
        session = SimulationSession(_h_measure_h(), seed=0)
        session.to_end(stop_at_breakpoints=False)
        # Repeated queries after the final operation are pure.
        assert session.pending_dialog() is None
        assert session.pending_dialog() is None
        assert session.simulator.at_end


class TestDeclinedDialogReEntry:
    """Cancelling a measurement/reset dialog must not consume the step."""

    def test_reset_dialog_declined_then_reentered(self):
        circuit = QuantumCircuit(1, name="hr").h(0).reset(0)
        session = SimulationSession(circuit, seed=0)
        session.forward()  # H: superposition, reset dialog pending
        first = session.pending_dialog()
        assert first is not None and first[0] == "reset"
        # Declining the dialog = not stepping.  The query itself must be
        # side-effect-free: ask again and the same dialog is still pending.
        second = session.pending_dialog()
        assert second == first
        assert session.simulator.position == 1
        # Re-enter with an explicit outcome: the reset observes |1> ...
        record = session.forward(outcome=1)
        assert record.outcome == 1
        # ... and leaves the qubit in |0> regardless of the observation.
        p0, _ = session.simulator.probabilities(0)
        assert p0 == pytest.approx(1.0)
        assert session.simulator.at_end

    def test_backward_across_reset_restores_dialog(self):
        circuit = QuantumCircuit(1, name="hr").h(0).reset(0)
        session = SimulationSession(circuit, seed=0)
        session.forward()
        session.forward(outcome=0)
        session.backward()  # undo the reset
        dialog = session.pending_dialog()
        assert dialog is not None and dialog[0] == "reset"
        p0, p1 = session.simulator.probabilities(0)
        assert p0 == pytest.approx(0.5) and p1 == pytest.approx(0.5)
        # Re-entry with the other observation is still possible.
        record = session.forward(outcome=1)
        assert record.outcome == 1
