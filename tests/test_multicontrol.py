"""Unit tests for the ancilla-free multi-controlled decompositions."""

import math

import numpy as np
import pytest

from repro.qc import QuantumCircuit, library
from repro.qc.qasm import parse_qasm
from repro.qc.transforms import decompose_to_primitives, emit_mcp, emit_mcx
from repro.simulation import build_unitary
from repro.verification import check_equivalence_construct


def _mcp_reference(num_qubits, lam, controls, target):
    size = 1 << num_qubits
    matrix = np.eye(size, dtype=complex)
    mask = sum(1 << line for line in list(controls) + [target])
    for basis in range(size):
        if basis & mask == mask:
            matrix[basis, basis] = np.exp(1j * lam)
    return matrix


class TestEmitMcp:
    @pytest.mark.parametrize("num_controls", [0, 1, 2, 3, 4])
    def test_exact_for_any_control_count(self, num_controls):
        num_qubits = num_controls + 1
        lam = 0.7
        controls = list(range(1, num_qubits))
        circuit = QuantumCircuit(num_qubits)
        emit_mcp(circuit, lam, controls, 0)
        expected = _mcp_reference(num_qubits, lam, controls, 0)
        assert np.allclose(build_unitary(circuit), expected)

    def test_only_primitive_gates(self):
        circuit = QuantumCircuit(4)
        emit_mcp(circuit, math.pi / 3, [1, 2, 3], 0)
        for operation in circuit:
            assert operation.num_controls <= 1

    def test_symmetric_in_lines(self):
        """A multi-controlled phase is symmetric: swapping the roles of
        control and target lines gives the same unitary."""
        a = QuantumCircuit(3)
        emit_mcp(a, 0.9, [1, 2], 0)
        b = QuantumCircuit(3)
        emit_mcp(b, 0.9, [0, 1], 2)
        assert np.allclose(build_unitary(a), build_unitary(b))


class TestEmitMcx:
    @pytest.mark.parametrize("num_controls", [0, 1, 2, 3, 4, 5])
    def test_exact_for_any_control_count(self, num_controls):
        num_qubits = num_controls + 1
        controls = list(range(1, num_qubits))
        direct = QuantumCircuit(num_qubits)
        direct.gate("x", [0], controls=controls)
        decomposed = QuantumCircuit(num_qubits)
        emit_mcx(decomposed, controls, 0)
        assert np.allclose(build_unitary(decomposed), build_unitary(direct))

    def test_exact_not_just_up_to_phase(self):
        """The H-P(pi)-H construction is exact, so no global-phase slack
        creeps into larger circuits that embed it."""
        circuit = QuantumCircuit(4)
        emit_mcx(circuit, [1, 2, 3], 0)
        direct = QuantumCircuit(4)
        direct.mcx([1, 2, 3], 0)
        difference = build_unitary(circuit) - build_unitary(direct)
        assert np.max(np.abs(difference)) < 1e-9


class TestDecomposeExtended:
    def test_mcx_through_decompose(self):
        circuit = QuantumCircuit(5)
        circuit.mcx([1, 2, 3, 4], 0)
        compiled = decompose_to_primitives(circuit)
        assert np.allclose(build_unitary(compiled), build_unitary(circuit))
        assert all(op.num_controls <= 1 for op in compiled)

    def test_mcz_through_decompose(self):
        circuit = QuantumCircuit(4)
        circuit.gate("z", [0], controls=[1, 2, 3])
        compiled = decompose_to_primitives(circuit)
        assert np.allclose(build_unitary(compiled), build_unitary(circuit))

    def test_mcp_through_decompose(self):
        circuit = QuantumCircuit(4)
        circuit.gate("p", [0], params=[1.1], controls=[1, 2, 3])
        compiled = decompose_to_primitives(circuit)
        assert np.allclose(build_unitary(compiled), build_unitary(circuit))

    def test_negative_controls_through_decompose(self):
        circuit = QuantumCircuit(3)
        circuit.gate("x", [0], controls=[2], negative_controls=[1])
        compiled = decompose_to_primitives(circuit)
        assert np.allclose(build_unitary(compiled), build_unitary(circuit))
        assert all(not op.negative_controls for op in compiled)

    def test_controlled_swap_through_decompose(self):
        circuit = QuantumCircuit(4)
        circuit.cswap(3, 0, 2)
        compiled = decompose_to_primitives(circuit)
        assert np.allclose(build_unitary(compiled), build_unitary(circuit))

    def test_grover_qasm_roundtrip(self):
        """Grover with 3-controlled Z gates survives the full pipeline:
        decompose -> export -> reparse -> verify equivalent."""
        grover = library.grover(4, 9)
        compiled = decompose_to_primitives(grover)
        reparsed = parse_qasm(compiled.to_qasm())
        result = check_equivalence_construct(grover, reparsed)
        assert result.equivalent

    def test_gate_count_growth(self):
        counts = []
        for k in (2, 3, 4, 5):
            circuit = QuantumCircuit(k + 1)
            circuit.mcx(list(range(1, k + 1)), 0)
            counts.append(decompose_to_primitives(circuit).num_gates)
        # Exponential (roughly 3x per control) but finite and exact.
        assert all(a < b for a, b in zip(counts, counts[1:]))
