"""HTTP front-end regression suite, run against BOTH transports.

Every test here is parametrized over the ``eventloop`` reactor and the
legacy ``threaded`` server: the two front ends must speak identical HTTP.
The first four test groups are regressions for bugs the threaded front
end shipped with (and which the reactor must not reintroduce):

* a malformed ``Content-Length`` header (``abc``) used to raise
  ``ValueError`` inside the handler and kill the connection with no
  response — now a structured 400;
* duplicated query parameters were silently collapsed last-wins by
  ``dict(parse_qsl(...))`` — now a structured 400 naming the parameter;
* ``DDToolServer.url`` used to echo the wildcard bind host
  (``http://0.0.0.0:<port>``), which is not dialable — now loopback;
* ``HEAD`` requests got ``http.server``'s default 501 HTML page — now
  answered with the GET headers (including the entity's true
  ``Content-Length``) and no body.

Plus keep-alive reuse on a single raw socket, the ``/simulate/batch``
NDJSON endpoint, pipelined requests, and worker-shard affinity
(repeated digests must land on the same shard's warm tables).
"""

import json
import socket
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.qc import library
from repro.service import DDToolServer, ServiceConfig
from repro.service.workers import WorkerPool, simulate_job

FRONTENDS = ("threaded", "eventloop")
QFT = library.qft(3).to_qasm()


@pytest.fixture(scope="module", params=FRONTENDS)
def server(request):
    config = ServiceConfig(
        host="127.0.0.1", port=0, workers=0,
        cache_capacity=64, frontend=request.param,
        batch_max_jobs=8,
    )
    instance = DDToolServer(config).start()
    yield instance
    instance.stop()


def _raw_exchange(server, payload: bytes, timeout: float = 10.0) -> bytes:
    """Send raw bytes on a fresh socket; return everything until close."""
    host, port = server.address
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        try:
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
        except socket.timeout:
            pass
    return b"".join(chunks)


def _parse_raw(raw: bytes):
    """Split one raw HTTP response into (status, headers, body)."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(None, 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


# ----------------------------------------------------------------------
# bugfix 1: malformed Content-Length → structured 400, not a dead socket
# ----------------------------------------------------------------------
def test_malformed_content_length_is_structured_400(server):
    raw = _raw_exchange(server, (
        b"POST /simulate HTTP/1.1\r\n"
        b"Host: t\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: abc\r\n"
        b"\r\n"
    ))
    status, headers, body = _parse_raw(raw)
    assert status == 400
    assert headers["content-type"] == "application/json"
    error = json.loads(body)["error"]
    assert error["type"] == "BadRequestError"
    assert "Content-Length" in error["message"]
    # The body was never framed: the server must close the connection.
    assert headers.get("connection") == "close"


@pytest.mark.parametrize("value", ["-5", "1e3", "0x10", "12abc"])
def test_unparseable_content_length_variants(server, value):
    raw = _raw_exchange(server, (
        "POST /simulate HTTP/1.1\r\n"
        "Host: t\r\n"
        f"Content-Length: {value}\r\n"
        "\r\n"
    ).encode("latin-1"))
    status, _, body = _parse_raw(raw)
    assert status == 400, raw[:200]
    assert json.loads(body)["error"]["type"] == "BadRequestError"


# ----------------------------------------------------------------------
# bugfix 2: duplicated query parameters → 400, not silent last-wins
# ----------------------------------------------------------------------
def test_duplicate_query_parameter_is_rejected(server):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", "/healthz?probe=1&probe=2")
        response = connection.getresponse()
        body = response.read()
        assert response.status == 400
        error = json.loads(body)["error"]
        assert error["type"] == "BadRequestError"
        assert "probe" in error["message"]
        # The request was fully consumed: keep-alive must survive a 400.
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        assert response.status == 200
        response.read()
    finally:
        connection.close()


def test_distinct_query_parameters_still_accepted(server):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", "/healthz?a=1&b=2")
        response = connection.getresponse()
        assert response.status == 200
        response.read()
    finally:
        connection.close()


# ----------------------------------------------------------------------
# bugfix 3: wildcard bind host must not leak into the advertised URL
# ----------------------------------------------------------------------
@pytest.mark.parametrize("frontend", FRONTENDS)
def test_wildcard_host_url_is_dialable(frontend):
    config = ServiceConfig(host="0.0.0.0", port=0, workers=0,
                           frontend=frontend)
    with DDToolServer(config) as instance:
        assert "0.0.0.0" not in instance.url
        assert instance.url.startswith("http://127.0.0.1:")
        # The advertised URL must actually answer.
        host_port = instance.url[len("http://"):]
        host, port = host_port.rsplit(":", 1)
        connection = HTTPConnection(host, int(port), timeout=10)
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            response.read()
        finally:
            connection.close()


def test_explicit_host_is_preserved(server):
    assert server.url.startswith("http://127.0.0.1:")


# ----------------------------------------------------------------------
# bugfix 4: HEAD support (load-balancer probes), not 501 HTML
# ----------------------------------------------------------------------
def test_head_healthz_matches_get(server):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", "/healthz")
        get_response = connection.getresponse()
        get_body = get_response.read()
        assert get_response.status == 200

        connection.request("HEAD", "/healthz")
        head_response = connection.getresponse()
        head_body = head_response.read()
        assert head_response.status == 200
        assert head_body == b""
        assert head_response.getheader("Content-Type") == "application/json"
        # HEAD advertises the length GET would have sent.
        assert int(head_response.getheader("Content-Length")) == len(get_body)

        # The connection survives the body-less response.
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        assert response.status == 200
        response.read()
    finally:
        connection.close()


def test_head_unknown_path_is_404(server):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=10)
    try:
        connection.request("HEAD", "/no/such/path")
        response = connection.getresponse()
        assert response.status == 404
        assert response.read() == b""
    finally:
        connection.close()


# ----------------------------------------------------------------------
# keep-alive: many sequential requests on ONE socket
# ----------------------------------------------------------------------
def test_keep_alive_reuses_one_socket(server):
    host, port = server.address
    with socket.create_connection((host, port), timeout=10) as sock:
        reader = sock.makefile("rb")
        for index in range(5):
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            status_line = reader.readline()
            assert status_line.startswith(b"HTTP/1.1 200"), (index, status_line)
            length = None
            while True:
                line = reader.readline()
                if line in (b"\r\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value)
            assert length is not None
            body = reader.read(length)
            assert json.loads(body)["status"] == "ok"


def test_pipelined_requests_on_one_socket(server):
    """Two requests written back-to-back both get answered, in order."""
    host, port = server.address
    request = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(request + request)
        reader = sock.makefile("rb")
        seen = 0
        for _ in range(2):
            status_line = reader.readline()
            assert status_line.startswith(b"HTTP/1.1 200"), status_line
            length = None
            while True:
                line = reader.readline()
                if line in (b"\r\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value)
            reader.read(length)
            seen += 1
        assert seen == 2


# ----------------------------------------------------------------------
# /simulate/batch: NDJSON streamed per-job results
# ----------------------------------------------------------------------
def test_batch_mixed_jobs(server):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=30)
    try:
        jobs = [
            {"qasm": QFT, "shots": 4, "seed": 7},
            {"qasm": QFT, "shots": 4, "seed": 7},   # cache hit of job 0
            {"qasm": "not even qasm"},               # per-job parse error
        ]
        connection.request(
            "POST", "/simulate/batch",
            body=json.dumps({"jobs": jobs}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        lines = [json.loads(line)
                 for line in response.read().decode().splitlines() if line]
    finally:
        connection.close()

    assert len(lines) == 3
    by_index = {entry["index"]: entry for entry in lines}
    assert set(by_index) == {0, 1, 2}
    assert by_index[0]["ok"] and by_index[0]["nodes"] > 0
    assert by_index[1]["ok"]
    # One of the two identical jobs must have hit the result cache.
    assert by_index[0]["cached"] or by_index[1]["cached"]
    assert not by_index[2]["ok"]
    # The unparseable circuit surfaces as a structured per-job error
    # (same shape as the one-shot endpoint's JSON error body).
    assert by_index[2]["error"]["type"] in ("ParseError", "BadRequestError")
    assert by_index[2]["error"]["message"]


def test_batch_envelope_errors(server):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=10)
    try:
        for payload, expected in (
            ({"jobs": []}, 400),
            ({"jobs": "nope"}, 400),
            ({}, 400),
            ({"jobs": [{"qasm": QFT}] * 9}, 413),  # batch_max_jobs=8
        ):
            connection.request(
                "POST", "/simulate/batch",
                body=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = response.read()
            assert response.status == expected, (payload, body)
            assert json.loads(body)["error"]["type"]
    finally:
        connection.close()


# ----------------------------------------------------------------------
# shard affinity: one digest, one shard
# ----------------------------------------------------------------------
def test_shard_for_is_deterministic():
    pool = WorkerPool(workers=0)
    digest = "a" * 64
    assert pool.shard_for(digest) == pool.shard_for(digest) == 0
    pool.close()


def test_keyed_jobs_stick_to_one_shard():
    pool = WorkerPool(workers=2, job_timeout=60.0)
    try:
        digest = "feedface" * 8
        expected = pool.shard_for(digest)
        for seed in range(4):
            result = pool.submit(
                "simulate", simulate_job, QFT, 4, seed, False,
                shard_key=digest,
            )
            assert result["nodes"] > 0
        counters = pool.shard_jobs
        assert counters[expected]["keyed_jobs"] == 4
        other = [entry["keyed_jobs"]
                 for entry in counters if entry["shard"] != expected]
        assert sum(other) == 0
    finally:
        pool.close()


def test_distinct_keys_spread_across_shards():
    pool = WorkerPool(workers=0)
    try:
        shards = {pool.shard_for(f"digest-{index}") for index in range(64)}
        assert shards == {0}  # inline mode has a single pseudo-shard
    finally:
        pool.close()
    # With real shards the ring must spread keys; check it directly
    # without spawning 4 worker processes.
    import bisect

    from repro.service.workers import _build_ring, _hash_point

    ring = _build_ring(4)
    points = [point for point, _ in ring]
    hits = {0: 0, 1: 0, 2: 0, 3: 0}
    for index in range(1000):
        point = _hash_point(f"digest-{index}")
        position = bisect.bisect_right(points, point) % len(ring)
        hits[ring[position][1]] += 1
    # No shard may be starved or dominate (1000 keys, 4 shards).
    assert all(count > 100 for count in hits.values()), hits


def test_http_requests_with_same_digest_share_a_shard(server):
    """End to end: repeated /simulate of one circuit warms one shard."""
    pool = server.app.pool
    before = {entry["shard"]: entry["keyed_jobs"]
              for entry in pool.shard_jobs}
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=30)
    try:
        for seed in range(100, 104):  # distinct seeds defeat the cache
            connection.request(
                "POST", "/simulate",
                body=json.dumps({"qasm": QFT, "shots": 4,
                                 "seed": seed}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200, response.read()
            response.read()
    finally:
        connection.close()
    after = {entry["shard"]: entry["keyed_jobs"]
             for entry in pool.shard_jobs}
    grew = [shard for shard in after if after[shard] > before.get(shard, 0)]
    assert len(grew) == 1, (before, after)
    assert after[grew[0]] - before.get(grew[0], 0) == 4


# ----------------------------------------------------------------------
# graceful shutdown drains in-flight work on the reactor
# ----------------------------------------------------------------------
def test_eventloop_stop_completes_inflight_request():
    config = ServiceConfig(host="127.0.0.1", port=0, workers=0,
                           frontend="eventloop")
    instance = DDToolServer(config).start()
    host, port = instance.address
    connection = HTTPConnection(host, port, timeout=30)
    try:
        connection.request(
            "POST", "/simulate",
            body=json.dumps({"qasm": QFT, "shots": 4, "seed": 1}).encode(),
            headers={"Content-Type": "application/json"},
        )
        # Stop accepting while the request may still be in flight; the
        # reactor must keep the connection alive until it is answered.
        shutdown = threading.Thread(target=instance.stop)
        time.sleep(0.01)
        shutdown.start()
        response = connection.getresponse()
        assert response.status == 200
        response.read()
        shutdown.join(timeout=30)
        assert not shutdown.is_alive()
    finally:
        connection.close()
