"""Unit tests for the SVG circuit renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import VisualizationError
from repro.qc import QuantumCircuit, library
from repro.vis.circuit_svg import circuit_to_svg


class TestCircuitSvg:
    def test_valid_xml(self):
        svg = circuit_to_svg(library.bell_pair())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_wire_per_qubit(self):
        svg = circuit_to_svg(library.qft(3))
        for qubit in range(3):
            assert f">q{qubit}</text>" in svg

    def test_hadamard_box(self):
        svg = circuit_to_svg(library.bell_pair())
        assert ">H</text>" in svg

    def test_cnot_drawing(self):
        svg = circuit_to_svg(library.bell_pair())
        # A filled control dot and the crossed-circle target.
        assert svg.count('r="4"') >= 1
        assert svg.count('r="9"') == 1

    def test_negative_control_is_open_dot(self):
        circuit = QuantumCircuit(2)
        circuit.gate("z", [0], negative_controls=[1])
        svg = circuit_to_svg(circuit)
        assert 'fill="#ffffff"' in svg

    def test_swap_crosses(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        svg = circuit_to_svg(circuit)
        # Two x-marks of two strokes each.
        assert svg.count("stroke-width=\"1.6\"") == 4

    def test_barrier_dashed(self):
        circuit = QuantumCircuit(2)
        circuit.barrier()
        svg = circuit_to_svg(circuit)
        assert 'stroke-dasharray="5,4"' in svg

    def test_measure_and_reset_symbols(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0).reset(0)
        svg = circuit_to_svg(circuit)
        assert "<path" in svg  # the meter arc
        assert "|0" in svg

    def test_parametrized_gate_label(self):
        import math

        circuit = QuantumCircuit(1)
        circuit.p(math.pi / 2, 0)
        svg = circuit_to_svg(circuit)
        assert "P(pi/2)" in svg

    def test_progress_highlighting(self):
        svg_none = circuit_to_svg(library.bell_pair())
        svg_one = circuit_to_svg(library.bell_pair(), progress=1)
        svg_zero = circuit_to_svg(library.bell_pair(), progress=0)
        assert '#1f77b4' not in svg_none
        assert '#1f77b4' in svg_one  # the executed H is blue
        assert 'stroke-dasharray="4,3"' in svg_zero  # pending H outlined

    def test_parallel_gates_share_column(self):
        parallel = QuantumCircuit(2)
        parallel.h(0).h(1)
        serial = QuantumCircuit(2)
        serial.h(0).cx(0, 1).h(1)
        width_of = lambda svg: float(svg.split('width="')[1].split('"')[0])
        assert width_of(circuit_to_svg(parallel)) < width_of(
            circuit_to_svg(serial)
        )

    def test_title(self):
        svg = circuit_to_svg(library.bell_pair(), title="Fig. 1(c)")
        assert "Fig. 1(c)" in svg

    def test_size_limit(self):
        with pytest.raises(VisualizationError):
            circuit_to_svg(library.ghz_state(25))

    def test_every_library_circuit_renders(self):
        for factory in (
            lambda: library.qft_compiled(3),
            lambda: library.grover(3, 5),
            lambda: library.w_state(4),
            lambda: library.bernstein_vazirani("101"),
            lambda: library.phase_estimation(3, 0.25),
        ):
            ET.fromstring(circuit_to_svg(factory()))
