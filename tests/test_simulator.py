"""Unit tests for the step-through DD simulator (paper Sec. IV-B)."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qc import QuantumCircuit, library
from repro.simulation import DDSimulator, StepKind

INV_SQRT2 = 1.0 / math.sqrt(2.0)


class TestStepping:
    def test_forward_through_bell(self):
        """Paper Ex. 13 / Fig. 8(a)-(b)."""
        simulator = DDSimulator(library.bell_pair())
        assert np.allclose(simulator.statevector(), [1, 0, 0, 0])
        simulator.step_forward()
        assert np.allclose(simulator.statevector(), [INV_SQRT2, 0, INV_SQRT2, 0])
        simulator.step_forward()
        assert np.allclose(simulator.statevector(), [INV_SQRT2, 0, 0, INV_SQRT2])
        assert simulator.at_end

    def test_step_past_end_rejected(self):
        simulator = DDSimulator(library.bell_pair())
        simulator.run_all()
        with pytest.raises(SimulationError):
            simulator.step_forward()

    def test_backward_restores_state(self):
        simulator = DDSimulator(library.bell_pair())
        initial = simulator.state
        simulator.step_forward()
        simulator.step_forward()
        simulator.step_backward()
        simulator.step_backward()
        assert simulator.state == initial
        assert simulator.at_start

    def test_backward_at_start_rejected(self):
        simulator = DDSimulator(library.bell_pair())
        with pytest.raises(SimulationError):
            simulator.step_backward()

    def test_backward_through_measurement(self):
        """Measurements are irreversible physically, but the history makes
        stepping backward possible in the tool."""
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = DDSimulator(circuit, seed=0)
        simulator.step_forward()
        superposed = simulator.state
        simulator.step_forward(outcome=1)
        assert np.allclose(simulator.statevector(), [0, 1])
        simulator.step_backward()
        assert simulator.state == superposed
        assert simulator.classical_bits == (0,)

    def test_rewind(self):
        simulator = DDSimulator(library.ghz_state(3))
        simulator.run_all()
        simulator.rewind()
        assert simulator.at_start
        assert np.allclose(simulator.statevector(), np.eye(8)[0])

    def test_records_accumulate(self):
        simulator = DDSimulator(library.bell_pair())
        simulator.run_all()
        assert len(simulator.records) == 2
        assert all(r.kind is StepKind.GATE for r in simulator.records)
        assert simulator.records[1].node_count == 3

    def test_slideshow(self):
        simulator = DDSimulator(library.ghz_state(3))
        steps = list(simulator.slideshow())
        assert len(steps) == 3
        assert simulator.at_end


class TestBreakpoints:
    def test_run_stops_after_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        simulator = DDSimulator(circuit)
        records = simulator.run()
        assert [r.kind for r in records] == [StepKind.GATE, StepKind.BARRIER]
        assert simulator.position == 2

    def test_run_stops_after_measurement(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0).x(0)
        simulator = DDSimulator(circuit, seed=1)
        records = simulator.run()
        assert records[-1].kind is StepKind.MEASUREMENT
        assert simulator.position == 2

    def test_run_without_breakpoints(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1).barrier()
        simulator = DDSimulator(circuit)
        simulator.run(stop_at_breakpoints=False)
        assert simulator.at_end


class TestMeasurement:
    def test_forced_outcome(self):
        """Paper Fig. 8(c)-(d): choosing |1> in the dialog yields |11>."""
        circuit = library.bell_pair()
        circuit.measure(0, 0)
        simulator = DDSimulator(circuit)
        simulator.run(stop_at_breakpoints=False)
        # Undo the automatic measurement, redo with a forced outcome.
        simulator.step_backward()
        record = simulator.step_forward(outcome=1)
        assert record.outcome == 1
        assert abs(record.probability - 0.5) < 1e-12
        assert np.allclose(simulator.statevector(), [0, 0, 0, 1])
        assert simulator.classical_bits == (1, 0)

    def test_outcome_chooser_callback(self):
        """The chooser models the tool's pop-up dialog."""
        seen = []

        def chooser(p0, p1):
            seen.append((p0, p1))
            return 0

        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = DDSimulator(circuit, outcome_chooser=chooser)
        simulator.run_all()
        assert len(seen) == 1
        assert abs(seen[0][0] - 0.5) < 1e-12
        assert simulator.classical_bits == (0,)

    def test_chooser_not_called_for_deterministic_qubit(self):
        calls = []
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).measure(0, 0)
        simulator = DDSimulator(
            circuit, outcome_chooser=lambda p0, p1: calls.append(1) or 0
        )
        simulator.run_all()
        assert not calls  # no dialog: qubit was deterministic
        assert simulator.classical_bits == (1,)

    def test_invalid_chooser_return(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = DDSimulator(circuit, outcome_chooser=lambda p0, p1: 7)
        with pytest.raises(SimulationError):
            simulator.run_all()

    def test_seeded_reproducibility(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0).h(1).measure(0, 0).measure(1, 1)
        runs = []
        for _ in range(2):
            simulator = DDSimulator(circuit, seed=42)
            simulator.run_all()
            runs.append(simulator.classical_bits)
        assert runs[0] == runs[1]


class TestReset:
    def test_reset_reinitializes_qubit(self):
        circuit = QuantumCircuit(2)
        circuit.x(0).reset(0)
        simulator = DDSimulator(circuit)
        simulator.run_all()
        assert np.allclose(simulator.statevector(), [1, 0, 0, 0])

    def test_reset_record(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).reset(0)
        simulator = DDSimulator(circuit)
        simulator.step_forward()
        record = simulator.step_forward(outcome=1)
        assert record.kind is StepKind.RESET
        assert record.outcome == 1
        assert np.allclose(simulator.statevector(), [1, 0])


class TestClassicalControl:
    def test_condition_met_applies_gate(self):
        circuit = QuantumCircuit(2, 1)
        circuit.x(0).measure(0, 0)
        circuit.gate("x", [1], condition=([0], 1))
        simulator = DDSimulator(circuit)
        simulator.run_all()
        assert np.allclose(simulator.statevector(), [0, 0, 0, 1])

    def test_condition_unmet_skips_gate(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)  # c0 = 0
        circuit.gate("x", [1], condition=([0], 1))
        simulator = DDSimulator(circuit)
        records = simulator.run_all()
        assert records[-1].kind is StepKind.GATE_SKIPPED
        assert np.allclose(simulator.statevector(), [1, 0, 0, 0])

    def test_multibit_condition(self):
        circuit = QuantumCircuit(3, 2)
        circuit.x(0).x(1).measure(0, 0).measure(1, 1)
        circuit.gate("x", [2], condition=([0, 1], 3))
        simulator = DDSimulator(circuit)
        simulator.run_all()
        assert simulator.statevector()[7] == 1.0

    def test_teleportation_style_correction(self):
        """Measure-and-correct always ends in |0> (deferred X)."""
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.gate("x", [0], condition=([0], 1))
        for seed in range(8):
            simulator = DDSimulator(circuit, seed=seed)
            simulator.run_all()
            assert np.allclose(simulator.statevector(), [1, 0])


class TestQueries:
    def test_probabilities(self):
        simulator = DDSimulator(library.bell_pair())
        simulator.run_all()
        p0, p1 = simulator.probabilities(0)
        assert abs(p0 - 0.5) < 1e-12

    def test_sample_counts(self):
        simulator = DDSimulator(library.bell_pair(), seed=0)
        simulator.run_all()
        counts = simulator.sample_counts(500, seed=1)
        assert set(counts) == {"00", "11"}

    def test_initial_state_override(self, package):
        initial = package.basis_state(2, "11")
        circuit = QuantumCircuit(2)
        circuit.i(0)
        simulator = DDSimulator(circuit, package=package, initial_state=initial)
        simulator.run_all()
        assert simulator.statevector()[3] == 1.0
