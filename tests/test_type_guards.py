"""Regression tests: mixed vector/matrix operands must raise, not corrupt."""

import pytest

from repro.dd import DDPackage
from repro.errors import DDError


@pytest.fixture
def operands(package):
    vector = package.zero_state(2)
    matrix = package.identity(2)
    return package, vector, matrix


class TestMixedOperandGuards:
    def test_add_rejects_vector_plus_matrix(self, operands):
        package, vector, matrix = operands
        with pytest.raises(DDError):
            package.add(vector, matrix)
        with pytest.raises(DDError):
            package.add(matrix, vector)

    def test_kron_rejects_mixed_kinds(self, operands):
        package, vector, matrix = operands
        with pytest.raises(DDError):
            package.kron(vector, matrix)
        with pytest.raises(DDError):
            package.kron(matrix, vector)

    def test_kron_with_scalar_still_works(self, operands):
        from repro.dd.edge import ONE_EDGE

        package, vector, matrix = operands
        assert not package.kron(vector, ONE_EDGE).is_zero
        assert not package.kron(matrix, ONE_EDGE).is_zero

    def test_inner_product_rejects_matrices(self, operands):
        package, vector, matrix = operands
        with pytest.raises(DDError):
            package.inner_product(vector, matrix)
        with pytest.raises(DDError):
            package.inner_product(matrix, matrix)

    def test_adjoint_rejects_vectors(self, operands):
        package, vector, __ = operands
        with pytest.raises(DDError):
            package.adjoint(vector)

    def test_multiply_rejects_vector_as_operation(self, operands):
        package, vector, __ = operands
        with pytest.raises(DDError):
            package.multiply(vector, vector)
