"""Unit tests for the service layer (transport-free, workers inline)."""

import json

import pytest

from repro.errors import SessionLimitError, SessionNotFoundError
from repro.obs.metrics import MetricsRegistry
from repro.qc import library
from repro.service import (
    Request,
    ResultCache,
    ServiceApp,
    ServiceConfig,
    SessionStore,
)


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        hit, _ = cache.get("k")
        assert not hit
        cache.put("k", {"x": 1})
        hit, value = cache.get("k")
        assert hit and value == {"x": 1}

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a")[0]     # refresh "a": now "b" is the LRU
        cache.put("c", 3)
        assert len(cache) == 2
        assert not cache.get("b")[0]
        assert cache.get("a")[0] and cache.get("c")[0]

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert not cache.get("a")[0]

    def test_metrics_recorded(self):
        registry = MetricsRegistry(enabled=True)
        cache = ResultCache(capacity=1, registry=registry)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        assert registry.get("service_cache_hits_total").value == 1
        assert registry.get("service_cache_misses_total").value == 1
        assert registry.get("service_cache_evictions_total").value == 1
        assert registry.get("service_cache_entries").value == 1


# ----------------------------------------------------------------------
# session store
# ----------------------------------------------------------------------
class TestSessionStore:
    def test_create_get_remove(self):
        store = SessionStore(max_sessions=4)
        handle = store.create("simulation", lambda: object())
        assert store.get(handle.session_id) is handle
        store.remove(handle.session_id)
        with pytest.raises(SessionNotFoundError):
            store.get(handle.session_id)

    def test_unknown_id_raises(self):
        store = SessionStore()
        with pytest.raises(SessionNotFoundError):
            store.get("nope")
        with pytest.raises(SessionNotFoundError):
            store.remove("nope")

    def test_ttl_expiry(self):
        now = [0.0]
        store = SessionStore(max_sessions=4, ttl=10.0, clock=lambda: now[0])
        handle = store.create("simulation", lambda: object())
        now[0] = 5.0
        assert store.get(handle.session_id) is handle  # touch resets idle
        now[0] = 16.0
        with pytest.raises(SessionNotFoundError):
            store.get(handle.session_id)
        assert len(store) == 0

    def test_lru_eviction_when_full(self):
        now = [0.0]
        store = SessionStore(max_sessions=2, ttl=1000.0, clock=lambda: now[0])
        first = store.create("simulation", lambda: object())
        now[0] = 1.0
        second = store.create("simulation", lambda: object())
        now[0] = 2.0
        store.get(first.session_id)  # make *second* the LRU
        now[0] = 3.0
        store.create("simulation", lambda: object())
        assert store.get(first.session_id) is first
        with pytest.raises(SessionNotFoundError):
            store.get(second.session_id)

    def test_backpressure_when_all_busy(self):
        import threading

        store = SessionStore(max_sessions=1, ttl=1000.0)
        handle = store.create("simulation", lambda: object())
        # A busy session's lock is held by *another* handler thread (the
        # session lock is an RLock, so holding it here would not block us).
        held = threading.Event()
        release = threading.Event()

        def hold():
            with handle.lock:
                held.set()
                release.wait(5.0)

        thread = threading.Thread(target=hold)
        thread.start()
        try:
            assert held.wait(5.0)
            with pytest.raises(SessionLimitError):
                store.create("simulation", lambda: object())
        finally:
            release.set()
            thread.join()
        # once released it can be evicted
        store.create("simulation", lambda: object())
        with pytest.raises(SessionNotFoundError):
            store.get(handle.session_id)


# ----------------------------------------------------------------------
# the app (inline workers: no subprocesses in unit tests)
# ----------------------------------------------------------------------
@pytest.fixture
def app():
    application = ServiceApp(
        ServiceConfig(workers=0, max_body_bytes=64 * 1024),
        registry=MetricsRegistry(enabled=True),
    )
    yield application
    application.close()


def _post(app, path, payload):
    return app.handle(Request("POST", path, body=json.dumps(payload).encode()))


def _json(response):
    return json.loads(response.body.decode())


QFT = library.qft(3).to_qasm()
QFT_COMPILED = library.qft_compiled(3).to_qasm()


class TestInfrastructureEndpoints:
    def test_healthz(self, app):
        response = app.handle(Request("GET", "/healthz"))
        assert response.status == 200
        assert _json(response)["status"] == "ok"

    def test_metrics_exposes_request_counters(self, app):
        app.handle(Request("GET", "/healthz"))
        body = app.handle(Request("GET", "/metrics")).body.decode()
        assert 'service_requests_total{endpoint="/healthz"' in body
        assert "service_cache_misses_total" in body

    def test_report(self, app):
        response = app.handle(Request("GET", "/report"))
        assert response.status == 200
        assert "run report" in response.body.decode()

    def test_unknown_route_404(self, app):
        response = app.handle(Request("GET", "/nope"))
        assert response.status == 404
        assert _json(response)["error"]["status"] == 404

    def test_oversized_body_413(self, app):
        big = {"kind": "simulation", "qasm": "x" * (64 * 1024 + 1)}
        response = _post(app, "/sessions", big)
        assert response.status == 413


class TestSimulationSessions:
    def test_full_session_lifecycle(self, app):
        response = _post(app, "/sessions", {"kind": "simulation", "qasm": QFT})
        assert response.status == 201
        status = _json(response)
        sid = status["session_id"]
        assert status["total"] == 7 and status["position"] == 0

        response = _post(app, f"/sessions/{sid}/step", {"action": "forward"})
        assert _json(response)["position"] == 1

        response = _post(app, f"/sessions/{sid}/step", {"action": "to_end"})
        status = _json(response)
        assert status["at_end"] and status["node_count"] == 3

        response = _post(app, f"/sessions/{sid}/step", {"action": "backward",
                                                        "count": 2})
        assert _json(response)["position"] == 5

        svg = app.handle(Request("GET", f"/sessions/{sid}/svg"))
        assert svg.status == 200 and svg.body.startswith(b"<svg")
        text = app.handle(Request("GET", f"/sessions/{sid}/text"))
        assert text.status == 200

        response = app.handle(Request("DELETE", f"/sessions/{sid}"))
        assert response.status == 200
        assert app.handle(Request("GET", f"/sessions/{sid}")).status == 404

    def test_measurement_dialog_over_http(self, app):
        qasm = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n"
        sid = _json(_post(app, "/sessions", {"kind": "simulation",
                                             "qasm": qasm}))["session_id"]
        status = _json(_post(app, f"/sessions/{sid}/step", {"action": "forward"}))
        dialog = status["pending_dialog"]
        assert dialog["kind"] == "measure"
        assert dialog["p0"] == pytest.approx(0.5)
        status = _json(_post(app, f"/sessions/{sid}/step",
                             {"action": "forward", "outcome": 1}))
        assert status["classical_bits"] == [1]

    def test_counts_endpoint(self, app):
        sid = _json(_post(app, "/sessions", {"kind": "simulation",
                                             "qasm": QFT}))["session_id"]
        _post(app, f"/sessions/{sid}/step", {"action": "to_end"})
        response = app.handle(Request(
            "GET", f"/sessions/{sid}/counts", query={"shots": "64", "seed": "1"}
        ))
        counts = _json(response)["counts"]
        assert sum(counts.values()) == 64

    def test_step_past_end_409(self, app):
        qasm = "OPENQASM 2.0;\nqreg q[1];\n"
        sid = _json(_post(app, "/sessions", {"kind": "simulation",
                                             "qasm": qasm}))["session_id"]
        response = _post(app, f"/sessions/{sid}/step", {"action": "forward"})
        assert response.status == 409
        assert _json(response)["error"]["type"] == "SimulationError"

    def test_multi_step_past_end_is_atomic(self, app):
        # Regression: a forward batch that overruns the final operation must
        # fail *before* executing any step, not leave the session stranded
        # somewhere in the middle of a half-applied batch.
        sid = _json(_post(app, "/sessions", {"kind": "simulation",
                                             "qasm": QFT}))["session_id"]
        _post(app, f"/sessions/{sid}/step", {"action": "forward", "count": 3})
        response = _post(app, f"/sessions/{sid}/step",
                         {"action": "forward", "count": 99})
        assert response.status == 409
        status = _json(app.handle(Request("GET", f"/sessions/{sid}")))
        assert status["position"] == 3  # unchanged — still resumable
        # ... and the session still steps normally afterwards.
        after = _json(_post(app, f"/sessions/{sid}/step",
                            {"action": "forward"}))
        assert after["position"] == 4

    def test_multi_step_backward_past_start_is_atomic(self, app):
        sid = _json(_post(app, "/sessions", {"kind": "simulation",
                                             "qasm": QFT}))["session_id"]
        _post(app, f"/sessions/{sid}/step", {"action": "forward", "count": 2})
        response = _post(app, f"/sessions/{sid}/step",
                         {"action": "backward", "count": 5})
        assert response.status == 409
        status = _json(app.handle(Request("GET", f"/sessions/{sid}")))
        assert status["position"] == 2

    def test_outcome_answers_only_the_pending_dialog(self, app):
        # Regression: a forced outcome in a multi-step batch used to be
        # replayed onto *every* measurement in the batch.  Here the second
        # measurement is of a deterministic |1> qubit: forcing outcome=0
        # onto it would fail (or corrupt the state), so the batch only
        # succeeds if the outcome answers just the first (pending) dialog.
        qasm = (
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
            "qreg q[2];\ncreg c[2];\n"
            "h q[0];\nmeasure q[0] -> c[0];\n"
            "x q[1];\nmeasure q[1] -> c[1];\n"
        )
        sid = _json(_post(app, "/sessions", {"kind": "simulation",
                                             "qasm": qasm}))["session_id"]
        _post(app, f"/sessions/{sid}/step", {"action": "forward"})  # H
        status = _json(_post(app, f"/sessions/{sid}/step",
                             {"action": "forward", "count": 3, "outcome": 0}))
        assert status["at_end"]
        assert status["classical_bits"] == [0, 1]

    def test_bad_inputs_400(self, app):
        assert _post(app, "/sessions", {"kind": "simulation"}).status == 400
        assert _post(app, "/sessions", {"kind": "wat", "qasm": QFT}).status == 400
        assert _post(app, "/sessions", {"kind": "simulation",
                                        "qasm": "bork"}).status == 400
        assert app.handle(Request(
            "POST", "/sessions", body=b"{not json"
        )).status == 400
        sid = _json(_post(app, "/sessions", {"kind": "simulation",
                                             "qasm": QFT}))["session_id"]
        assert _post(app, f"/sessions/{sid}/step",
                     {"action": "sideways"}).status == 400
        assert _post(app, f"/sessions/{sid}/step",
                     {"action": "forward", "outcome": 7}).status == 400


class TestVerificationSessions:
    def test_compilation_flow_peak_nine(self, app):
        response = _post(app, "/sessions", {
            "kind": "verification", "left": QFT, "right": QFT_COMPILED,
        })
        assert response.status == 201
        sid = _json(response)["session_id"]
        status = _json(_post(app, f"/sessions/{sid}/step",
                             {"action": "compilation_flow"}))
        assert status["finished"]
        assert status["is_identity"]
        assert status["peak_node_count"] == 9  # paper Ex. 12

    def test_manual_left_right_steps(self, app):
        sid = _json(_post(app, "/sessions", {
            "kind": "verification", "left": QFT, "right": QFT_COMPILED,
        }))["session_id"]
        status = _json(_post(app, f"/sessions/{sid}/step", {"action": "left"}))
        assert status["left_applied"] == 1
        status = _json(_post(app, f"/sessions/{sid}/step",
                             {"action": "right_to_barrier"}))
        assert status["right_applied"] > 0

    def test_mismatched_qubits_409(self, app):
        other = library.qft(2).to_qasm()
        response = _post(app, "/sessions", {
            "kind": "verification", "left": QFT, "right": other,
        })
        assert response.status == 409
        assert _json(response)["error"]["type"] == "VerificationError"


class TestBatchEndpoints:
    def test_simulate_and_cache(self, app):
        first = _json(_post(app, "/simulate", {"qasm": QFT, "shots": 32}))
        assert first["cached"] is False
        assert first["nodes"] == 3
        assert sum(first["counts"].values()) == 32
        second = _json(_post(app, "/simulate", {"qasm": QFT, "shots": 32}))
        assert second["cached"] is True
        assert second["counts"] == first["counts"]

    def test_cache_keyed_on_digest_not_text(self, app):
        renamed = library.qft(3).copy(name="other").to_qasm()
        _post(app, "/simulate", {"qasm": QFT})
        second = _json(_post(app, "/simulate", {"qasm": renamed}))
        assert second["cached"] is True

    def test_cache_respects_parameters(self, app):
        _post(app, "/simulate", {"qasm": QFT, "shots": 8})
        other = _json(_post(app, "/simulate", {"qasm": QFT, "shots": 16}))
        assert other["cached"] is False

    def test_cache_key_folds_seed(self, app):
        # Regression: two /simulate calls that differ only in a parameter
        # must not collide on one cached result.
        _post(app, "/simulate", {"qasm": QFT, "shots": 8, "seed": 1})
        other = _json(_post(app, "/simulate",
                            {"qasm": QFT, "shots": 8, "seed": 2}))
        assert other["cached"] is False

    def test_cache_key_folds_backend_options(self, app):
        # matrix_path selects a different backend (gate-DD multiply instead
        # of the direct apply kernels); same circuit, different key.
        kernels = _json(_post(app, "/simulate", {"qasm": QFT, "shots": 16}))
        matrix = _json(_post(app, "/simulate",
                             {"qasm": QFT, "shots": 16, "matrix_path": True}))
        assert matrix["cached"] is False
        # ... but the two paths must agree on the result.
        assert matrix["nodes"] == kernels["nodes"]
        assert matrix["counts"] == kernels["counts"]
        again = _json(_post(app, "/simulate",
                            {"qasm": QFT, "shots": 16, "matrix_path": True}))
        assert again["cached"] is True

    def test_matrix_path_must_be_boolean(self, app):
        response = _post(app, "/simulate",
                         {"qasm": QFT, "matrix_path": "yes"})
        assert response.status == 400

    def test_verify_strategies_and_cache(self, app):
        payload = {"left": QFT, "right": QFT_COMPILED,
                   "strategy": "compilation-flow"}
        first = _json(_post(app, "/verify", payload))
        assert first["equivalent"] and first["peak_nodes"] == 9
        assert first["cached"] is False
        assert _json(_post(app, "/verify", payload))["cached"] is True
        construct = _json(_post(app, "/verify", {
            "left": QFT, "right": QFT_COMPILED, "strategy": "construct",
        }))
        assert construct["equivalent"]

    def test_verify_unknown_strategy_400(self, app):
        response = _post(app, "/verify", {"left": QFT, "right": QFT,
                                          "strategy": "telepathy"})
        assert response.status == 400

    def test_verify_inequivalent(self, app):
        wrong = library.qft(3)
        wrong.x(0)
        result = _json(_post(app, "/verify", {"left": QFT,
                                              "right": wrong.to_qasm()}))
        assert result["equivalent"] is False


class TestGovernancePressure:
    def test_503_with_retry_after_under_table_pressure(self, app):
        import time as _time

        # Simulate a worker that just reported HARD pressure: the pool
        # sheds batch load for the cooldown window.
        app.pool._reject_until = _time.monotonic() + 30.0
        response = _post(app, "/simulate", {"qasm": QFT})
        assert response.status == 503
        assert _json(response)["error"]["type"] == "TablePressureError"
        retry_after = response.headers.get("Retry-After")
        assert retry_after is not None and int(retry_after) >= 1
        # Interactive sessions are unaffected — only batch work is shed.
        assert _post(app, "/sessions",
                     {"kind": "simulation", "qasm": QFT}).status == 201
        # Once the window closes, batch requests flow again.
        app.pool._reject_until = 0.0
        assert _post(app, "/simulate", {"qasm": QFT}).status == 200

    def test_healthz_reports_governance(self, app):
        _post(app, "/simulate", {"qasm": QFT})  # produce one worker report
        body = _json(app.handle(Request("GET", "/healthz")))
        assert body["status"] == "ok"
        governance = body["governance"]
        assert governance["pressure"] == 0
        assert governance["watchdog_kills"] == 0
        assert governance["nodes"] >= 0

    def test_metrics_expose_gc_and_watchdog_counters(self, app):
        _post(app, "/simulate", {"qasm": QFT})
        body = app.handle(Request("GET", "/metrics")).body.decode()
        assert "service_watchdog_kills_total" in body
        assert "dd_gc_runs_total" in body


class TestRateLimit:
    def test_429_when_bucket_empty(self):
        app = ServiceApp(
            ServiceConfig(workers=0, rate_limit=0.001, rate_burst=2),
            registry=MetricsRegistry(enabled=True),
        )
        try:
            codes = [
                app.handle(Request("GET", "/sessions")).status
                for _ in range(4)
            ]
            assert codes[:2] == [200, 200]
            assert 429 in codes[2:]
            # health/metrics bypass the limiter
            assert app.handle(Request("GET", "/healthz")).status == 200
        finally:
            app.close()
