"""Unit tests for circuit-to-DD building (cross-checked against numpy)."""

import numpy as np
import pytest

from repro.errors import CircuitError, GateError
from repro.qc import QuantumCircuit, library
from repro.qc.dd_builder import apply_gate, circuit_to_dd, gate_to_dd
from repro.qc.operations import GateOp
from repro.simulation import build_unitary
from repro.simulation.statevector import gate_unitary


class TestGateToDD:
    @pytest.mark.parametrize(
        "op",
        [
            GateOp(gate="h", targets=(1,)),
            GateOp(gate="x", targets=(0,), controls=(2,)),
            GateOp(gate="p", params=(0.7,), targets=(2,), controls=(0,)),
            GateOp(gate="x", targets=(1,), negative_controls=(0, 2)),
            GateOp(gate="swap", targets=(2, 0)),
            GateOp(gate="iswap", targets=(1, 0)),
            GateOp(gate="u3", params=(0.1, 0.2, 0.3), targets=(0,)),
        ],
    )
    def test_matches_dense_builder(self, package, op):
        dd = gate_to_dd(package, op, 3)
        assert np.allclose(package.to_matrix(dd, 3), gate_unitary(op, 3))

    def test_controlled_swap(self, package):
        op = GateOp(gate="swap", targets=(1, 0), controls=(2,))
        dd = gate_to_dd(package, op, 3)
        expected = np.eye(8)
        # Swap q1,q0 when q2 == 1: basis 5 (101) <-> 6 (110).
        expected[[5, 6]] = expected[[6, 5]]
        assert np.allclose(package.to_matrix(dd, 3), expected)

    def test_controlled_swap_matches_dense(self, package):
        op = GateOp(gate="swap", targets=(2, 1), controls=(0,))
        dd = gate_to_dd(package, op, 3)
        assert np.allclose(package.to_matrix(dd, 3), gate_unitary(op, 3))

    def test_controlled_iswap_rejected(self, package):
        op = GateOp(gate="iswap", targets=(1, 0), controls=(2,))
        with pytest.raises(GateError):
            gate_to_dd(package, op, 3)

    def test_condition_ignored_in_dd(self, package):
        plain = GateOp(gate="x", targets=(0,))
        conditioned = GateOp(gate="x", targets=(0,), condition=((0,), 1))
        a = gate_to_dd(package, plain, 2)
        b = gate_to_dd(package, conditioned, 2)
        assert a.node is b.node


class TestCircuitToDD:
    @pytest.mark.parametrize(
        "factory",
        [
            library.bell_pair,
            lambda: library.ghz_state(3),
            lambda: library.qft(3),
            lambda: library.qft_compiled(2),
            lambda: library.random_circuit(3, 30, seed=11),
        ],
    )
    def test_matches_dense_unitary(self, package, factory):
        circuit = factory()
        dd = circuit_to_dd(package, circuit)
        assert np.allclose(
            package.to_matrix(dd, circuit.num_qubits), build_unitary(circuit)
        )

    def test_barriers_skipped(self, package):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(0)
        dd = circuit_to_dd(package, circuit)
        identity = package.identity(2)
        assert dd.node is identity.node

    def test_nonunitary_rejected(self, package):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit_to_dd(package, circuit)

    def test_initial_operand(self, package):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        start = circuit_to_dd(package, circuit)
        extended = circuit_to_dd(package, circuit, initial=start)
        identity = package.identity(2)
        assert extended.node is identity.node  # X then X


class TestApplyGate:
    def test_apply_matches_matrix_action(self, package, rng):
        from tests.conftest import random_state

        vector = random_state(3, rng)
        state = package.from_state_vector(vector)
        op = GateOp(gate="h", targets=(1,))
        result = apply_gate(package, state, op, 3)
        assert np.allclose(
            package.to_vector(result, 3), gate_unitary(op, 3) @ vector
        )
