"""Property tests for the pooled storage primitives (ISSUE 7, satellite 2).

Seeded-random workloads against :class:`~repro.dd.pool.NodePool`,
:class:`~repro.dd.pool.PooledUniqueTable` and
:class:`~repro.dd.pool.WeightPool` directly — below the engine — so the
invariants the sanitizer assumes (probe-chain integrity, free-list
exactness, canonicalization idempotence) are pinned down at the layer
that provides them:

* insert/lookup round-trips: every inserted key is found again at the
  same node index, absent keys report absent;
* probe-chain integrity after a GC-style ``rebuild``: every survivor is
  reachable through its own probe chain, every freed node is gone;
* free-list reuse never aliases live nodes;
* canonicalization is idempotent and index-stable under batched
  (``lookup_many``) and scalar (``lookup``/``lookup_index``) paths.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.dd.pool import (
    FREED_VAR,
    NodePool,
    PooledUniqueTable,
    TERMINAL_INDEX,
    WeightPool,
)

SEEDS = [0, 1, 7, 42, 12345]


def _random_key(rng, pool, live):
    """A random (var, successors, weights) key over existing live nodes."""
    var = rng.randrange(0, 8)
    successors = tuple(
        rng.choice(live) if live and rng.random() < 0.7 else TERMINAL_INDEX
        for _ in range(pool.arity)
    )
    weights = tuple(rng.randrange(0, 16) for _ in range(pool.arity))
    return var, successors, weights


def _build(rng, arity, inserts):
    """Grow a pool/table pair by hash-consing random keys."""
    pool = NodePool(arity)
    table = PooledUniqueTable(pool)
    order = itertools.count(1)
    by_key = {}
    live = []
    for _ in range(inserts):
        var, successors, weights = _random_key(rng, pool, live)
        slot, found = table.find_slot(var, successors, weights)
        if found >= 0:
            assert by_key[(var, successors, weights)] == found
            continue
        index = pool.alloc(var, successors, weights, next(order))
        table.insert_at(slot, index)
        by_key[(var, successors, weights)] = index
        live.append(index)
    return pool, table, by_key


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("arity", [2, 4])
def test_insert_lookup_roundtrip(seed, arity):
    rng = random.Random(seed)
    pool, table, by_key = _build(rng, arity, 400)
    assert len(table) == len(by_key) == pool.live_count
    for (var, successors, weights), index in by_key.items():
        slot, found = table.find_slot(var, successors, weights)
        assert found == index
    # Absent keys stay absent (var=99 was never inserted).
    _slot, found = table.find_slot(99, (TERMINAL_INDEX,) * arity, (1,) * arity)
    assert found == -1


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("arity", [2, 4])
def test_probe_chains_survive_rebuild(seed, arity):
    """After a GC-style free + rebuild, every survivor is reachable through
    its own probe chain and every freed key is gone — no tombstones."""
    rng = random.Random(seed)
    pool, table, by_key = _build(rng, arity, 400)
    victims = {
        index for index in pool.live_indices() if rng.random() < 0.5
    }
    # Survivors must not reference victims, or the dangling-successor
    # invariant the sanitizer enforces would not hold after the free;
    # transitively grow the victim set (children of survivors survive).
    changed = True
    while changed:
        changed = False
        for index in pool.live_indices():
            if index in victims:
                continue
            if any(
                succ in victims
                for succ, _w in pool.edges_of(index)
                if succ >= 0
            ):
                victims.add(index)
                changed = True
    for index in victims:
        pool.free(index)
    survivors = sorted(set(pool.live_indices()))
    table.rebuild(survivors)
    assert len(table) == len(survivors)
    for index in survivors:
        assert table.contains_index(index)
    for (var, successors, weights), index in by_key.items():
        _slot, found = table.find_slot(var, successors, weights)
        if index in victims:
            assert found == -1, "freed key still reachable"
        else:
            assert found == index


@pytest.mark.parametrize("seed", SEEDS)
def test_free_list_reuse_never_aliases_live_nodes(seed):
    rng = random.Random(seed)
    pool = NodePool(2)
    order = itertools.count(1)
    live = set()
    for _ in range(600):
        if live and rng.random() < 0.4:
            victim = rng.choice(sorted(live))
            pool.free(victim)
            live.remove(victim)
            assert pool.var[victim] == FREED_VAR
            assert not pool.is_live(victim)
        else:
            index = pool.alloc(
                rng.randrange(0, 8),
                [TERMINAL_INDEX, TERMINAL_INDEX],
                [rng.randrange(0, 8), rng.randrange(0, 8)],
                next(order),
            )
            # A recycled slot must come off the free-list, never collide
            # with a live index.
            assert index not in live
            assert pool.is_live(index)
            live.add(index)
        free = set(pool.free_list)
        assert len(free) == len(pool.free_list), "free-list duplicate"
        assert not (free & live), "free-list aliases a live node"
        assert pool.live_count == len(live)
    # Order stamps are never reused, even through heavy slot recycling.
    stamps = [pool.order[index] for index in sorted(live)]
    assert len(stamps) == len(set(stamps))


@pytest.mark.parametrize("seed", SEEDS)
def test_canonicalization_idempotent_and_index_stable(seed):
    """lookup/lookup_index/lookup_many agree, and canonicalizing a
    canonical value is the identity (same representative, same index)."""
    rng = random.Random(seed)
    table = WeightPool()
    values = [
        complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(200)
    ]
    # Perturbations inside the tolerance ball of an earlier value.
    values += [
        v + complex(rng.uniform(-0.3, 0.3) * table.tolerance, 0)
        for v in rng.sample(values, 50)
    ]
    batched = table.lookup_many(values)
    for value, index in zip(values, batched):
        rep = table.value(index)
        assert table.lookup(value) == rep
        assert table.lookup_index(value) == index
        # Idempotence: a representative canonicalizes to itself.
        assert table.lookup(rep) == rep
        assert table.lookup_index(rep) == index
    # A second batched pass returns identical indices.
    assert table.lookup_many(values) == batched


@pytest.mark.parametrize("seed", SEEDS)
def test_weight_sweep_keeps_seeds_and_marked(seed):
    rng = random.Random(seed)
    table = WeightPool()
    indices = table.lookup_many(
        [complex(rng.uniform(-2, 2), rng.uniform(-2, 2)) for _ in range(100)]
    )
    non_seed = sorted(
        {i for i in indices if i >= table._seed_count}
    )
    keep = set(rng.sample(non_seed, len(non_seed) // 2))
    values_kept = {table.value(i) for i in keep}
    freed = table.sweep_indices(keep)
    assert freed == len(non_seed) - len(keep)
    for index in range(table._seed_count):
        assert table.index_is_live(index)
    for index in keep:
        assert table.index_is_live(index)
        assert table.value(index) in values_kept
    for index in non_seed:
        if index not in keep:
            assert not table.index_is_live(index)
            assert index in table._free
    # Freed indices are recycled before the slot array grows.
    before = table.slot_count
    table.lookup(complex(3.25, -4.75))
    assert table.slot_count == before


def test_unique_table_grows_and_shrinks():
    """Load factor stays below 2/3 through growth; rebuild shrinks the
    capacity back toward the survivor count (never below initial)."""
    pool = NodePool(2)
    table = PooledUniqueTable(pool)
    order = itertools.count(1)
    initial = table.capacity
    for var in range(2000):
        slot, found = table.find_slot(var, (-1, -1), (1, 1))
        assert found == -1
        table.insert_at(slot, pool.alloc(var, [-1, -1], [1, 1], next(order)))
        assert len(table) * 3 < table.capacity * 2 + 3
    assert table.capacity > initial
    survivors = pool.live_indices()[:10]
    for index in pool.live_indices()[10:]:
        pool.free(index)
    table.rebuild(survivors)
    assert table.capacity == initial
    assert len(table) == 10
    for index in survivors:
        assert table.contains_index(index)
