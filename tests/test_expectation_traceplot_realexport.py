"""Unit tests for Pauli expectations, trace charts and the .real writer."""

import math
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.dd.expectation import (
    expectation_hamiltonian,
    expectation_pauli,
    pauli_string_dd,
)
from repro.errors import CircuitError, DDError, VisualizationError
from repro.qc import QuantumCircuit, library
from repro.qc.real_exporter import circuit_to_real
from repro.qc.real_format import parse_real
from repro.simulation import build_unitary, DDSimulator
from repro.vis.trace_plot import alternating_trace_svg, trace_svg
from tests.conftest import random_state

INV_SQRT2 = 1.0 / math.sqrt(2.0)


class TestPauliStringDD:
    def test_matrices(self, package):
        x = np.array([[0, 1], [1, 0]])
        z = np.diag([1, -1])
        dd = pauli_string_dd(package, "XZ")
        assert np.allclose(package.to_matrix(dd, 2), np.kron(x, z))

    def test_identity_string(self, package):
        dd = pauli_string_dd(package, "III")
        assert dd.node is package.identity(3).node

    def test_invalid_string(self, package):
        with pytest.raises(DDError):
            pauli_string_dd(package, "XQ")
        with pytest.raises(DDError):
            pauli_string_dd(package, "")

    def test_lowercase_accepted(self, package):
        assert pauli_string_dd(package, "xyz").node is pauli_string_dd(
            package, "XYZ"
        ).node


class TestExpectation:
    def test_z_on_basis_states(self, package):
        zero = package.zero_state(1)
        one = package.basis_state(1, 1)
        assert expectation_pauli(package, zero, "Z") == pytest.approx(1.0)
        assert expectation_pauli(package, one, "Z") == pytest.approx(-1.0)

    def test_x_on_plus(self, package):
        plus = package.from_state_vector([INV_SQRT2, INV_SQRT2])
        assert expectation_pauli(package, plus, "X") == pytest.approx(1.0)
        assert expectation_pauli(package, plus, "Z") == pytest.approx(0.0)

    def test_bell_correlations(self, package):
        """The Bell state has <ZZ> = <XX> = 1 and <ZI> = 0 (paper Ex. 2's
        perfect correlation, stated as expectation values)."""
        bell = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
        assert expectation_pauli(package, bell, "ZZ") == pytest.approx(1.0)
        assert expectation_pauli(package, bell, "XX") == pytest.approx(1.0)
        assert expectation_pauli(package, bell, "ZI") == pytest.approx(0.0)
        assert expectation_pauli(package, bell, "YY") == pytest.approx(-1.0)

    def test_matches_dense_computation(self, package, rng):
        vector = random_state(3, rng)
        state = package.from_state_vector(vector)
        paulis = {"I": np.eye(2), "X": [[0, 1], [1, 0]],
                  "Y": [[0, -1j], [1j, 0]], "Z": np.diag([1, -1])}
        for string in ("XYZ", "ZIX", "YYI"):
            dense = np.ones((1, 1))
            for character in string:
                dense = np.kron(dense, np.asarray(paulis[character]))
            expected = np.vdot(vector, dense @ vector).real
            assert expectation_pauli(package, state, string) == pytest.approx(
                expected, abs=1e-9
            )

    def test_length_mismatch(self, package):
        with pytest.raises(DDError):
            expectation_pauli(package, package.zero_state(2), "XXX")

    def test_hamiltonian(self, package):
        """Ising-type energy of the GHZ state: ZZ terms give +1 each."""
        simulator = DDSimulator(library.ghz_state(3), package=package)
        simulator.run_all()
        energy = expectation_hamiltonian(
            package,
            simulator.state,
            {"ZZI": -1.0, "IZZ": -1.0, "XII": -0.5},
        )
        assert energy == pytest.approx(-2.0)

    def test_hamiltonian_pairs_input(self, package):
        zero = package.zero_state(1)
        energy = expectation_hamiltonian(package, zero, [("Z", 2.0), ("X", 1.0)])
        assert energy == pytest.approx(2.0)

    def test_empty_hamiltonian(self, package):
        with pytest.raises(DDError):
            expectation_hamiltonian(package, package.zero_state(1), {})


class TestTracePlot:
    def test_valid_svg(self):
        svg = trace_svg([3, 5, 9, 7, 3], title="demo")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "demo" in svg

    def test_marker_per_point(self):
        svg = trace_svg([3, 5, 9])
        assert svg.count("<circle") == 3

    def test_sides_color_markers_and_legend(self):
        svg = trace_svg([3, 5, 4], sides=["G", "G'", "G"])
        assert svg.count('fill="#1f77b4"') >= 2  # two G markers + legend
        assert svg.count('fill="#d62728"') >= 1
        assert "from G" in svg

    def test_reference_line(self):
        svg = trace_svg([3, 5], reference=("monolithic peak", 21))
        assert "monolithic peak (21)" in svg
        assert "stroke-dasharray" in svg

    def test_requires_points(self):
        with pytest.raises(VisualizationError):
            trace_svg([])

    def test_sides_length_checked(self):
        with pytest.raises(VisualizationError):
            trace_svg([1, 2], sides=["G"])

    def test_from_alternating_result(self):
        from repro.verification import (
            ApplicationStrategy,
            check_equivalence_alternating,
        )

        result = check_equivalence_alternating(
            library.qft(3), library.qft_compiled(3),
            ApplicationStrategy.COMPILATION_FLOW,
        )
        svg = alternating_trace_svg(result)
        ET.fromstring(svg)
        assert svg.count("<circle") >= len(result.trace)


class TestRealExport:
    def test_toffoli_roundtrip(self):
        circuit = QuantumCircuit(3)
        circuit.x(2).cx(2, 1).ccx(2, 1, 0)
        text = circuit_to_real(circuit)
        assert "t1 x0" in text
        assert "t2 x0 x1" in text
        assert "t3 x0 x1 x2" in text
        reparsed = parse_real(text)
        assert np.allclose(build_unitary(reparsed), build_unitary(circuit))

    def test_negative_controls(self):
        circuit = QuantumCircuit(2)
        circuit.gate("x", [0], negative_controls=[1])
        text = circuit_to_real(circuit)
        assert "t2 -x0 x1" in text
        reparsed = parse_real(text)
        assert np.allclose(build_unitary(reparsed), build_unitary(circuit))

    def test_fredkin_and_v(self):
        circuit = QuantumCircuit(3)
        circuit.cswap(2, 1, 0)
        circuit.gate("sx", [0], controls=[1])
        circuit.gate("sxdg", [0])
        text = circuit_to_real(circuit)
        assert "f3" in text and "v " in text and "v+" in text
        reparsed = parse_real(text)
        assert np.allclose(build_unitary(reparsed), build_unitary(circuit))

    def test_barriers_skipped(self):
        circuit = QuantumCircuit(1)
        circuit.barrier().x(0)
        assert "barrier" not in circuit_to_real(circuit)

    def test_unsupported_gate_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        with pytest.raises(CircuitError):
            circuit_to_real(circuit)

    def test_measure_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit_to_real(circuit)

    def test_random_reversible_roundtrip(self, rng):
        circuit = QuantumCircuit(4)
        for _ in range(25):
            kind = rng.integers(3)
            lines = list(rng.permutation(4))
            if kind == 0:
                circuit.x(int(lines[0]))
            elif kind == 1:
                circuit.cx(int(lines[0]), int(lines[1]))
            else:
                circuit.ccx(int(lines[0]), int(lines[1]), int(lines[2]))
        reparsed = parse_real(circuit_to_real(circuit))
        assert np.allclose(build_unitary(reparsed), build_unitary(circuit))
