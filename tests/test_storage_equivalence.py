"""Storage-backend equivalence: pooled must be indistinguishable from object.

The pooled backend (ISSUE 7) re-implements the hot core on flat integer
arrays, but it mirrors the object backend's arithmetic operation for
operation — so everything observable must match **exactly**, not merely
within tolerance:

* the golden paper payload (``tests/data/golden_paper.json``) byte for
  byte, on both gate-application paths;
* node counts and serialized DD structure (canonical weights included)
  for representative circuits;
* the canonical weight set each backend's complex table converges to;
* matrix-path products and functionality DDs, not just state simulation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dd.package import DDPackage
from repro.dd.serialize import dd_to_dict
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation.simulator import DDSimulator

from tests.test_paper_examples_golden import (
    GOLDEN_PATH,
    _serialize,
    compute_payload,
)

STORAGES = ["object", "pooled"]

_CIRCUITS = {
    "bell": library.bell_pair,
    "ghz5": lambda: library.ghz_state(5),
    "qft4": lambda: library.qft(4),
    "grover3": lambda: library.grover(3, marked=5),
}


def _run(name: str, storage: str, use_apply_kernels: bool = True):
    simulator = DDSimulator(
        _CIRCUITS[name](), use_apply_kernels=use_apply_kernels, storage=storage
    )
    simulator.run_all()
    return simulator


@pytest.mark.parametrize("use_apply_kernels", [True, False],
                         ids=["apply-kernels", "matrix-path"])
@pytest.mark.parametrize("storage", STORAGES)
def test_golden_payload_reproduced_by_both_backends(storage, use_apply_kernels):
    """Every (storage, path) combination reproduces the golden file
    byte for byte — four independent executions, one truth."""
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert _serialize(compute_payload(use_apply_kernels, storage=storage)) == golden


@pytest.mark.parametrize("name", sorted(_CIRCUITS))
def test_statevectors_bit_exact_across_backends(name):
    object_sim = _run(name, "object")
    pooled_sim = _run(name, "pooled")
    assert np.array_equal(object_sim.statevector(), pooled_sim.statevector())
    assert object_sim.node_count() == pooled_sim.node_count()
    assert object_sim.peak_node_count == pooled_sim.peak_node_count


@pytest.mark.parametrize("name", sorted(_CIRCUITS))
def test_serialized_structure_identical(name):
    """The serialized DDs — topology plus canonical weights — agree
    exactly, so equality extends below the statevector to every edge."""
    serialized = {}
    for storage in STORAGES:
        simulator = _run(name, storage)
        serialized[storage] = json.dumps(
            dd_to_dict(simulator.package, simulator.state), sort_keys=True
        )
    assert serialized["object"] == serialized["pooled"]


@pytest.mark.parametrize("name", ["qft4", "ghz5"])
def test_functionality_dds_identical(name):
    """Matrix DDs (the 4-successor pool) agree structurally as well."""
    serialized = {}
    for storage in STORAGES:
        package = DDPackage(storage=storage)
        functionality = circuit_to_dd(package, _CIRCUITS[name]())
        serialized[storage] = json.dumps(
            dd_to_dict(package, functionality), sort_keys=True
        )
    assert serialized["object"] == serialized["pooled"]


def test_canonical_weight_sets_identical():
    """Both complex tables converge to the same canonical representatives
    (same values, bit for bit) after identical workloads."""
    reprs = {}
    for storage in STORAGES:
        simulator = _run("qft4", storage)
        table = simulator.package.complex_table
        reprs[storage] = sorted(
            (value.real, value.imag) for _key, value in table.entries()
        )
    assert reprs["object"] == reprs["pooled"]


def test_unique_table_entry_counts_match():
    for name in sorted(_CIRCUITS):
        object_sim = _run(name, "object")
        pooled_sim = _run(name, "pooled")
        for stat in ("unique_vector",):
            assert (
                object_sim.package.stats()[stat]["entries"]
                == pooled_sim.package.stats()[stat]["entries"]
            ), f"{name}: {stat} diverges between backends"


def test_pooled_survives_gc_with_bit_exact_state():
    """A forced HARD collection on the pooled backend must not perturb a
    single amplitude of the live state."""
    object_sim = _run("qft4", "object")
    pooled_sim = _run("qft4", "pooled")
    before = pooled_sim.statevector()
    stats = pooled_sim.package.gc(force=True)
    assert stats.nodes_after <= stats.nodes_before
    after = pooled_sim.statevector()
    assert np.array_equal(before, after)
    assert np.array_equal(after, object_sim.statevector())


def test_env_variable_selects_default_backend(monkeypatch):
    monkeypatch.setenv("REPRO_DD_STORAGE", "object")
    assert DDPackage().storage == "object"
    monkeypatch.setenv("REPRO_DD_STORAGE", "pooled")
    assert DDPackage().storage == "pooled"
    monkeypatch.delenv("REPRO_DD_STORAGE")
    assert DDPackage().storage == "pooled"
