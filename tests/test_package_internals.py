"""Edge-case and lifecycle tests for the DD package internals."""

import gc

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.qc import library
from repro.qc.dd_builder import gate_to_dd
from repro.qc.operations import GateOp
from repro.simulation import DDSimulator


class TestGarbageCollection:
    def test_dropped_diagrams_are_reclaimed(self):
        # Weak-reference reclamation is an object-storage behaviour: nodes
        # die with their last Python reference.
        package = DDPackage(storage="object")
        state = package.zero_state(20)
        package.clear_caches()
        stats = package.stats()
        assert stats["unique_vector"]["entries"] == 20
        del state
        gc.collect()
        assert package.stats()["unique_vector"]["entries"] == 0

    def test_dropped_diagrams_are_reclaimed_pooled(self):
        # Pooled slots are not weakly held — an explicit mark-and-sweep
        # (the governor's HARD tier) reclaims unreachable indices instead.
        package = DDPackage(storage="pooled")
        state = package.zero_state(20)
        package.clear_caches()
        assert package.stats()["unique_vector"]["entries"] == 20
        del state
        gc.collect()
        package.gc(force=True)
        assert package.stats()["unique_vector"]["entries"] == 0

    def test_shared_nodes_survive_partial_release(self):
        package = DDPackage()
        bell = package.from_state_vector([2**-0.5, 0, 0, 2**-0.5])
        other = package.from_state_vector([2**-0.5, 0, 0, 2**-0.5])
        del other
        gc.collect()
        # The shared nodes stay because `bell` still references them.
        assert package.node_count(bell) == 3
        assert np.allclose(
            package.to_vector(bell, 2), [2**-0.5, 0, 0, 2**-0.5]
        )

    def test_history_keeps_simulator_states_alive(self):
        simulator = DDSimulator(library.ghz_state(6))
        simulator.run_all()
        gc.collect()
        # Every historic state remains reconstructible.
        simulator.rewind()
        assert np.allclose(simulator.statevector(), np.eye(64)[0])


class TestCacheEviction:
    def test_compute_table_eviction_does_not_break_results(self):
        package = DDPackage(cache_capacity=16)  # absurdly small
        simulator = DDSimulator(library.qft(4), package=package)
        simulator.run_all()
        assert np.allclose(
            np.abs(simulator.statevector()) ** 2, np.full(16, 1 / 16)
        )

    def test_gate_dd_cache_hits(self):
        package = DDPackage()
        operation = GateOp(gate="x", targets=(0,), controls=(1,))
        first = gate_to_dd(package, operation, 3)
        second = gate_to_dd(package, operation, 3)
        assert first == second
        assert len(package._gate_dd_cache) == 1

    def test_gate_dd_cache_distinguishes_width(self):
        package = DDPackage()
        operation = GateOp(gate="h", targets=(0,))
        a = gate_to_dd(package, operation, 2)
        b = gate_to_dd(package, operation, 3)
        assert a.node.var != b.node.var


class TestNumericEdgeCases:
    def test_deep_circuit_stays_canonical(self):
        """1000 self-inverting gate pairs end exactly at |0...0>."""
        from repro.qc import QuantumCircuit

        circuit = QuantumCircuit(3)
        for _ in range(500):
            circuit.h(0).h(0)
        package = DDPackage()
        simulator = DDSimulator(circuit, package=package)
        simulator.run_all()
        zero = package.zero_state(3)
        assert simulator.state.node is zero.node
        assert abs(simulator.state.weight - 1.0) < 1e-9

    def test_accumulated_rotations_close_the_circle(self):
        """360 one-degree RZ rotations return (up to phase) to the start."""
        import math

        from repro.qc import QuantumCircuit

        circuit = QuantumCircuit(1)
        step = 2.0 * math.pi / 360.0
        for _ in range(360):
            circuit.rz(step, 0)
        package = DDPackage()
        simulator = DDSimulator(circuit, package=package)
        simulator.run_all()
        # Started at |0>; RZ only adds phases, so |<0|psi>| must be 1.
        fidelity = package.fidelity(simulator.state, package.zero_state(1))
        assert fidelity == pytest.approx(1.0, abs=1e-9)

    def test_tiny_amplitudes_survive_roundtrip(self):
        package = DDPackage()
        small = 1e-6
        big = np.sqrt(1.0 - small**2)
        state = package.from_state_vector([big, small])
        vector = package.to_vector(state, 1)
        assert vector[1] == pytest.approx(small, rel=1e-6)

    def test_subtolerance_amplitudes_are_flushed(self):
        package = DDPackage()
        state = package.from_state_vector([1.0, 1e-14])
        assert package.amplitude(state, 1) == 0.0
        assert state.node is package.zero_state(1).node
