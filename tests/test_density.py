"""Unit tests for the density-matrix layer (exact mixed-state handling)."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage, density
from repro.errors import DDError, InvalidStateError
from tests.conftest import random_state, random_unitary

INV_SQRT2 = 1.0 / math.sqrt(2.0)


def _bell_rho(package):
    state = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
    return density.density_from_state(package, state)


class TestConstruction:
    def test_outer_product_matches_numpy(self, package, rng):
        ket = random_state(3, rng)
        bra = random_state(3, rng)
        result = density.outer_product(
            package,
            package.from_state_vector(ket),
            package.from_state_vector(bra),
        )
        assert np.allclose(package.to_matrix(result, 3), np.outer(ket, bra.conj()))

    def test_density_from_state(self, package, rng):
        vector = random_state(2, rng)
        rho = density.density_from_statevector(package, vector)
        assert np.allclose(
            package.to_matrix(rho, 2), np.outer(vector, vector.conj())
        )

    def test_density_is_hermitian(self, package, rng):
        rho = density.density_from_statevector(package, random_state(3, rng))
        dense = package.to_matrix(rho, 3)
        assert np.allclose(dense, dense.conj().T)

    def test_size_mismatch_rejected(self, package):
        with pytest.raises(DDError):
            density.outer_product(
                package, package.zero_state(2), package.zero_state(3)
            )

    def test_maximally_mixed(self, package):
        rho = density.maximally_mixed(package, 2)
        assert np.allclose(package.to_matrix(rho, 2), np.eye(4) / 4)


class TestTraces:
    def test_trace_of_pure_state_is_one(self, package, rng):
        rho = density.density_from_statevector(package, random_state(3, rng))
        assert abs(density.trace(package, rho) - 1.0) < 1e-9

    def test_trace_matches_numpy(self, package, rng):
        matrix = random_unitary(2, rng)
        operation = package.from_matrix(matrix)
        assert abs(density.trace(package, operation) - np.trace(matrix)) < 1e-9

    def test_partial_trace_bell_gives_maximally_mixed(self, package):
        """Entanglement: the reduced single-qubit state of the Bell pair
        is I/2 (cf. paper Ex. 1: the parts cannot be described alone)."""
        rho = _bell_rho(package)
        for traced in ([0], [1]):
            reduced = package.to_matrix(
                density.partial_trace(package, rho, traced), 1
            )
            assert np.allclose(reduced, np.eye(2) / 2)

    def test_partial_trace_product_state(self, package, rng):
        a = random_state(1, rng)
        b = random_state(1, rng)
        state = package.from_state_vector(np.kron(a, b))
        rho = density.density_from_state(package, state)
        reduced_top = package.to_matrix(
            density.partial_trace(package, rho, [0]), 1
        )
        assert np.allclose(reduced_top, np.outer(a, a.conj()), atol=1e-9)
        reduced_bottom = package.to_matrix(
            density.partial_trace(package, rho, [1]), 1
        )
        assert np.allclose(reduced_bottom, np.outer(b, b.conj()), atol=1e-9)

    def test_partial_trace_matches_numpy(self, package, rng):
        vector = random_state(3, rng)
        rho = density.density_from_statevector(package, vector)
        # Trace out the middle qubit (q1 = axes 1 and 4 in big-endian).
        expected = np.trace(
            np.outer(vector, vector.conj()).reshape(2, 2, 2, 2, 2, 2),
            axis1=1, axis2=4,
        ).reshape(4, 4)
        reduced = package.to_matrix(density.partial_trace(package, rho, [1]), 2)
        assert np.allclose(reduced, expected, atol=1e-9)

    def test_trace_out_everything_gives_trace(self, package, rng):
        rho = density.density_from_statevector(package, random_state(2, rng))
        scalar = density.partial_trace(package, rho, [0, 1])
        assert scalar.node.is_terminal
        assert abs(scalar.weight - 1.0) < 1e-9

    def test_partial_trace_out_of_range(self, package):
        rho = _bell_rho(package)
        with pytest.raises(DDError):
            density.partial_trace(package, rho, [5])

    def test_purity(self, package, rng):
        pure = density.density_from_statevector(package, random_state(2, rng))
        assert abs(density.purity(package, pure) - 1.0) < 1e-9
        mixed = density.maximally_mixed(package, 2)
        assert abs(density.purity(package, mixed) - 0.25) < 1e-9


class TestEvolutionAndMeasurement:
    def test_apply_unitary_matches_numpy(self, package, rng):
        vector = random_state(2, rng)
        matrix = random_unitary(2, rng)
        rho = density.density_from_statevector(package, vector)
        evolved = density.apply_unitary(package, rho, package.from_matrix(matrix))
        expected = matrix @ np.outer(vector, vector.conj()) @ matrix.conj().T
        assert np.allclose(package.to_matrix(evolved, 2), expected)

    def test_measure_probabilities_match_vector_dd(self, package, rng):
        from repro.dd import sampling

        vector = random_state(3, rng)
        state = package.from_state_vector(vector)
        rho = density.density_from_state(package, state)
        for qubit in range(3):
            expected = sampling.qubit_probabilities(package, state, qubit)
            measured = density.measure_probabilities(package, rho, qubit)
            assert abs(measured[0] - expected[0]) < 1e-9

    def test_collapse(self, package):
        rho = _bell_rho(package)
        probability, collapsed = density.collapse(package, rho, 0, 1)
        assert abs(probability - 0.5) < 1e-12
        expected = np.zeros((4, 4))
        expected[3, 3] = 1.0
        assert np.allclose(package.to_matrix(collapsed, 2), expected)

    def test_collapse_impossible_outcome(self, package):
        rho = density.density_from_state(package, package.zero_state(2))
        with pytest.raises(InvalidStateError):
            density.collapse(package, rho, 0, 1)

    def test_collapse_invalid_outcome(self, package):
        with pytest.raises(DDError):
            density.collapse(package, _bell_rho(package), 0, 2)

    def test_exact_reset_produces_mixed_state(self, package):
        """Paper Sec. IV-B: reset maps pure states to mixed states."""
        rho = _bell_rho(package)
        after = density.reset(package, rho, 0)
        expected = np.zeros((4, 4))
        expected[0, 0] = 0.5  # |00><00|
        expected[2, 2] = 0.5  # |10><10|
        assert np.allclose(package.to_matrix(after, 2), expected)
        assert abs(density.purity(package, after) - 0.5) < 1e-9

    def test_reset_preserves_trace(self, package, rng):
        rho = density.density_from_statevector(package, random_state(3, rng))
        after = density.reset(package, rho, 1)
        assert abs(density.trace(package, after) - 1.0) < 1e-9

    def test_reset_of_unentangled_zero_qubit_is_noop(self, package):
        state = package.zero_state(2)
        rho = density.density_from_state(package, state)
        after = density.reset(package, rho, 0)
        assert after.node is rho.node

    def test_fidelity_with_state(self, package, rng):
        vector = random_state(2, rng)
        state = package.from_state_vector(vector)
        rho = density.density_from_state(package, state)
        assert abs(density.fidelity_with_state(package, rho, state) - 1.0) < 1e-9
        other = package.basis_state(2, 0)
        expected = abs(vector[0]) ** 2
        assert abs(
            density.fidelity_with_state(package, rho, other) - expected
        ) < 1e-9
