"""Tests for approximate (per-step pruned) simulation."""

import numpy as np
import pytest

from repro.qc import QuantumCircuit, library
from repro.simulation import DDSimulator


class TestApproximateSimulation:
    def test_exact_by_default(self):
        simulator = DDSimulator(library.qft(4))
        simulator.run_all()
        assert simulator.approximation_fidelity == 1.0

    def test_structured_circuit_unaffected(self):
        simulator = DDSimulator(
            library.ghz_state(8), approximation_threshold=1e-4
        )
        simulator.run_all()
        assert simulator.approximation_fidelity == pytest.approx(1.0)
        assert simulator.node_count() == 15

    def test_fidelity_estimate_tracks_truth(self):
        circuit = library.random_circuit(7, 60, seed=11)
        exact = DDSimulator(circuit)
        exact.run_all()
        approx = DDSimulator(circuit, approximation_threshold=1e-4)
        approx.run_all()
        true_fidelity = (
            abs(np.vdot(exact.statevector(), approx.statevector())) ** 2
        )
        assert approx.approximation_fidelity < 1.0 or true_fidelity > 1 - 1e-9
        # The running product is a good estimate of the true fidelity.
        assert approx.approximation_fidelity == pytest.approx(
            true_fidelity, abs=0.02
        )

    def test_state_stays_normalized(self):
        circuit = library.random_circuit(6, 40, seed=2)
        approx = DDSimulator(circuit, approximation_threshold=1e-3)
        approx.run_all()
        assert abs(
            approx.package.norm_squared(approx.state) - 1.0
        ) < 1e-9

    def test_fidelity_rolls_back_with_history(self):
        circuit = library.random_circuit(6, 40, seed=2)
        approx = DDSimulator(circuit, approximation_threshold=1e-3)
        approx.run_all()
        final = approx.approximation_fidelity
        approx.step_backward()
        approx.step_backward()
        rolled = approx.approximation_fidelity
        assert rolled >= final
        # Stepping forward again restores the same value.
        approx.step_forward()
        approx.step_forward()
        assert approx.approximation_fidelity == pytest.approx(final)

    def test_aggressive_threshold_shrinks_diagram(self):
        circuit = library.random_circuit(8, 60, seed=4)
        exact = DDSimulator(circuit)
        exact.run_all()
        approx = DDSimulator(circuit, approximation_threshold=5e-3)
        approx.run_all()
        assert approx.node_count() <= exact.node_count()
        assert approx.approximation_fidelity < 1.0

    def test_measurements_work_on_pruned_state(self):
        circuit = QuantumCircuit(5, 5)
        for qubit in range(5):
            circuit.h(qubit)
        circuit.rz(0.3, 0).cx(0, 1).ry(0.2, 2)
        circuit.measure_all()
        approx = DDSimulator(
            circuit, seed=0, approximation_threshold=1e-6
        )
        approx.run_all()
        assert all(bit in (0, 1) for bit in approx.classical_bits)
