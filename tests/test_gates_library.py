"""Unit tests for the standard gate library."""

import cmath
import math

import numpy as np
import pytest

from repro.errors import GateError
from repro.qc.gates import (
    gate_matrix,
    gate_signature,
    inverse_gate,
    is_known_gate,
    is_unitary,
)

ALL_FIXED = [
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
    "swap", "iswap", "iswapdg",
]
PARAMETRIZED = [
    ("rx", 1), ("ry", 1), ("rz", 1), ("p", 1), ("u1", 1), ("u2", 2),
    ("u3", 3), ("u", 3),
]


class TestMatrices:
    @pytest.mark.parametrize("name", ALL_FIXED)
    def test_fixed_gates_are_unitary(self, name):
        assert is_unitary(gate_matrix(name))

    @pytest.mark.parametrize("name,num_params", PARAMETRIZED)
    def test_parametrized_gates_are_unitary(self, name, num_params):
        params = [0.3 * (k + 1) for k in range(num_params)]
        assert is_unitary(gate_matrix(name, params))

    def test_hadamard_values(self):
        """Paper Fig. 1(a)."""
        inv = 1.0 / math.sqrt(2.0)
        assert np.allclose(gate_matrix("h"), [[inv, inv], [inv, -inv]])

    def test_pauli_algebra(self):
        x, y, z = gate_matrix("x"), gate_matrix("y"), gate_matrix("z")
        assert np.allclose(x @ y, 1j * z)

    def test_s_is_p_half_pi(self):
        """Paper Ex. 10: S = P(pi/2)."""
        assert np.allclose(gate_matrix("s"), gate_matrix("p", [math.pi / 2]))

    def test_t_is_p_quarter_pi(self):
        """Paper Ex. 10: T = P(pi/4)."""
        assert np.allclose(gate_matrix("t"), gate_matrix("p", [math.pi / 4]))

    def test_s_squared_is_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_squared_is_s(self):
        t = gate_matrix("t")
        assert np.allclose(t @ t, gate_matrix("s"))

    def test_sx_squared_is_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_u3_special_cases(self):
        assert np.allclose(
            gate_matrix("u3", [math.pi / 2, 0.0, math.pi]), gate_matrix("h")
        )
        assert np.allclose(gate_matrix("u3", [math.pi, 0.0, math.pi]),
                           gate_matrix("x"))

    def test_u2_is_u3_half_pi(self):
        phi, lam = 0.4, 1.1
        assert np.allclose(
            gate_matrix("u2", [phi, lam]),
            gate_matrix("u3", [math.pi / 2, phi, lam]),
        )

    def test_rz_phase_convention(self):
        theta = 0.7
        rz = gate_matrix("rz", [theta])
        assert cmath.isclose(rz[0, 0], cmath.exp(-0.5j * theta))
        # rz differs from p by a global phase only.
        p = gate_matrix("p", [theta])
        assert np.allclose(rz * cmath.exp(0.5j * theta), p)

    def test_swap_matrix(self):
        expected = np.eye(4)[:, [0, 2, 1, 3]]
        assert np.allclose(gate_matrix("swap"), expected)

    def test_wrong_param_count(self):
        with pytest.raises(GateError):
            gate_matrix("rx")
        with pytest.raises(GateError):
            gate_matrix("h", [0.1])

    def test_unknown_gate(self):
        with pytest.raises(GateError):
            gate_matrix("nope")

    def test_matrix_is_a_copy(self):
        first = gate_matrix("x")
        first[0, 0] = 99.0
        assert gate_matrix("x")[0, 0] == 0.0


class TestSignatures:
    def test_signature_contents(self):
        assert gate_signature("u3") == (3, 1)
        assert gate_signature("swap") == (0, 2)

    def test_is_known_gate(self):
        assert is_known_gate("h")
        assert not is_known_gate("hh")


class TestInverses:
    @pytest.mark.parametrize("name", ALL_FIXED)
    def test_fixed_inverse_is_inverse(self, name):
        inverse_name, params = inverse_gate(name)
        product = gate_matrix(inverse_name, params) @ gate_matrix(name)
        assert np.allclose(product, np.eye(product.shape[0]))

    @pytest.mark.parametrize("name,num_params", PARAMETRIZED)
    def test_parametrized_inverse_is_inverse(self, name, num_params):
        params = [0.37 * (k + 1) for k in range(num_params)]
        inverse_name, inverse_params = inverse_gate(name, params)
        product = gate_matrix(inverse_name, inverse_params) @ gate_matrix(name, params)
        assert np.allclose(product, np.eye(2))

    def test_unknown_gate_inverse(self):
        with pytest.raises(GateError):
            inverse_gate("nope")


class TestIsUnitary:
    def test_rejects_non_square(self):
        assert not is_unitary(np.zeros((2, 3)))

    def test_rejects_singular(self):
        assert not is_unitary(np.zeros((2, 2)))

    def test_accepts_phase(self):
        assert is_unitary(np.eye(2) * cmath.exp(0.3j))
