"""Unit tests for DOT, SVG, layout and ASCII rendering (paper Sec. IV-A)."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.dd.edge import ZERO_EDGE
from repro.errors import VisualizationError
from repro.qc import QuantumCircuit, library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import DDSimulator
from repro.vis import DDStyle, RenderMode, dd_to_dot, dd_to_svg, dd_to_text
from repro.vis.layout import compute_layout
from repro.vis.svg import color_wheel_svg

INV_SQRT2 = 1.0 / math.sqrt(2.0)


def _bell(package):
    return package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])


class TestDot:
    def test_classic_structure(self, package):
        dot = dd_to_dot(package, _bell(package))
        assert dot.startswith("digraph")
        assert dot.count('label="q0"') == 2  # two q0 nodes (Fig. 2(a))
        assert dot.count('label="q1"') == 1
        assert 'label="1"' in dot  # terminal box

    def test_classic_dashes_nonunit_edges(self, package):
        dot = dd_to_dot(package, _bell(package))
        assert "style=dashed" in dot
        assert "1/√2" in dot

    def test_labels_can_be_disabled(self, package):
        dot = dd_to_dot(package, _bell(package), DDStyle.colored())
        assert "1/√2" not in dot
        assert "color=" in dot
        assert "penwidth=" in dot

    def test_retracted_zero_stubs(self, package):
        dot = dd_to_dot(package, package.zero_state(2))
        assert "stub" not in dot

    def test_explicit_zero_stubs_in_modern_mode(self, package):
        dot = dd_to_dot(package, package.zero_state(2), DDStyle.modern())
        assert "stub0" in dot

    def test_modern_mode_uses_records(self, package):
        dot = dd_to_dot(package, _bell(package), DDStyle.modern())
        assert "Mrecord" in dot
        assert "<p0>" in dot

    def test_matrix_dd(self, package):
        operation = circuit_to_dd(package, library.bell_pair())
        dot = dd_to_dot(package, operation)
        assert dot.count("->") >= 6

    def test_custom_qubit_labels(self, package):
        dot = dd_to_dot(package, _bell(package), qubit_labels=["bottom", "top"])
        assert 'label="top"' in dot
        assert 'label="bottom"' in dot

    def test_zero_dd_rejected(self, package):
        with pytest.raises(VisualizationError):
            dd_to_dot(package, ZERO_EDGE)

    def test_deterministic_output(self, package):
        a = dd_to_dot(package, _bell(package))
        b = dd_to_dot(package, _bell(package))
        assert a == b


class TestLayout:
    def test_levels_map_to_rows(self, package):
        state = _bell(package)
        layout = compute_layout(state)
        assert len(layout.layers) == 2
        y_top = layout.positions[layout.layers[0][0]][1]
        y_bottom = layout.positions[layout.layers[1][0]][1]
        assert y_top < y_bottom < layout.terminal[1]

    def test_all_nodes_positioned(self, package):
        operation = circuit_to_dd(package, library.qft(3))
        layout = compute_layout(operation)
        assert len(layout.positions) == package.node_count(operation)

    def test_nodes_within_bounds(self, package):
        operation = circuit_to_dd(package, library.qft(3))
        layout = compute_layout(operation)
        for x, y in layout.positions.values():
            assert 0 <= x <= layout.width
            assert 0 <= y <= layout.height

    def test_no_overlap_within_level(self, package):
        operation = circuit_to_dd(package, library.qft(3))
        layout = compute_layout(operation)
        for layer in layout.layers:
            xs = [layout.positions[node][0] for node in layer]
            assert len(set(xs)) == len(xs)

    def test_zero_rejected(self):
        with pytest.raises(VisualizationError):
            compute_layout(ZERO_EDGE)


class TestSvg:
    @pytest.mark.parametrize(
        "style", [DDStyle.classic(), DDStyle.colored(), DDStyle.modern()]
    )
    def test_valid_xml(self, package, style):
        svg = dd_to_svg(package, _bell(package), style)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_classic_contains_weight_labels(self, package):
        svg = dd_to_svg(package, _bell(package))
        assert "1/√2" in svg

    def test_colored_has_no_labels_but_colors(self, package):
        svg = dd_to_svg(package, _bell(package), DDStyle.colored())
        assert "1/√2" not in svg
        assert 'stroke="#ff0000"' in svg  # positive-real weights -> red

    def test_node_count_matches_circles(self, package):
        state = _bell(package)
        svg = dd_to_svg(package, state)
        # 3 DD nodes drawn as circles plus small stub dots; count text labels.
        assert svg.count(">q0<") == 2
        assert svg.count(">q1<") == 1

    def test_title_rendered(self, package):
        svg = dd_to_svg(package, _bell(package), title="Bell state")
        assert "Bell state" in svg

    def test_matrix_dd_renders(self, package):
        operation = circuit_to_dd(package, library.qft(3))
        svg = dd_to_svg(package, operation, DDStyle.colored())
        ET.fromstring(svg)
        assert svg.count("<line") > 20

    def test_zero_rejected(self, package):
        with pytest.raises(VisualizationError):
            dd_to_svg(package, ZERO_EDGE)

    def test_color_wheel_is_valid_svg(self):
        svg = color_wheel_svg()
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert svg.count("<polygon") >= 72
        for label in (">1<", ">i<", ">-1<", ">-i<"):
            assert label in svg


class TestAsciiArt:
    def test_dd_text_shows_sharing(self, package):
        # |+>|+> shares the bottom node between both branches.
        state = package.from_state_vector([0.5, 0.5, 0.5, 0.5])
        text = dd_to_text(package, state)
        assert "(shared)" in text

    def test_dd_text_zero(self, package):
        assert dd_to_text(package, ZERO_EDGE) == "0"

    def test_dd_text_matrix_slots(self, package):
        operation = circuit_to_dd(package, library.bell_pair())
        text = dd_to_text(package, operation)
        assert "[00]" in text and "[11]" in text

    def test_circuit_text_bell(self):
        from repro.vis import circuit_to_text

        text = circuit_to_text(library.bell_pair())
        lines = text.splitlines()
        assert lines[0].startswith("q1:")
        assert "[H]" in lines[0]
        assert "(+)" in lines[1]
        assert "*" in lines[0]

    def test_circuit_text_specials(self):
        from repro.vis import circuit_to_text

        circuit = QuantumCircuit(2, 1)
        circuit.barrier().measure(0, 0).reset(1).swap(0, 1)
        text = circuit_to_text(circuit)
        assert ":" in text
        assert "M>c0" in text
        assert "|0>" in text
        assert text.count("X") == 2

    def test_circuit_text_wire_count(self):
        from repro.vis import circuit_to_text

        text = circuit_to_text(library.qft(3))
        assert len(text.splitlines()) == 3
