"""Unit tests for hash-consing and memoization tables."""

import gc

import pytest

from repro.dd.compute_table import ComputeTable
from repro.dd.edge import Edge, ONE_EDGE, ZERO_EDGE
from repro.dd.node import VectorNode
from repro.dd.unique_table import UniqueTable


class TestUniqueTable:
    def test_identical_structure_shares_node(self):
        table = UniqueTable(VectorNode)
        a = table.get_or_create(0, (ZERO_EDGE, ONE_EDGE))
        b = table.get_or_create(0, (ZERO_EDGE, ONE_EDGE))
        assert a is b
        assert table.hits == 1
        assert table.misses == 1

    def test_different_levels_are_distinct(self):
        table = UniqueTable(VectorNode)
        a = table.get_or_create(0, (ZERO_EDGE, ONE_EDGE))
        b = table.get_or_create(1, (ZERO_EDGE, ONE_EDGE))
        assert a is not b

    def test_different_weights_are_distinct(self):
        table = UniqueTable(VectorNode)
        a = table.get_or_create(0, (ONE_EDGE, ZERO_EDGE))
        b = table.get_or_create(0, (ONE_EDGE, ONE_EDGE))
        assert a is not b

    def test_weak_references_allow_collection(self):
        table = UniqueTable(VectorNode)
        node = table.get_or_create(0, (ZERO_EDGE, ONE_EDGE))
        assert len(table) == 1
        del node
        gc.collect()
        assert len(table) == 0

    def test_clear(self):
        table = UniqueTable(VectorNode)
        keep = table.get_or_create(0, (ZERO_EDGE, ONE_EDGE))
        table.clear()
        assert len(table) == 0
        again = table.get_or_create(0, (ZERO_EDGE, ONE_EDGE))
        assert again is not keep  # fresh node after clear


class TestComputeTable:
    def test_lookup_miss_then_hit(self):
        cache = ComputeTable("test")
        assert cache.lookup("key") is None
        cache.insert("key", "value")
        assert cache.lookup("key") == "value"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_capacity_clears_when_full(self):
        cache = ComputeTable("test", capacity=2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.insert("c", 3)  # exceeds capacity: table cleared first
        assert cache.lookup("a") is None
        assert cache.lookup("c") == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ComputeTable("test", capacity=0)

    def test_hit_ratio(self):
        cache = ComputeTable("test")
        assert cache.hit_ratio == 0.0
        cache.insert("x", 1)
        cache.lookup("x")
        cache.lookup("y")
        assert 0.0 < cache.hit_ratio < 1.0

    def test_clear(self):
        cache = ComputeTable("test")
        cache.insert("x", 1)
        cache.clear()
        assert len(cache) == 0
