"""Unit tests for DD serialization and the Bloch-sphere views."""

import json
import math
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.dd.edge import ZERO_EDGE
from repro.dd.serialize import dd_from_dict, dd_to_dict, load_dd, save_dd
from repro.errors import DDError, VisualizationError
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import DDSimulator
from repro.vis.bloch import (
    all_bloch_vectors,
    bloch_svg,
    bloch_vector_of_matrix,
    qubit_bloch_vector,
)
from tests.conftest import random_state

INV_SQRT2 = 1.0 / math.sqrt(2.0)


class TestSerialization:
    def test_vector_roundtrip(self, package, rng):
        vector = random_state(3, rng)
        state = package.from_state_vector(vector)
        data = dd_to_dict(package, state)
        fresh = DDPackage()
        rebuilt = dd_from_dict(fresh, data)
        assert np.allclose(fresh.to_vector(rebuilt, 3), vector, atol=1e-9)

    def test_matrix_roundtrip(self, package):
        functionality = circuit_to_dd(package, library.qft(3))
        data = dd_to_dict(package, functionality)
        fresh = DDPackage()
        rebuilt = dd_from_dict(fresh, data)
        assert np.allclose(
            fresh.to_matrix(rebuilt, 3), package.to_matrix(functionality, 3)
        )

    def test_roundtrip_restores_canonicity(self, package):
        """Reloading into the same package yields the identical root node."""
        functionality = circuit_to_dd(package, library.qft(3))
        rebuilt = dd_from_dict(package, dd_to_dict(package, functionality))
        assert rebuilt.node is functionality.node
        assert package.complex_table.approx_equal(
            rebuilt.weight, functionality.weight
        )

    def test_sharing_preserved_in_document(self, package):
        state = package.from_state_vector([0.5, 0.5, 0.5, 0.5])
        data = dd_to_dict(package, state)
        # |+>|+> has one shared bottom node: 2 nodes total in the document.
        assert len(data["nodes"]) == 2

    def test_document_is_json_serializable(self, package):
        state = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
        text = json.dumps(dd_to_dict(package, state))
        rebuilt = dd_from_dict(package, json.loads(text))
        assert rebuilt.node is state.node

    def test_file_roundtrip(self, package, tmp_path):
        state = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
        path = tmp_path / "bell.dd.json"
        save_dd(package, state, str(path))
        rebuilt = load_dd(package, str(path))
        assert rebuilt.node is state.node

    def test_zero_dd_rejected(self, package):
        with pytest.raises(DDError):
            dd_to_dict(package, ZERO_EDGE)

    def test_bad_format_version(self, package):
        with pytest.raises(DDError):
            dd_from_dict(package, {"format": 99})

    def test_bad_kind(self, package):
        with pytest.raises(DDError):
            dd_from_dict(package, {"format": 1, "kind": "tensor", "nodes": []})

    def test_forward_reference_rejected(self, package):
        data = {
            "format": 1,
            "kind": "vector",
            "num_qubits": 1,
            "root": {"node": 0, "weight": [1.0, 0.0]},
            "nodes": [
                {"id": 0, "var": 1,
                 "edges": [{"node": 7, "weight": [1.0, 0.0]}, "zero"]},
            ],
        }
        with pytest.raises(DDError):
            dd_from_dict(package, data)


class TestBlochVectors:
    def test_cardinal_states(self, package):
        cases = [
            ([1.0, 0.0], (0.0, 0.0, 1.0)),
            ([0.0, 1.0], (0.0, 0.0, -1.0)),
            ([INV_SQRT2, INV_SQRT2], (1.0, 0.0, 0.0)),
            ([INV_SQRT2, -INV_SQRT2], (-1.0, 0.0, 0.0)),
            ([INV_SQRT2, 1j * INV_SQRT2], (0.0, 1.0, 0.0)),
            ([INV_SQRT2, -1j * INV_SQRT2], (0.0, -1.0, 0.0)),
        ]
        for amplitudes, expected in cases:
            state = package.from_state_vector(amplitudes)
            vector = qubit_bloch_vector(package, state, 0)
            assert np.allclose(vector, expected, atol=1e-9), amplitudes

    def test_entangled_qubit_has_zero_vector(self, package):
        """Paper Ex. 1: an entangled qubit has no pure local description —
        its Bloch vector vanishes."""
        state = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
        for qubit in (0, 1):
            vector = qubit_bloch_vector(package, state, qubit)
            assert np.allclose(vector, (0, 0, 0), atol=1e-9)

    def test_vector_length_bounded(self, package, rng):
        state = package.from_state_vector(random_state(3, rng))
        for x, y, z in all_bloch_vectors(package, state):
            assert x * x + y * y + z * z <= 1.0 + 1e-9

    def test_density_input(self, package):
        from repro.dd import density

        rho = density.maximally_mixed(package, 1)
        vector = qubit_bloch_vector(package, rho, 0, is_density=True)
        assert np.allclose(vector, (0, 0, 0))

    def test_matrix_shape_validated(self):
        with pytest.raises(VisualizationError):
            bloch_vector_of_matrix(np.eye(4))


class TestBlochSvg:
    def test_valid_xml(self):
        svg = bloch_svg([(0.0, 0.0, 1.0)])
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_sphere_per_vector(self, package):
        simulator = DDSimulator(library.ghz_state(3), package=package)
        simulator.run_all()
        svg = bloch_svg(all_bloch_vectors(package, simulator.state))
        assert svg.count('r="60.0"') == 3

    def test_labels_and_length(self):
        svg = bloch_svg([(1.0, 0.0, 0.0)], labels=["psi"])
        assert "psi" in svg
        assert "|r| = 1.00" in svg

    def test_requires_vectors(self):
        with pytest.raises(VisualizationError):
            bloch_svg([])
