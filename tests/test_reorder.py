"""Property tests for dynamic variable reordering (:mod:`repro.dd.reorder`).

The contract under test: reordering changes *how* a state is stored (the
level-to-qubit map plus the diagram structure), never *what* it stores.
Every adjacent swap and every full sift must preserve the statevector
bit-for-bit through the order-aware ``to_vector``, and must leave the
package in a state the full :class:`~repro.sanitizer.core.DDSanitizer`
sweep certifies clean.  Sifting additionally never increases the live
node count and is idempotent once it has settled at a local minimum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dd.package import DDPackage
from repro.dd.reorder import swap_adjacent
from repro.qc import QuantumCircuit
from repro.qc.library import random_circuit
from repro.sanitizer.core import sanitize_package
from repro.simulation.simulator import DDSimulator

STORAGES = ("pooled", "object")

#: Exact-preservation bound: a reorder goes through the same normalizing
#: constructors and canonical weight table as the original build, so the
#: reconstructed amplitudes match to rounding noise, not merely 1e-10.
EXACT = 1e-12


def _random_state_package(storage: str, num_qubits: int, seed: int):
    """A package holding one random (dense) state rooted via incref."""
    rng = np.random.default_rng(seed)
    vector = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    vector /= np.linalg.norm(vector)
    package = DDPackage(storage=storage, reorder="manual")
    state = package.incref(package.from_state_vector(vector))
    return package, state, vector


def _assert_clean(package, label: str) -> None:
    report = sanitize_package(package)
    assert not report.violations, f"{label}: sanitizer found {report.violations}"


@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("seed", range(5))
def test_every_adjacent_swap_preserves_the_statevector(storage, seed):
    num_qubits = 4
    package, state, vector = _random_state_package(storage, num_qubits, seed)
    # Walk a pseudo-random sequence of adjacent swaps; after each one the
    # order-aware readout must still produce the original amplitudes and
    # the full sanitizer sweep must pass (order map, normalization,
    # unique-table and pool integrity).
    rng = np.random.default_rng(1000 + seed)
    for step in range(12):
        level = int(rng.integers(num_qubits - 1))
        swap_adjacent(package, level)
        state = package._resolve(state)
        got = package.to_vector(state, num_qubits)
        assert np.abs(got - vector).max() < EXACT, (
            f"swap {step} at level {level} changed the state "
            f"(order {package.qubit_order})"
        )
        _assert_clean(package, f"after swap {step} at level {level}")
    assert sorted(package.qubit_order) == list(range(num_qubits))


@pytest.mark.parametrize("storage", STORAGES)
def test_swap_adjacent_is_its_own_inverse(storage):
    package, state, vector = _random_state_package(storage, 3, seed=7)
    order_before = package.qubit_order or [0, 1, 2]
    swap_adjacent(package, 1)
    swap_adjacent(package, 1)
    state = package._resolve(state)
    assert package.qubit_order == order_before
    assert np.abs(package.to_vector(state, 3) - vector).max() < EXACT


@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("seed", range(8))
def test_sift_preserves_the_statevector_and_sanity(storage, seed):
    circuit = random_circuit(4, 16, seed=seed)
    package = DDPackage(storage=storage, reorder="manual")
    simulator = DDSimulator(circuit, package=package)
    simulator.run_all()
    before = simulator.statevector()
    summary = package.reorder()
    after = simulator.statevector()
    assert np.abs(after - before).max() < EXACT, (
        f"sift changed the state (order {summary['order']})"
    )
    _assert_clean(package, f"after sift (seed {seed})")


@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("seed", range(8))
def test_sift_never_increases_the_node_count(storage, seed):
    circuit = random_circuit(5, 20, seed=100 + seed)
    package = DDPackage(storage=storage, reorder="manual")
    simulator = DDSimulator(circuit, package=package)
    simulator.run_all()
    summary = package.reorder()
    assert summary["nodes_after"] <= summary["nodes_before"], summary


@pytest.mark.parametrize("storage", STORAGES)
def test_sifting_is_idempotent_at_a_local_minimum(storage):
    # Blocked bell pairs: partners n/2 apart, exponential under the static
    # order, linear once sifting moves partners adjacent.  After the first
    # sift the diagram sits at a local minimum, so a second sift must keep
    # both the order and the node count (ties settle at the original
    # position by construction).
    num_qubits = 6
    circuit = QuantumCircuit(num_qubits)
    half = num_qubits // 2
    for index in range(half):
        circuit.h(index + half)
        circuit.cx(index + half, index)
    package = DDPackage(storage=storage, reorder="manual")
    simulator = DDSimulator(circuit, package=package)
    simulator.run_all()
    reference = simulator.statevector()

    first = package.reorder()
    assert first["nodes_after"] < first["nodes_before"], (
        "sifting should compact blocked bell pairs"
    )
    second = package.reorder()
    assert second["order"] == first["order"], (
        "second sift moved variables away from the settled local minimum"
    )
    assert second["nodes_after"] == first["nodes_after"]
    assert np.abs(simulator.statevector() - reference).max() < EXACT
    _assert_clean(package, "after repeated sifts")


@pytest.mark.parametrize("storage", STORAGES)
def test_sift_preserves_matrix_roots_under_identity_skipping(storage):
    # A controlled gate rooted in a skipping package: the sift's virtual
    # identity tops and diagonal rows must reproduce the same operator.
    num_qubits = 3
    package = DDPackage(
        storage=storage, reorder="manual", identity_skipping=True,
        use_apply_kernels=False,
    )
    gate = package.incref(
        package.controlled_gate(num_qubits, [[0, 1], [1, 0]], 0, controls=(2,))
    )
    before = package.to_matrix(gate, num_qubits)
    package.reorder()
    gate = package._resolve(gate)
    after = package.to_matrix(gate, num_qubits)
    assert np.abs(after - before).max() < EXACT
    _assert_clean(package, "after sifting a skipping matrix root")


@pytest.mark.parametrize("storage", STORAGES)
def test_fresh_package_load_adopts_a_reordered_document(storage):
    # A document serialized under a sifted order loads into a *fresh*
    # package (which adopts the order), but a package already holding a
    # live root under a different order must refuse it.
    from repro.dd import serialize

    package, state, vector = _random_state_package(storage, 3, seed=11)
    swap_adjacent(package, 0)
    swap_adjacent(package, 1)
    data = serialize.dd_to_dict(package, package._resolve(state), 3)

    fresh = DDPackage(storage=storage)
    loaded = fresh.incref(serialize.dd_from_dict(fresh, data))
    assert fresh.qubit_order == package.qubit_order
    assert np.abs(fresh.to_vector(loaded, 3) - vector).max() < EXACT

    busy = DDPackage(storage=storage)
    # The binding matters: roots are tracked weakly, so an unreferenced
    # edge dies immediately and the package would count as fresh again.
    keep = busy.incref(busy.from_state_vector(np.array([1.0, 0.0])))
    with pytest.raises(Exception, match="does not match"):
        serialize.dd_from_dict(busy, data)
    assert keep is not None


@pytest.mark.parametrize("storage", STORAGES)
def test_stale_edges_resolve_after_multiple_reorders(storage):
    # Edges captured before any reorder keep reading back correctly after
    # several reorders — including when a rebuilt diagram collides with
    # another stale root (two states that are qubit-permutations of each
    # other, the regression behind the unique-table retirement).
    num_qubits = 2
    package = DDPackage(storage=storage, reorder="manual")
    rng = np.random.default_rng(42)
    vector = rng.normal(size=4) + 1j * rng.normal(size=4)
    vector /= np.linalg.norm(vector)
    swapped = vector.reshape(2, 2).T.reshape(4).copy()
    state_a = package.incref(package.from_state_vector(vector))
    state_b = package.incref(package.from_state_vector(swapped))
    for _ in range(3):
        swap_adjacent(package, 0)
        # Resolution must be idempotent: resolving an already-current
        # edge returns it unchanged.
        resolved = package._resolve(state_a)
        assert package._resolve(resolved) == resolved
        assert np.abs(package.to_vector(state_a, 2) - vector).max() < EXACT
        assert np.abs(package.to_vector(state_b, 2) - swapped).max() < EXACT
        _assert_clean(package, "after colliding swap")
