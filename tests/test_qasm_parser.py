"""Unit tests for the OpenQASM 2.0 parser."""

import math

import numpy as np
import pytest

from repro.errors import ParseError
from repro.qc.operations import BarrierOp, GateOp, MeasureOp, ResetOp
from repro.qc.qasm import parse_qasm
from repro.simulation import build_unitary

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestHeader:
    def test_version_required(self):
        with pytest.raises(ParseError):
            parse_qasm("qreg q[1];")

    def test_unsupported_version(self):
        with pytest.raises(ParseError):
            parse_qasm("OPENQASM 3.0;\nqreg q[1];")

    def test_include_other_file_rejected(self):
        with pytest.raises(ParseError):
            parse_qasm('OPENQASM 2.0;\ninclude "other.inc";\nqreg q[1];')

    def test_include_optional(self):
        circuit = parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[0];")
        assert circuit.num_qubits == 1


class TestFileIncludes:
    def test_local_include_spliced(self, tmp_path):
        from repro.qc.qasm import parse_qasm_file

        (tmp_path / "mygates.inc").write_text(
            "gate bell a, b { h a; cx a, b; }\n"
        )
        (tmp_path / "main.qasm").write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            'include "mygates.inc";\nqreg q[2];\nbell q[1], q[0];\n'
        )
        circuit = parse_qasm_file(str(tmp_path / "main.qasm"))
        assert [op.gate for op in circuit] == ["h", "x"]

    def test_nested_includes(self, tmp_path):
        from repro.qc.qasm import parse_qasm_file

        (tmp_path / "inner.inc").write_text("gate foo a { x a; }\n")
        (tmp_path / "outer.inc").write_text(
            'include "inner.inc";\ngate bar a { foo a; foo a; }\n'
        )
        (tmp_path / "main.qasm").write_text(
            'OPENQASM 2.0;\ninclude "outer.inc";\nqreg q[1];\nbar q[0];\n'
        )
        circuit = parse_qasm_file(str(tmp_path / "main.qasm"))
        assert [op.gate for op in circuit] == ["x", "x"]

    def test_include_cycle_detected(self, tmp_path):
        from repro.qc.qasm import parse_qasm_file

        (tmp_path / "a.inc").write_text('include "b.inc";\n')
        (tmp_path / "b.inc").write_text('include "a.inc";\n')
        (tmp_path / "main.qasm").write_text(
            'OPENQASM 2.0;\ninclude "a.inc";\nqreg q[1];\n'
        )
        with pytest.raises(ParseError):
            parse_qasm_file(str(tmp_path / "main.qasm"))

    def test_missing_include_still_errors(self, tmp_path):
        from repro.qc.qasm import parse_qasm_file

        (tmp_path / "main.qasm").write_text(
            'OPENQASM 2.0;\ninclude "nope.inc";\nqreg q[1];\n'
        )
        with pytest.raises(ParseError):
            parse_qasm_file(str(tmp_path / "main.qasm"))


class TestRegisters:
    def test_multiple_qregs_concatenate(self):
        circuit = parse_qasm(HEADER + "qreg a[2]; qreg b[3]; x b[0];")
        assert circuit.num_qubits == 5
        assert circuit[0].targets == (2,)  # b[0] is line 2

    def test_duplicate_register_rejected(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[1]; creg q[1];")

    def test_zero_size_rejected(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[0];")

    def test_no_quantum_register_rejected(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "creg c[2];")

    def test_index_out_of_range(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[2]; x q[2];")


class TestGateApplications:
    def test_primitives_u_and_cx(self):
        circuit = parse_qasm(
            "OPENQASM 2.0;\nqreg q[2];\nU(pi/2,0,pi) q[0];\nCX q[0],q[1];"
        )
        assert circuit[0].gate == "u3"
        assert circuit[1].gate == "x" and circuit[1].controls == (0,)

    def test_qelib_gates_map_natively(self):
        circuit = parse_qasm(
            HEADER + "qreg q[3];\nccx q[0],q[1],q[2];\ncswap q[0],q[1],q[2];"
        )
        assert circuit[0].gate == "x" and set(circuit[0].controls) == {0, 1}
        assert circuit[1].gate == "swap" and circuit[1].controls == (0,)

    def test_register_broadcast(self):
        circuit = parse_qasm(HEADER + "qreg q[3]; h q;")
        assert len(circuit) == 3
        assert {op.targets[0] for op in circuit} == {0, 1, 2}

    def test_two_register_broadcast(self):
        circuit = parse_qasm(HEADER + "qreg a[2]; qreg b[2]; cx a,b;")
        assert len(circuit) == 2
        assert circuit[0].controls == (0,) and circuit[0].targets == (2,)
        assert circuit[1].controls == (1,) and circuit[1].targets == (3,)

    def test_mixed_broadcast(self):
        circuit = parse_qasm(HEADER + "qreg a[1]; qreg b[3]; cx a,b;")
        assert len(circuit) == 3
        assert all(op.controls == (0,) for op in circuit)

    def test_mismatched_broadcast_rejected(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg a[2]; qreg b[3]; cx a,b;")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[1]; frobnicate q[0];")

    def test_wrong_parameter_count(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[1]; rx q[0];")

    def test_wrong_qubit_count(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[2]; h q[0],q[1];")

    def test_rzz_decomposition(self):
        circuit = parse_qasm(HEADER + "qreg q[2]; rzz(0.5) q[0],q[1];")
        gates = [op.gate for op in circuit]
        assert gates == ["x", "u1", "x"]


class TestExpressions:
    def test_pi_arithmetic(self):
        circuit = parse_qasm(HEADER + "qreg q[1]; rz(pi/4 + pi/4) q[0];")
        assert abs(circuit[0].params[0] - math.pi / 2) < 1e-12

    def test_functions(self):
        circuit = parse_qasm(HEADER + "qreg q[1]; rz(cos(0) + sqrt(4)) q[0];")
        assert abs(circuit[0].params[0] - 3.0) < 1e-12

    def test_power_right_associative(self):
        circuit = parse_qasm(HEADER + "qreg q[1]; rz(2^3^2) q[0];")
        assert abs(circuit[0].params[0] - 512.0) < 1e-9

    def test_unary_minus(self):
        circuit = parse_qasm(HEADER + "qreg q[1]; rz(-pi) q[0];")
        assert abs(circuit[0].params[0] + math.pi) < 1e-12

    def test_precedence(self):
        circuit = parse_qasm(HEADER + "qreg q[1]; rz(1 + 2 * 3) q[0];")
        assert abs(circuit[0].params[0] - 7.0) < 1e-12

    def test_unknown_variable_at_top_level(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[1]; rz(theta) q[0];")


class TestGateDefinitions:
    def test_simple_definition(self):
        source = HEADER + (
            "qreg q[2];\n"
            "gate bell a, b { h a; cx a, b; }\n"
            "bell q[1], q[0];\n"
        )
        circuit = parse_qasm(source)
        assert [op.gate for op in circuit] == ["h", "x"]
        assert circuit[0].targets == (1,)
        assert circuit[1].controls == (1,) and circuit[1].targets == (0,)

    def test_parametrized_definition(self):
        source = HEADER + (
            "qreg q[1];\n"
            "gate twist(a) x0 { rz(2*a) x0; rx(a/2) x0; }\n"
            "twist(pi) q[0];\n"
        )
        circuit = parse_qasm(source)
        assert abs(circuit[0].params[0] - 2 * math.pi) < 1e-12
        assert abs(circuit[1].params[0] - math.pi / 2) < 1e-12

    def test_nested_definitions(self):
        source = HEADER + (
            "qreg q[2];\n"
            "gate inner a { h a; }\n"
            "gate outer a, b { inner a; cx a, b; inner b; }\n"
            "outer q[0], q[1];\n"
        )
        circuit = parse_qasm(source)
        assert [op.gate for op in circuit] == ["h", "x", "h"]

    def test_recursive_definition_rejected(self):
        source = HEADER + (
            "qreg q[1];\n"
            "gate loop a { loop a; }\n"
            "loop q[0];\n"
        )
        with pytest.raises(ParseError):
            parse_qasm(source)

    def test_barrier_inside_definition(self):
        source = HEADER + (
            "qreg q[2];\n"
            "gate withbar a, b { h a; barrier a, b; h b; }\n"
            "withbar q[0], q[1];\n"
        )
        circuit = parse_qasm(source)
        assert isinstance(circuit[1], BarrierOp)
        assert circuit[1].lines == (0, 1)

    def test_user_definition_shadows_native(self):
        source = HEADER + (
            "qreg q[1];\n"
            "gate h a { x a; }\n"  # devious but legal
            "h q[0];\n"
        )
        circuit = parse_qasm(source)
        assert circuit[0].gate == "x"

    def test_definition_wrong_arity_on_use(self):
        source = HEADER + (
            "qreg q[2];\n"
            "gate solo a { h a; }\n"
            "solo q[0], q[1];\n"
        )
        with pytest.raises(ParseError):
            parse_qasm(source)

    def test_opaque_gate_application_rejected(self):
        source = HEADER + "qreg q[1];\nopaque magic a;\nmagic q[0];\n"
        with pytest.raises(ParseError):
            parse_qasm(source)


class TestSpecialOperations:
    def test_measure_single(self):
        circuit = parse_qasm(HEADER + "qreg q[1]; creg c[1]; measure q[0] -> c[0];")
        assert isinstance(circuit[0], MeasureOp)

    def test_measure_broadcast(self):
        circuit = parse_qasm(HEADER + "qreg q[3]; creg c[3]; measure q -> c;")
        assert len(circuit) == 3
        assert all(isinstance(op, MeasureOp) for op in circuit)
        assert [(op.qubit, op.clbit) for op in circuit] == [(0, 0), (1, 1), (2, 2)]

    def test_measure_size_mismatch(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[3]; creg c[2]; measure q -> c;")

    def test_reset(self):
        circuit = parse_qasm(HEADER + "qreg q[2]; reset q;")
        assert all(isinstance(op, ResetOp) for op in circuit)
        assert len(circuit) == 2

    def test_barrier(self):
        circuit = parse_qasm(HEADER + "qreg q[3]; barrier q[0], q[2];")
        assert isinstance(circuit[0], BarrierOp)
        assert circuit[0].lines == (0, 2)

    def test_if_condition(self):
        circuit = parse_qasm(
            HEADER + "qreg q[1]; creg c[2]; if (c == 3) x q[0];"
        )
        operation = circuit[0]
        assert isinstance(operation, GateOp)
        assert operation.condition == ((0, 1), 3)

    def test_if_unknown_register(self):
        with pytest.raises(ParseError):
            parse_qasm(HEADER + "qreg q[1]; if (c == 1) x q[0];")

    def test_if_measure_rejected(self):
        with pytest.raises(ParseError):
            parse_qasm(
                HEADER + "qreg q[1]; creg c[1]; if (c == 1) measure q[0] -> c[0];"
            )


class TestSemantics:
    def test_parsed_qft_matches_library(self):
        from repro.qc import library

        source = HEADER + (
            "qreg q[3];\n"
            "h q[2]; cp(pi/2) q[1],q[2]; cp(pi/4) q[0],q[2];\n"
            "h q[1]; cp(pi/2) q[0],q[1];\n"
            "h q[0];\n"
            "swap q[0],q[2];\n"
        )
        circuit = parse_qasm(source)
        assert np.allclose(
            build_unitary(circuit), build_unitary(library.qft(3))
        )
