"""Unit tests for the circuit generators (paper circuits included)."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.errors import CircuitError
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation import DDSimulator, build_unitary

INV_SQRT2 = 1.0 / math.sqrt(2.0)


class TestBell:
    def test_structure_matches_fig1c(self):
        """Paper Fig. 1(c): two qubits, H on q1 then CNOT(q1 -> q0)."""
        circuit = library.bell_pair()
        assert circuit.num_qubits == 2
        assert circuit[0].gate == "h" and circuit[0].targets == (1,)
        assert circuit[1].gate == "x" and circuit[1].controls == (1,)

    def test_produces_bell_state(self):
        simulator = DDSimulator(library.bell_pair())
        simulator.run_all()
        assert np.allclose(
            simulator.statevector(), [INV_SQRT2, 0.0, 0.0, INV_SQRT2]
        )


class TestGHZ:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_state(self, n):
        simulator = DDSimulator(library.ghz_state(n))
        simulator.run_all()
        vector = simulator.statevector()
        assert abs(vector[0] - INV_SQRT2) < 1e-12
        assert abs(vector[-1] - INV_SQRT2) < 1e-12
        assert np.sum(np.abs(vector) > 1e-12) == 2

    def test_ghz_dd_is_linear_size(self):
        simulator = DDSimulator(library.ghz_state(10))
        simulator.run_all()
        # GHZ needs 2 nodes per inner level: 2n - 1 in total.
        assert simulator.node_count() == 2 * 10 - 1

    def test_requires_two_qubits(self):
        with pytest.raises(CircuitError):
            library.ghz_state(1)


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_equal_one_hot_amplitudes(self, n):
        simulator = DDSimulator(library.w_state(n))
        simulator.run_all()
        vector = simulator.statevector()
        expected = 1.0 / math.sqrt(n)
        for index in range(1 << n):
            amplitude = vector[index]
            if bin(index).count("1") == 1:
                assert abs(amplitude - expected) < 1e-9
            else:
                assert abs(amplitude) < 1e-9


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_matches_omega_matrix(self, n):
        """Paper Fig. 5(c): QFT = (1/sqrt(N)) omega^(jk)."""
        assert np.allclose(
            build_unitary(library.qft(n)), library.qft_matrix(n)
        )

    def test_three_qubit_gate_sequence(self):
        """Paper Fig. 5(a): H, CS, CT, H, CS, H, SWAP."""
        circuit = library.qft(3)
        labels = [
            (op.gate, op.params, op.targets, op.controls) for op in circuit
        ]
        assert labels[0] == ("h", (), (2,), ())
        assert labels[1] == ("p", (math.pi / 2,), (2,), (1,))
        assert labels[2] == ("p", (math.pi / 4,), (2,), (0,))
        assert labels[3] == ("h", (), (1,), ())
        assert labels[4] == ("p", (math.pi / 2,), (1,), (0,))
        assert labels[5] == ("h", (), (0,), ())
        assert labels[6][0] == "swap"

    def test_without_swaps(self):
        circuit = library.qft(3, include_swaps=False)
        assert all(op.gate != "swap" for op in circuit)

    def test_compiled_equivalent_to_abstract(self):
        for n in (2, 3, 4):
            assert np.allclose(
                build_unitary(library.qft_compiled(n)),
                build_unitary(library.qft(n)),
            )

    def test_compiled_uses_only_primitive_gates(self):
        """Paper Ex. 10: controlled phases and SWAPs are not native."""
        from repro.qc.operations import BarrierOp, GateOp

        for operation in library.qft_compiled(3):
            if isinstance(operation, BarrierOp):
                continue
            assert isinstance(operation, GateOp)
            assert operation.gate in ("h", "p", "x")
            assert operation.num_controls <= 1
            if operation.gate == "p":
                assert not operation.controls

    def test_compiled_has_barrier_per_abstract_gate(self):
        from repro.qc.operations import BarrierOp

        abstract = library.qft(3)
        compiled = library.qft_compiled(3)
        barriers = sum(1 for op in compiled if isinstance(op, BarrierOp))
        assert barriers == len(abstract)

    def test_qft_functionality_dd_node_count(self, package):
        """Paper Ex. 12: the full 3-qubit QFT matrix DD has 21 nodes."""
        functionality = circuit_to_dd(package, library.qft(3))
        assert package.node_count(functionality) == 21


class TestGrover:
    @pytest.mark.parametrize("marked", [0, 3, 5, 7])
    def test_amplifies_marked_state(self, marked):
        simulator = DDSimulator(library.grover(3, marked), seed=0)
        simulator.run_all()
        probabilities = np.abs(simulator.statevector()) ** 2
        assert int(np.argmax(probabilities)) == marked
        assert probabilities[marked] > 0.8

    def test_invalid_marked(self):
        with pytest.raises(CircuitError):
            library.grover(2, 4)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["1", "101", "1101", "0000"])
    def test_recovers_secret(self, secret):
        simulator = DDSimulator(library.bernstein_vazirani(secret), seed=0)
        simulator.run_all()
        # Big-endian register convention: c_{m-1} ... c_0 spells the secret.
        measured = "".join(str(bit) for bit in reversed(simulator.classical_bits))
        assert measured == secret

    def test_invalid_secret(self):
        with pytest.raises(CircuitError):
            library.bernstein_vazirani("10a")
        with pytest.raises(CircuitError):
            library.bernstein_vazirani("")


class TestRandomCircuit:
    def test_reproducible_with_seed(self):
        a = library.random_circuit(4, 30, seed=5)
        b = library.random_circuit(4, 30, seed=5)
        assert a.operations == b.operations

    def test_depth_parameter(self):
        circuit = library.random_circuit(3, 25, seed=1)
        assert len(circuit) == 25

    def test_invalid_probability(self):
        with pytest.raises(CircuitError):
            library.random_circuit(2, 5, two_qubit_probability=1.5)

    def test_is_simulatable(self):
        circuit = library.random_circuit(3, 20, seed=9)
        simulator = DDSimulator(circuit)
        simulator.run_all()
        assert abs(np.linalg.norm(simulator.statevector()) - 1.0) < 1e-9
