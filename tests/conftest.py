"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

# Deterministic test runs: set-iteration order (and anything else keyed on
# `hash(str)`) must not vary between runs, or seeded fuzz failures stop
# reproducing.  This takes effect for *subprocesses* the suite launches
# (CLI tests, service workers); CI additionally exports it for the parent
# interpreter.
os.environ.setdefault("PYTHONHASHSEED", "0")

import numpy as np
import pytest

from repro.dd import DDPackage, NormalizationScheme


@pytest.fixture
def package() -> DDPackage:
    """A fresh decision-diagram package (L2 vector normalization)."""
    return DDPackage()


@pytest.fixture
def max_package() -> DDPackage:
    """A package using max-magnitude normalization for vectors."""
    return DDPackage(vector_scheme=NormalizationScheme.MAX_MAGNITUDE)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_state(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """A Haar-ish random normalized state vector."""
    size = 1 << num_qubits
    vector = rng.normal(size=size) + 1j * rng.normal(size=size)
    return vector / np.linalg.norm(vector)


def random_unitary(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """A Haar-random unitary via QR decomposition."""
    size = 1 << num_qubits
    matrix = rng.normal(size=(size, size)) + 1j * rng.normal(size=(size, size))
    q, r = np.linalg.qr(matrix)
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))
