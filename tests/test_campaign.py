"""The campaign subsystem: specs, planning, execution, resume, gating, CLI.

The SIGKILL-resume test lives in ``test_campaign_resume.py`` (it drives a
real subprocess); everything here runs inline (``workers = 0``).
"""

import copy
import json
import os

import pytest

from repro.campaign import (
    Manifest,
    deterministic_view,
    diff_artifacts,
    expand_plan,
    load_artifact,
    load_spec,
    parse_spec,
    run_campaign,
)
from repro.campaign.spec import GateSpec
from repro.errors import CampaignError, CampaignSpecError
from repro.tool.cli import main


def make_spec_dict(**overrides):
    """A small, fast, valid campaign document."""
    data = {
        "format": "qdd-campaign-spec-v1",
        "name": "unit",
        "description": "unit-test sweep",
        "cells": {
            "families": [
                {"family": "ghz", "sizes": [2, 3]},
                {"family": "w", "sizes": [3]},
            ],
            "seeds": [0],
            "repetitions": 1,
            "packages": [{"label": "default"}],
        },
        "execution": {"workers": 0, "cell_timeout": 60.0},
        "gates": [{"metric": "final_nodes", "tolerance_pct": 0.0}],
    }
    data.update(overrides)
    return data


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------


class TestSpecValidation:
    def test_valid_spec_parses(self):
        spec = parse_spec(make_spec_dict())
        assert spec.name == "unit"
        assert [f.family for f in spec.families] == ["ghz", "w"]
        assert spec.gates[0].metric == "final_nodes"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown key"):
            parse_spec(make_spec_dict(extra_knob=1))

    def test_unknown_cells_key_rejected(self):
        data = make_spec_dict()
        data["cells"]["typo"] = True
        with pytest.raises(CampaignSpecError, match="typo"):
            parse_spec(data)

    def test_unknown_family_rejected(self):
        data = make_spec_dict()
        data["cells"]["families"] = [{"family": "nope", "sizes": [2]}]
        with pytest.raises(CampaignSpecError, match="unknown family"):
            parse_spec(data)

    def test_unknown_family_key_rejected(self):
        data = make_spec_dict()
        data["cells"]["families"] = [
            {"family": "ghz", "sizes": [2], "depth": 4}
        ]
        with pytest.raises(CampaignSpecError, match="depth"):
            parse_spec(data)

    def test_missing_sizes_rejected(self):
        data = make_spec_dict()
        data["cells"]["families"] = [{"family": "ghz"}]
        with pytest.raises(CampaignSpecError, match="sizes"):
            parse_spec(data)

    def test_duplicate_family_labels_rejected(self):
        data = make_spec_dict()
        data["cells"]["families"] = [
            {"family": "ghz", "sizes": [2]},
            {"family": "ghz", "sizes": [4]},
        ]
        with pytest.raises(CampaignSpecError, match="duplicate family labels"):
            parse_spec(data)

    def test_distinct_labels_allow_repeated_family(self):
        data = make_spec_dict()
        data["cells"]["families"] = [
            {"family": "ghz", "sizes": [2], "label": "a"},
            {"family": "ghz", "sizes": [4], "label": "b"},
        ]
        spec = parse_spec(data)
        assert [f.display for f in spec.families] == ["a", "b"]

    def test_duplicate_package_labels_rejected(self):
        data = make_spec_dict()
        data["cells"]["packages"] = [{"label": "x"}, {"label": "x"}]
        with pytest.raises(CampaignSpecError, match="duplicate package labels"):
            parse_spec(data)

    def test_bad_storage_backend_rejected(self):
        data = make_spec_dict()
        data["cells"]["packages"] = [{"label": "x", "storage": "quantum"}]
        with pytest.raises(CampaignSpecError, match="storage"):
            parse_spec(data)

    def test_bad_mode_rejected(self):
        data = make_spec_dict()
        data["cells"]["families"] = [
            {"family": "ghz", "sizes": [2], "mode": "telepathy"}
        ]
        with pytest.raises(CampaignSpecError, match="mode"):
            parse_spec(data)

    def test_duplicate_gate_metric_rejected(self):
        with pytest.raises(CampaignSpecError, match="duplicate gate"):
            parse_spec(make_spec_dict(gates=[
                {"metric": "final_nodes"}, {"metric": "final_nodes"},
            ]))

    def test_bad_gate_direction_rejected(self):
        with pytest.raises(CampaignSpecError, match="direction"):
            parse_spec(make_spec_dict(gates=[
                {"metric": "final_nodes", "direction": "sideways"},
            ]))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(CampaignSpecError, match="tolerance_pct"):
            parse_spec(make_spec_dict(gates=[
                {"metric": "final_nodes", "tolerance_pct": -1},
            ]))

    def test_bad_format_rejected(self):
        with pytest.raises(CampaignSpecError, match="format"):
            parse_spec(make_spec_dict(format="qdd-campaign-spec-v999"))

    def test_name_with_path_separator_rejected(self):
        with pytest.raises(CampaignSpecError, match="name"):
            parse_spec(make_spec_dict(name="../escape"))

    def test_load_spec_json(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(make_spec_dict()), encoding="utf-8")
        assert load_spec(str(path)).name == "unit"

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="not found"):
            load_spec(str(tmp_path / "absent.json"))

    def test_load_spec_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CampaignSpecError, match="invalid JSON"):
            load_spec(str(path))

    def test_load_spec_toml(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        assert tomllib is not None
        path = tmp_path / "c.toml"
        path.write_text(
            "\n".join([
                'format = "qdd-campaign-spec-v1"',
                'name = "toml-campaign"',
                'description = "same schema, TOML surface"',
                "[cells]",
                'families = [{family = "ghz", sizes = [2]}]',
                "seeds = [0]",
                "[execution]",
                "workers = 0",
            ]),
            encoding="utf-8",
        )
        spec = load_spec(str(path))
        assert spec.name == "toml-campaign"
        assert spec.families[0].family == "ghz"

    def test_relative_qasm_path_resolved_against_spec_file(self, tmp_path):
        (tmp_path / "bell.qasm").write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\n'
            "h q[0];\ncx q[0],q[1];\n",
            encoding="utf-8",
        )
        data = make_spec_dict()
        data["cells"]["families"] = [
            {"family": "qasm", "sizes": [2], "params": {"path": "bell.qasm"}}
        ]
        path = tmp_path / "c.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        spec = load_spec(str(path))
        assert spec.families[0].params["path"] == str(tmp_path / "bell.qasm")


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------


class TestPlanner:
    def test_expansion_is_deterministic(self):
        spec = parse_spec(make_spec_dict())
        first = [cell.cell_id for cell in expand_plan(spec)]
        second = [cell.cell_id for cell in expand_plan(spec)]
        assert first == second
        assert first == [
            "ghz-n2-default-s0-r0",
            "ghz-n3-default-s0-r0",
            "w-n3-default-s0-r0",
        ]

    def test_cross_product_size(self):
        data = make_spec_dict()
        data["cells"]["seeds"] = [0, 1]
        data["cells"]["repetitions"] = 2
        data["cells"]["packages"] = [{"label": "a"}, {"label": "b"}]
        cells = expand_plan(parse_spec(data))
        # (2 + 1) sizes x 2 packages x 2 seeds x 2 reps
        assert len(cells) == 3 * 2 * 2 * 2
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_seed_offset_shifts_ids(self):
        spec = parse_spec(make_spec_dict())
        shifted = expand_plan(spec, seed_offset=7)
        assert shifted[0].cell_id == "ghz-n2-default-s7-r0"
        assert shifted[0].seed == 7

    def test_duplicate_seeds_refused(self):
        data = make_spec_dict()
        data["cells"]["seeds"] = [3, 3]
        with pytest.raises(CampaignSpecError, match="duplicate cell id"):
            expand_plan(parse_spec(data))


# ----------------------------------------------------------------------
# execution + resume (inline)
# ----------------------------------------------------------------------


class TestRunAndResume:
    def test_inline_run_produces_artifact(self, tmp_path):
        spec = parse_spec(make_spec_dict())
        out = tmp_path / "run"
        artifact = run_campaign(spec, str(out), fresh=True)
        assert artifact["summary"]["ok"] == 3
        assert artifact["cells"]["ghz-n3-default-s0-r0"]["metrics"][
            "final_nodes"] == 5
        for name in ("artifact.json", "report.md", "timeline.svg",
                     "manifest.jsonl", "spec.json"):
            assert (out / name).exists()
        assert deterministic_view(load_artifact(str(out))) == \
            deterministic_view(artifact)

    def test_two_runs_are_deterministic(self, tmp_path):
        spec = parse_spec(make_spec_dict())
        a = run_campaign(spec, str(tmp_path / "a"), fresh=True)
        b = run_campaign(spec, str(tmp_path / "b"), fresh=True)
        assert deterministic_view(a) == deterministic_view(b)

    def test_resume_skips_completed_cells(self, tmp_path):
        spec = parse_spec(make_spec_dict())
        out = str(tmp_path / "run")
        reference = run_campaign(spec, out, fresh=True)

        # Truncate the journal to header + first cell, poisoning the kept
        # record with a marker metric: if resume re-executed that cell the
        # marker would be overwritten by the genuine result.
        manifest_path = os.path.join(out, "manifest.jsonl")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        kept = json.loads(lines[1])
        kept["metrics"]["resume_marker"] = 999
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(lines[0])
            handle.write(json.dumps(kept) + "\n")

        resumed = run_campaign(spec, out)
        assert resumed["summary"]["ok"] == 3
        assert resumed["cells"][kept["cell_id"]]["metrics"][
            "resume_marker"] == 999
        # Everything else matches an uninterrupted run exactly.
        view = deterministic_view(resumed)
        del view["cells"][kept["cell_id"]]["metrics"]["resume_marker"]
        assert view == deterministic_view(reference)

    def test_resume_tolerates_torn_trailing_line(self, tmp_path):
        spec = parse_spec(make_spec_dict())
        out = str(tmp_path / "run")
        reference = run_campaign(spec, out, fresh=True)
        manifest_path = os.path.join(out, "manifest.jsonl")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        # header + one full record + half of the next (a SIGKILL mid-append)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(lines[0] + lines[1] + lines[2][: len(lines[2]) // 2])
        resumed = run_campaign(spec, out)
        assert deterministic_view(resumed) == deterministic_view(reference)

    def test_changed_spec_refused_without_fresh(self, tmp_path):
        out = str(tmp_path / "run")
        run_campaign(parse_spec(make_spec_dict()), out, fresh=True)
        other = make_spec_dict()
        other["cells"]["seeds"] = [1]
        with pytest.raises(CampaignError, match="different campaign"):
            run_campaign(parse_spec(other), out)
        # --fresh discards the old journal and runs the new sweep.
        artifact = run_campaign(parse_spec(other), out, fresh=True)
        assert artifact["summary"]["ok"] == 3

    def test_failed_cell_is_isolated(self, tmp_path):
        data = make_spec_dict()
        # bellpairs rejects odd sizes -> one failed cell among ok ones.
        data["cells"]["families"] = [
            {"family": "ghz", "sizes": [2]},
            {"family": "bellpairs", "sizes": [3]},
        ]
        artifact = run_campaign(
            parse_spec(data), str(tmp_path / "run"), fresh=True
        )
        statuses = artifact["summary"]["statuses"]
        assert statuses == {"failed": 1, "ok": 1}
        failed = artifact["cells"]["bellpairs-n3-default-s0-r0"]
        assert "even number" in failed["error"]

    def test_non_repro_exception_is_isolated(self, tmp_path):
        data = make_spec_dict()
        # A dangling qasm path raises FileNotFoundError inside the cell;
        # the sweep must record it as 'failed' and keep going.
        data["cells"]["families"] = [
            {"family": "ghz", "sizes": [2]},
            {"family": "qasm", "sizes": [3],
             "params": {"path": str(tmp_path / "missing.qasm")}},
        ]
        artifact = run_campaign(
            parse_spec(data), str(tmp_path / "run"), fresh=True
        )
        assert artifact["summary"]["statuses"] == {"failed": 1, "ok": 1}
        failed = artifact["cells"]["qasm-n3-default-s0-r0"]
        assert "FileNotFoundError" in failed["error"]

    def test_seed_offset_folds_into_journal(self, tmp_path):
        spec = parse_spec(make_spec_dict())
        out = str(tmp_path / "run")
        artifact = run_campaign(spec, out, seed_offset=5, fresh=True)
        assert "ghz-n2-default-s5-r0" in artifact["cells"]
        # The journaled spec copy carries the shifted seeds, so a blind
        # resume of the directory continues the offset sweep.
        with open(os.path.join(out, "spec.json"), encoding="utf-8") as handle:
            assert json.load(handle)["cells"]["seeds"] == [5]
        manifest = Manifest(os.path.join(out, "manifest.jsonl"))
        header, records = manifest.load()
        assert header["planned_cells"] == 3
        assert set(records) == set(artifact["cells"])


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------


def _artifact_with_cells(cells):
    return {
        "format": "qdd-campaign-artifact-v1",
        "campaign": "unit",
        "cells": cells,
        "spec": {"gates": []},
    }


def _cell(status="ok", metrics=None, timing=None):
    return {
        "status": status,
        "metrics": metrics or {},
        "timing": timing or {},
        "counts": None,
        "error": None,
    }


class TestGating:
    def test_identical_artifacts_pass(self):
        art = _artifact_with_cells({"c1": _cell(metrics={"final_nodes": 5})})
        report = diff_artifacts(art, copy.deepcopy(art),
                                gates=[GateSpec(metric="final_nodes")])
        assert report.ok and report.passed == 1 and not report.regressions

    def test_drift_beyond_zero_tolerance_fails(self):
        base = _artifact_with_cells({"c1": _cell(metrics={"final_nodes": 5})})
        cur = _artifact_with_cells({"c1": _cell(metrics={"final_nodes": 6})})
        report = diff_artifacts(cur, base,
                                gates=[GateSpec(metric="final_nodes")])
        assert not report.ok
        finding = report.regressions[0]
        assert (finding.cell_id, finding.metric) == ("c1", "final_nodes")
        assert finding.delta == 1.0
        assert "5 -> 6" in report.render()

    def test_exactly_at_tolerance_passes(self):
        base = _artifact_with_cells({"c1": _cell(metrics={"m": 100})})
        cur = _artifact_with_cells({"c1": _cell(metrics={"m": 110})})
        gate = GateSpec(metric="m", tolerance_pct=10.0)
        assert diff_artifacts(cur, base, gates=[gate]).ok
        cur_over = _artifact_with_cells({"c1": _cell(metrics={"m": 111})})
        assert not diff_artifacts(cur_over, base, gates=[gate]).ok

    def test_zero_baseline_with_pct_only_gate(self):
        # allowance = max(0, |0| * pct) = 0 -> any drift fails ...
        base = _artifact_with_cells({"c1": _cell(metrics={"m": 0})})
        cur = _artifact_with_cells({"c1": _cell(metrics={"m": 1})})
        gate_pct = GateSpec(metric="m", tolerance_pct=50.0)
        assert not diff_artifacts(cur, base, gates=[gate_pct]).ok
        # ... unless an absolute floor admits it.
        gate_abs = GateSpec(metric="m", tolerance_pct=50.0, tolerance_abs=1.0)
        assert diff_artifacts(cur, base, gates=[gate_abs]).ok

    def test_one_sided_increase_gate(self):
        base = _artifact_with_cells({"c1": _cell(metrics={"m": 100})})
        better = _artifact_with_cells({"c1": _cell(metrics={"m": 50})})
        worse = _artifact_with_cells({"c1": _cell(metrics={"m": 150})})
        gate = GateSpec(metric="m", direction="increase")
        assert diff_artifacts(better, base, gates=[gate]).ok
        assert not diff_artifacts(worse, base, gates=[gate]).ok

    def test_one_sided_decrease_gate(self):
        base = _artifact_with_cells({"c1": _cell(metrics={"m": 100})})
        grown = _artifact_with_cells({"c1": _cell(metrics={"m": 150})})
        gate = GateSpec(metric="m", direction="decrease")
        assert diff_artifacts(grown, base, gates=[gate]).ok

    def test_baseline_ok_cell_missing_in_current_fails(self):
        base = _artifact_with_cells({"c1": _cell(metrics={"m": 1})})
        cur = _artifact_with_cells({})
        report = diff_artifacts(cur, base, gates=[GateSpec(metric="m")])
        assert not report.ok and report.missing_cells == ["c1"]

    def test_baseline_ok_cell_crashed_in_current_fails(self):
        base = _artifact_with_cells({"c1": _cell(metrics={"m": 1})})
        cur = _artifact_with_cells({"c1": _cell(status="crashed")})
        report = diff_artifacts(cur, base, gates=[GateSpec(metric="m")])
        assert not report.ok and report.missing_cells == ["c1"]

    def test_baseline_failed_cell_cannot_regress(self):
        base = _artifact_with_cells({"c1": _cell(status="failed")})
        cur = _artifact_with_cells({"c1": _cell(status="failed")})
        assert diff_artifacts(cur, base, gates=[GateSpec(metric="m")]).ok

    def test_new_cells_reported_but_not_failed(self):
        base = _artifact_with_cells({})
        cur = _artifact_with_cells({"c9": _cell(metrics={"m": 1})})
        report = diff_artifacts(cur, base, gates=[GateSpec(metric="m")])
        assert report.ok and report.new_cells == ["c9"]

    def test_metric_missing_one_side_fails(self):
        base = _artifact_with_cells({"c1": _cell(metrics={"m": 1})})
        cur = _artifact_with_cells({"c1": _cell(metrics={})})
        report = diff_artifacts(cur, base, gates=[GateSpec(metric="m")])
        assert not report.ok
        assert "missing from the current" in report.regressions[0].reason

    def test_metric_missing_both_sides_is_skipped(self):
        base = _artifact_with_cells({"c1": _cell(metrics={})})
        cur = _artifact_with_cells({"c1": _cell(metrics={})})
        report = diff_artifacts(cur, base, gates=[GateSpec(metric="m")])
        assert report.ok and report.passed == 0

    def test_timing_metrics_reachable_by_gates(self):
        base = _artifact_with_cells(
            {"c1": _cell(timing={"wall_seconds": 1.0})})
        cur = _artifact_with_cells(
            {"c1": _cell(timing={"wall_seconds": 3.0})})
        gate = GateSpec(metric="wall_seconds", tolerance_pct=50.0,
                        direction="increase")
        assert not diff_artifacts(cur, base, gates=[gate]).ok

    def test_gates_default_to_current_artifact_spec(self):
        base = _artifact_with_cells({"c1": _cell(metrics={"m": 1})})
        cur = _artifact_with_cells({"c1": _cell(metrics={"m": 2})})
        cur["spec"] = {"gates": [{"metric": "m"}]}
        assert not diff_artifacts(cur, base).ok


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCampaignCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "unit.json"
        path.write_text(json.dumps(make_spec_dict()), encoding="utf-8")
        return str(path)

    def test_run_report_diff_roundtrip(self, spec_file, tmp_path, capsys):
        out = str(tmp_path / "out")
        assert main(["campaign", "run", spec_file, "--out", out,
                     "--quiet"]) == 0
        assert "3/3 cells ok" in capsys.readouterr().out

        assert main(["campaign", "report", out]) == 0
        assert "# Campaign report: unit" in capsys.readouterr().out

        # Self-diff passes and exits 0.
        assert main(["campaign", "diff", out, out]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_run_gated_against_regressed_baseline(self, spec_file, tmp_path,
                                                  capsys):
        out = str(tmp_path / "out")
        assert main(["campaign", "run", spec_file, "--out", out,
                     "--quiet"]) == 0
        capsys.readouterr()

        baseline = json.loads(
            (tmp_path / "out" / "artifact.json").read_text(encoding="utf-8"))
        cell = baseline["cells"]["ghz-n3-default-s0-r0"]
        cell["metrics"]["final_nodes"] -= 2  # current now looks regressed
        regressed = tmp_path / "baseline.json"
        regressed.write_text(json.dumps(baseline), encoding="utf-8")

        assert main(["campaign", "diff", out, str(regressed)]) == 1
        printed = capsys.readouterr().out
        assert "FAIL" in printed and "final_nodes" in printed

    def test_diff_json_output(self, spec_file, tmp_path, capsys):
        out = str(tmp_path / "out")
        main(["campaign", "run", spec_file, "--out", out, "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "diff", out, out, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["regressions"] == []

    def test_resume_command_uses_journaled_spec(self, spec_file, tmp_path,
                                                capsys):
        out = str(tmp_path / "out")
        assert main(["campaign", "run", spec_file, "--out", out,
                     "--quiet"]) == 0
        capsys.readouterr()
        # Drop every cell record; resume replays the sweep from spec.json.
        manifest = os.path.join(out, "manifest.jsonl")
        with open(manifest, "r", encoding="utf-8") as handle:
            header = handle.readline()
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write(header)
        assert main(["campaign", "resume", out, "--quiet"]) == 0
        assert "3/3 cells ok" in capsys.readouterr().out

    def test_resume_refuses_non_campaign_directory(self, tmp_path, capsys):
        assert main(["campaign", "resume", str(tmp_path)]) != 0
        assert "no spec.json" in capsys.readouterr().err
