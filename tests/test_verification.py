"""Unit tests for equivalence checking (paper Sec. III-C, Ex. 11/12)."""

import math

import pytest

from repro.dd import DDPackage
from repro.errors import VerificationError
from repro.qc import QuantumCircuit, library
from repro.verification import (
    ApplicationStrategy,
    build_functionality,
    check_equivalence_alternating,
    check_equivalence_construct,
)


def _inequivalent_pair():
    a = library.qft(3)
    b = library.qft(3)
    b.x(0)
    return a, b


class TestConstructChecker:
    def test_qft_pair_equivalent(self):
        """Paper Ex. 11: both QFT circuits yield the identical DD."""
        result = check_equivalence_construct(
            library.qft(3), library.qft_compiled(3)
        )
        assert result.equivalent
        assert result.equivalent_up_to_global_phase
        assert bool(result)

    def test_monolithic_peak_is_21_nodes(self):
        """Paper Ex. 12: building the full system matrix needs 21 nodes."""
        result = check_equivalence_construct(
            library.qft(3), library.qft_compiled(3)
        )
        assert result.max_nodes == 21

    def test_detects_inequivalence(self):
        result = check_equivalence_construct(*_inequivalent_pair())
        assert not result.equivalent
        assert not result.equivalent_up_to_global_phase
        assert not bool(result)

    def test_global_phase_detected(self):
        a = QuantumCircuit(1)
        a.p(0.4, 0)
        b = QuantumCircuit(1)
        b.rz(0.4, 0)  # differs by exp(i*0.2) global phase
        result = check_equivalence_construct(a, b)
        assert not result.equivalent
        assert result.equivalent_up_to_global_phase
        assert abs(abs(result.global_phase) - 1.0) < 1e-9
        assert abs(result.global_phase - complex(math.cos(0.2), -math.sin(0.2))) < 1e-9

    def test_qubit_count_mismatch(self):
        with pytest.raises(VerificationError):
            check_equivalence_construct(library.qft(2), library.qft(3))

    def test_shared_package_reuse(self, package):
        result = check_equivalence_construct(
            library.bell_pair(), library.bell_pair(), package=package
        )
        assert result.equivalent

    def test_build_functionality_peak_tracking(self, package):
        functionality, peak = build_functionality(
            package, library.qft(3), track_peak=True
        )
        assert peak >= package.node_count(functionality)
        assert peak == 21


class TestAlternatingChecker:
    @pytest.mark.parametrize("strategy", list(ApplicationStrategy))
    def test_all_strategies_confirm_equivalence(self, strategy):
        result = check_equivalence_alternating(
            library.qft(3), library.qft_compiled(3), strategy=strategy
        )
        assert result.equivalent
        assert result.strategy is strategy

    @pytest.mark.parametrize("strategy", list(ApplicationStrategy))
    def test_all_strategies_detect_inequivalence(self, strategy):
        result = check_equivalence_alternating(
            *_inequivalent_pair(), strategy=strategy
        )
        assert not result.equivalent

    def test_compilation_flow_peak_is_9_nodes(self):
        """Paper Ex. 12: the alternating scheme needs at most 9 nodes."""
        result = check_equivalence_alternating(
            library.qft(3),
            library.qft_compiled(3),
            strategy=ApplicationStrategy.COMPILATION_FLOW,
        )
        assert result.max_nodes == 9

    def test_naive_peak_matches_monolithic(self):
        result = check_equivalence_alternating(
            library.qft(3),
            library.qft_compiled(3),
            strategy=ApplicationStrategy.NAIVE,
        )
        assert result.max_nodes == 21

    def test_compilation_flow_beats_naive(self):
        good = check_equivalence_alternating(
            library.qft(3), library.qft_compiled(3),
            strategy=ApplicationStrategy.COMPILATION_FLOW,
        )
        bad = check_equivalence_alternating(
            library.qft(3), library.qft_compiled(3),
            strategy=ApplicationStrategy.NAIVE,
        )
        assert good.max_nodes < bad.max_nodes

    def test_trace_records_every_application(self):
        result = check_equivalence_alternating(
            library.qft(3), library.qft_compiled(3),
            strategy=ApplicationStrategy.ONE_TO_ONE,
        )
        left_count = sum(1 for entry in result.trace if entry.side == "G")
        right_count = sum(1 for entry in result.trace if entry.side == "G'")
        assert left_count == library.qft(3).num_gates
        assert right_count == library.qft_compiled(3).num_gates
        assert max(entry.node_count for entry in result.trace) <= result.max_nodes

    def test_asymmetric_lengths_proportional(self):
        short = QuantumCircuit(2)
        short.h(0)
        long = QuantumCircuit(2)
        # h = h h h (odd count keeps equivalence)
        long.h(0).h(0).h(0)
        result = check_equivalence_alternating(
            short, long, strategy=ApplicationStrategy.PROPORTIONAL
        )
        assert result.equivalent

    def test_empty_right_circuit(self):
        a = QuantumCircuit(1)
        a.x(0).x(0)
        b = QuantumCircuit(1)
        result = check_equivalence_alternating(a, b)
        assert result.equivalent

    def test_self_inverse_identity(self):
        circuit = library.ghz_state(4)
        result = check_equivalence_alternating(circuit, circuit)
        assert result.equivalent

    def test_nonunitary_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(VerificationError):
            check_equivalence_alternating(circuit, QuantumCircuit(1))

    def test_qubit_count_mismatch(self):
        with pytest.raises(VerificationError):
            check_equivalence_alternating(library.qft(2), library.qft(3))

    def test_swap_decompositions_equivalent(self):
        a = QuantumCircuit(3)
        a.swap(0, 2)
        b = QuantumCircuit(3)
        b.cx(0, 2).cx(2, 0).cx(0, 2)
        result = check_equivalence_alternating(a, b)
        assert result.equivalent

    def test_lookahead_never_worse_than_naive(self):
        for seed in (0, 1):
            circuit = library.random_circuit(3, 20, seed=seed)
            compiled = circuit.copy()
            naive = check_equivalence_alternating(
                circuit, compiled, strategy=ApplicationStrategy.NAIVE
            )
            lookahead = check_equivalence_alternating(
                circuit, compiled, strategy=ApplicationStrategy.LOOKAHEAD
            )
            assert lookahead.max_nodes <= naive.max_nodes
