"""Capability tests at scales impossible for dense representations.

The paper's pitch is that DDs make 2^n-sized objects tractable when the
structure cooperates; these tests run workloads whose dense state vectors
(2^50, 2^100 amplitudes) could never be allocated.
"""

import numpy as np
import pytest

from repro.dd import DDPackage, sampling
from repro.qc import QuantumCircuit, library
from repro.simulation import DDSimulator


class TestLargeStructuredSimulation:
    def test_ghz_50_qubits(self):
        simulator = DDSimulator(library.ghz_state(50))
        simulator.run_all()
        assert simulator.node_count() == 2 * 50 - 1
        amplitude = simulator.package.amplitude(simulator.state, 0, 50)
        assert abs(amplitude - 2**-0.5) < 1e-9

    def test_ghz_50_sampling(self):
        simulator = DDSimulator(library.ghz_state(50))
        simulator.run_all()
        counts = simulator.sample_counts(200, seed=5)
        assert set(counts) == {"0" * 50, "1" * 50}

    def test_ghz_50_measurement_collapse(self):
        simulator = DDSimulator(library.ghz_state(50))
        simulator.run_all()
        package = simulator.package
        outcome, probability, collapsed = sampling.measure_qubit(
            package, simulator.state, 25, outcome=1
        )
        assert abs(probability - 0.5) < 1e-9
        # All 50 qubits collapsed together (total entanglement).
        assert package.amplitude(collapsed, (1 << 50) - 1, 50) == 1.0

    def test_basis_state_100_qubits(self):
        package = DDPackage()
        index = (1 << 100) - 1  # |1...1>
        state = package.basis_state(100, index)
        assert package.node_count(state) == 100
        assert package.amplitude(state, index, 100) == 1.0

    def test_single_gate_on_80_qubits(self):
        package = DDPackage()
        state = package.zero_state(80)
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        gate = package.single_qubit_gate(80, h, 40)
        result = package.multiply(gate, state)
        p0, p1 = sampling.qubit_probabilities(package, result, 40)
        assert abs(p0 - 0.5) < 1e-9

    def test_identity_functionality_60_qubits(self):
        package = DDPackage()
        circuit = QuantumCircuit(60)
        for qubit in range(0, 60, 7):
            circuit.x(qubit)
            circuit.x(qubit)
        from repro.qc.dd_builder import circuit_to_dd

        functionality = circuit_to_dd(package, circuit)
        assert functionality.node is package.identity(60).node

    def test_alternating_verification_30_qubits(self):
        """Verifying a 30-qubit GHZ preparation against itself: the
        alternating diagram never exceeds a few dozen nodes."""
        from repro.verification import (
            ApplicationStrategy,
            check_equivalence_alternating,
        )

        circuit = library.ghz_state(30)
        result = check_equivalence_alternating(
            circuit, circuit, ApplicationStrategy.ONE_TO_ONE
        )
        assert result.equivalent
        assert result.max_nodes <= 4 * 30
