"""Property-based invariants of the direct gate-application kernels.

* applying a unitary preserves the state's L2 norm;
* applying ``U`` then ``U†`` returns the *identical* root edge
  (canonicity: same node object via the unique table);
* the diagonal shortcut produces exactly the same edge as the generic
  kernel formula;
* the kernel path's unique/compute-table footprint never exceeds the
  matrix path's for the same circuit;
* ``clear_caches`` drops the apply table (and ``stats`` reports it), and
  a cleared package replays a circuit to the identical root edge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dd.apply import _ApplyKernel, apply_controlled
from repro.dd.package import DDPackage
from repro.qc import library
from repro.qc.dd_builder import apply_gate
from repro.qc.operations import GateOp
from repro.simulation.simulator import DDSimulator

from tests.test_differential_apply import random_mixed_circuit


def _random_state(package: DDPackage, num_qubits: int, rng: np.random.Generator):
    amplitudes = rng.normal(size=1 << num_qubits) + 1j * rng.normal(
        size=1 << num_qubits
    )
    amplitudes /= np.linalg.norm(amplitudes)
    return package.from_state_vector(amplitudes)


_UNITARY_OPS = [
    GateOp(gate="h", targets=(2,)),
    GateOp(gate="t", targets=(0,)),
    GateOp(gate="u3", params=(0.37, 1.2, -0.8), targets=(1,)),
    GateOp(gate="x", targets=(1,), controls=(3,), negative_controls=(0,)),
    GateOp(gate="p", params=(0.9,), targets=(3,), controls=(0, 2)),
    GateOp(gate="swap", targets=(3, 1)),
    GateOp(gate="swap", targets=(2, 0), controls=(3,)),
    GateOp(gate="iswap", targets=(2, 1)),
    GateOp(gate="iswapdg", targets=(3, 0)),
]


@pytest.mark.parametrize("operation", _UNITARY_OPS, ids=lambda op: repr(op)[:40])
def test_apply_preserves_norm(operation):
    package = DDPackage()
    rng = np.random.default_rng(11)
    state = _random_state(package, 4, rng)
    applied = apply_gate(package, state, operation, 4)
    assert package.norm_squared(applied) == pytest.approx(1.0, abs=1e-10)


@pytest.mark.parametrize("operation", _UNITARY_OPS, ids=lambda op: repr(op)[:40])
def test_apply_then_inverse_is_identity_on_the_dd(operation):
    package = DDPackage()
    rng = np.random.default_rng(23)
    state = _random_state(package, 4, rng)
    applied = apply_gate(package, state, operation, 4)
    returned = apply_gate(package, applied, operation.inverse(), 4)
    # Canonicity: the round trip lands on the very same node object.
    assert returned.node is state.node
    assert package.complex_table.approx_equal(returned.weight, state.weight)


class _ForcedGenericKernel(_ApplyKernel):
    """The generic target-level formula with the shortcuts disabled."""

    def _apply_target(self, pair):
        u00, u01, u10, u11 = self.u
        c0, c1 = pair
        add = self.package._add
        table = self.table
        return (
            add(c0.scaled(u00, table), c1.scaled(u01, table)),
            add(c0.scaled(u10, table), c1.scaled(u11, table)),
        )


@pytest.mark.parametrize("gate_name", ["z", "s", "sdg", "t", "tdg"])
def test_diagonal_shortcut_equals_generic_kernel(gate_name):
    package = DDPackage()
    rng = np.random.default_rng(5)
    state = _random_state(package, 3, rng)
    matrix = GateOp(gate=gate_name, targets=(1,)).matrix()
    shortcut = apply_controlled(package, state, matrix, 1)
    generic = _ForcedGenericKernel(package, "v", matrix, 1, {})
    # Separate the cache namespace so the comparison is not answered from
    # the shortcut kernel's own cached results.
    generic.op_key = ("generic-test",) + generic.op_key
    reference = generic.run(state)
    assert shortcut.node is reference.node
    assert shortcut.weight == reference.weight


@pytest.mark.parametrize("gate_name", ["x", "y"])
def test_antidiagonal_shortcut_equals_generic_kernel(gate_name):
    package = DDPackage()
    rng = np.random.default_rng(6)
    state = _random_state(package, 3, rng)
    matrix = GateOp(gate=gate_name, targets=(2,)).matrix()
    shortcut = apply_controlled(package, state, matrix, 2)
    generic = _ForcedGenericKernel(package, "v", matrix, 2, {})
    generic.op_key = ("generic-test",) + generic.op_key
    reference = generic.run(state)
    assert shortcut.node is reference.node
    assert shortcut.weight == reference.weight


def _table_footprint(package: DDPackage):
    unique = len(package._vector_unique) + len(package._matrix_unique)
    compute = sum(len(table) for table in package._compute_tables())
    return unique, compute


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_kernel_tables_never_exceed_matrix_path(seed):
    rng = np.random.default_rng(seed)
    num_qubits = int(rng.integers(2, 6))
    circuit = random_mixed_circuit(num_qubits, 20, rng)

    kernel_sim = DDSimulator(circuit, use_apply_kernels=True)
    kernel_sim.run_all()
    matrix_sim = DDSimulator(circuit, use_apply_kernels=False)
    matrix_sim.run_all()

    kernel_unique, kernel_compute = _table_footprint(kernel_sim.package)
    matrix_unique, matrix_compute = _table_footprint(matrix_sim.package)
    assert kernel_unique <= matrix_unique
    assert kernel_compute <= matrix_compute
    # The kernel path allocates strictly fewer nodes overall: it never
    # creates matrix nodes.
    kernel_allocs = (
        kernel_sim.package._vector_unique.misses
        + kernel_sim.package._matrix_unique.misses
    )
    matrix_allocs = (
        matrix_sim.package._vector_unique.misses
        + matrix_sim.package._matrix_unique.misses
    )
    assert kernel_sim.package._matrix_unique.misses == 0
    assert kernel_allocs < matrix_allocs


def test_clear_caches_drops_apply_table_and_stats_reports_it():
    package = DDPackage()
    state = package.zero_state(3)
    circuit = library.qft(3)
    for operation in circuit:
        state = apply_gate(package, state, operation, 3)
    assert len(package._apply_cache) > 0
    stats = package.stats()
    assert "apply" in stats
    assert stats["apply"]["entries"] == len(package._apply_cache)
    assert stats["apply"]["misses"] > 0

    package.clear_caches()
    assert len(package._apply_cache) == 0
    assert package.stats()["apply"]["entries"] == 0


def test_cleared_package_replays_to_identical_root_edge():
    package = DDPackage()
    circuit = library.qft_compiled(3)

    def run():
        state = package.zero_state(3)
        for operation in circuit:
            if isinstance(operation, GateOp):
                state = apply_gate(package, state, operation, 3)
        return state

    first = run()
    package.clear_caches()
    replayed = run()
    assert replayed.node is first.node
    assert replayed.weight == first.weight
