"""Unit tests for the synth / convert / stats CLI commands."""

import numpy as np
import pytest

from repro.qc import library
from repro.qc.qasm import parse_qasm
from repro.simulation import DDSimulator
from repro.tool.cli import main


class TestSynth:
    def test_bell_preparation_to_stdout(self, capsys):
        assert main(["synth", "1,0,0,1"]) == 0
        out = capsys.readouterr().out
        circuit = parse_qasm(out)
        simulator = DDSimulator(circuit)
        simulator.run_all()
        target = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert abs(np.vdot(simulator.statevector(), target)) ** 2 > 1 - 1e-9

    def test_complex_amplitudes(self, capsys):
        assert main(["synth", "1, 1i, -1, -1i"]) == 0
        circuit = parse_qasm(capsys.readouterr().out)
        simulator = DDSimulator(circuit)
        simulator.run_all()
        target = np.array([1, 1j, -1, -1j]) / 2.0
        assert abs(np.vdot(simulator.statevector(), target)) ** 2 > 1 - 1e-9

    def test_amplitudes_from_file(self, tmp_path, capsys):
        vector_file = tmp_path / "state.txt"
        vector_file.write_text("1\n0\n0\n1\n")
        out_file = tmp_path / "prep.qasm"
        assert main(["synth", f"@{vector_file}", "-o", str(out_file)]) == 0
        assert "fidelity 1.0" in capsys.readouterr().out
        parse_qasm(out_file.read_text())

    def test_zero_vector_rejected(self, capsys):
        assert main(["synth", "0,0"]) == 2

    def test_no_optimize_flag(self, capsys):
        assert main(["synth", "1,1,1,1", "--no-optimize"]) == 0
        circuit = parse_qasm(capsys.readouterr().out)
        # 2^2 - 1 rotations without the optimization (the negative-control
        # export adds X conjugation gates around the controlled ones).
        rotations = sum(1 for op in circuit if op.gate == "ry")
        assert rotations == 3


class TestConvert:
    def test_real_to_qasm(self, tmp_path, capsys):
        source = tmp_path / "c.real"
        source.write_text(
            ".numvars 3\n.variables a b c\n.begin\nt3 a b c\n.end\n"
        )
        assert main(["convert", str(source)]) == 0
        out = capsys.readouterr().out
        assert "ccx" in out
        parse_qasm(out)

    def test_qasm_passthrough(self, tmp_path, capsys):
        source = tmp_path / "c.qasm"
        source.write_text(library.bell_pair().to_qasm())
        target = tmp_path / "out.qasm"
        assert main(["convert", str(source), "-o", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        parse_qasm(target.read_text())


class TestStats:
    def test_stats_output(self, tmp_path, capsys):
        source = tmp_path / "ghz.qasm"
        source.write_text(library.ghz_state(4).to_qasm())
        assert main(["stats", str(source)]) == 0
        out = capsys.readouterr().out
        assert "final DD 7 nodes" in out
        assert "unique_vector" in out
        assert "mult-mv" in out

    def test_stats_reports_latency_percentiles(self, tmp_path, capsys):
        source = tmp_path / "ghz.qasm"
        source.write_text(library.ghz_state(4).to_qasm())
        assert main(["stats", str(source)]) == 0
        out = capsys.readouterr().out
        # run_report surfaces p50/p95/p99 for every histogram it prints.
        assert "p50=" in out
        assert "p95=" in out
        assert "p99=" in out


class TestBloch:
    def test_bloch_to_stdout(self, tmp_path, capsys):
        source = tmp_path / "plus.qasm"
        source.write_text("OPENQASM 2.0;\nqreg q[1];\nh q[0];\n")
        assert main(["bloch", str(source)]) == 0
        assert capsys.readouterr().out.startswith("<svg")

    def test_bloch_to_file_prints_vectors(self, tmp_path, capsys):
        source = tmp_path / "bell.qasm"
        source.write_text(library.bell_pair().to_qasm())
        target = tmp_path / "bloch.svg"
        assert main(["bloch", str(source), "-o", str(target)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        # Entangled qubits: zero Bloch vectors.
        assert "(+0.000, +0.000, +0.000)" in out
        assert target.read_text().startswith("<svg")
