"""Edge cases of the visualization stack: scalar DDs, boundary phases,
vanishing magnitudes.

These pin the degenerate inputs that crashed (or silently mis-rendered)
earlier versions: a scalar DD has no layers at all, HLS hues must wrap
cleanly at the bucket boundaries of the color wheel, and magnitude-0
weights must still draw a visible (minimum-width) stroke.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET

import pytest

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge, ONE_EDGE, ZERO_EDGE
from repro.dd.node import TERMINAL
from repro.errors import VisualizationError
from repro.vis import DDStyle, dd_to_svg
from repro.vis.color import hls_wheel_color, phase_to_color, weight_to_width
from repro.vis.layout import compute_layout
from repro.vis.svg import color_wheel_svg

TWO_PI = 2.0 * math.pi


def _parse_svg(text: str) -> ET.Element:
    return ET.fromstring(text)


# ----------------------------------------------------------------------
# scalar / empty decision diagrams
# ----------------------------------------------------------------------

class TestScalarDD:
    def test_layout_of_terminal_root(self):
        layout = compute_layout(ONE_EDGE)
        assert layout.layers == []
        assert layout.width > 0 and layout.height > 0
        # Root anchor and terminal line up on the (degenerate) spine.
        assert layout.root_anchor[0] == layout.terminal[0]
        assert layout.root_anchor[1] < layout.terminal[1]

    @pytest.mark.parametrize(
        "style",
        [DDStyle.classic(), DDStyle.colored(), DDStyle.modern()],
        ids=["classic", "colored", "modern"],
    )
    def test_scalar_svg_renders_with_terminal_box(self, style, package):
        svg = dd_to_svg(package, ONE_EDGE, style=style)
        root = _parse_svg(svg)
        namespace = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{namespace}rect")
        texts = [t.text for t in root.findall(f"{namespace}text")]
        assert rects, "terminal box missing from scalar DD"
        assert "1" in texts

    def test_scalar_svg_with_nonunit_weight(self, package):
        half = Edge(TERMINAL, package.complex_table.lookup(0.5 + 0.0j))
        svg = dd_to_svg(package, half, style=DDStyle.classic())
        assert "1/2" in svg  # the root edge label survives

    def test_zero_edge_still_rejected(self, package):
        with pytest.raises(VisualizationError):
            dd_to_svg(package, ZERO_EDGE)
        with pytest.raises(VisualizationError):
            compute_layout(ZERO_EDGE)

    def test_zero_qubit_state_renders(self, package):
        """A 0-qubit state is a scalar: the package API refuses to build
        one from a dense vector, but a hand-built scalar edge renders."""
        from repro.errors import InvalidStateError

        with pytest.raises(InvalidStateError):
            package.from_state_vector([1.0])
        scalar = Edge(TERMINAL, ComplexTable.ONE)
        svg = dd_to_svg(package, scalar, title="scalar")
        assert svg.startswith("<svg")
        assert "scalar" in svg


# ----------------------------------------------------------------------
# HLS bucket boundaries
# ----------------------------------------------------------------------

class TestHlsBoundaries:
    def test_zero_and_full_turn_identical(self):
        assert hls_wheel_color(0.0) == hls_wheel_color(TWO_PI)
        assert hls_wheel_color(0.0) == hls_wheel_color(-TWO_PI)

    def test_epsilon_below_full_turn_is_near_red(self):
        """2π-ε sits in the last hue bucket but must round back to red —
        a wrap bug here paints an almost-real weight violet."""
        almost = hls_wheel_color(TWO_PI - 1e-9)
        assert almost == hls_wheel_color(0.0)

    @pytest.mark.parametrize("sixth", range(6))
    def test_bucket_boundaries_are_exact(self, sixth):
        """The six HLS ramp corners (every π/3) hit pure channel values."""
        color = hls_wheel_color(sixth * math.pi / 3.0)
        channels = {color[1:3], color[3:5], color[5:7]}
        # At a corner every channel is fully on or fully off.
        assert channels <= {"00", "ff"}, color

    def test_phase_to_color_negative_phase_matches_positive(self):
        # exp(-iπ/2) and exp(i3π/2) are the same point on the wheel.
        down = phase_to_color(complex(0.0, -1.0))
        also_down = hls_wheel_color(1.5 * math.pi)
        assert down == also_down

    def test_wheel_svg_closes_the_circle(self):
        svg = color_wheel_svg(segments=12)
        root = _parse_svg(svg)
        namespace = "{http://www.w3.org/2000/svg}"
        polygons = root.findall(f"{namespace}polygon")
        assert len(polygons) == 12
        fills = [polygon.get("fill") for polygon in polygons]
        assert len(set(fills)) == 12  # twelve distinct hues, no repeats


# ----------------------------------------------------------------------
# vanishing magnitudes
# ----------------------------------------------------------------------

class TestVanishingMagnitude:
    def test_magnitude_zero_draws_minimum_width(self):
        assert weight_to_width(0.0 + 0.0j) == pytest.approx(0.5)

    def test_subnormal_magnitude_stays_at_least_minimum(self):
        width = weight_to_width(complex(1e-300, 0.0))
        assert width >= 0.5

    def test_width_is_monotone_in_magnitude(self):
        widths = [weight_to_width(complex(m, 0.0)) for m in
                  (0.0, 1e-9, 0.25, 0.5, 0.75, 1.0, 2.0)]
        assert widths == sorted(widths)
        assert widths[-1] == widths[-2] == pytest.approx(4.0)  # clipped

    def test_near_zero_weight_edge_renders(self, package):
        """An (unnormalized) DD carrying a tiny-but-clamped weight still
        produces strokes at the minimum width, not invisible hairlines."""
        state = package.from_state_vector([1.0, 0.0])
        svg = dd_to_svg(package, state,
                        style=DDStyle.colored())
        root = _parse_svg(svg)
        namespace = "{http://www.w3.org/2000/svg}"
        widths = [float(line.get("stroke-width"))
                  for line in root.findall(f"{namespace}line")]
        assert widths and min(widths) >= 0.5
