"""Metamorphic fuzzing: equivalence-preserving rewrites never change results.

The fuzzer (:mod:`repro.sanitizer.metamorphic`) generates seeded random
circuits, applies a semantics-preserving rewrite, and checks the pair with
the alternating equivalence checker plus identical sampling distributions.
A deliberately *broken* rewrite must be caught and shrunk to a minimal
counterexample in the corpus format under ``tests/data/metamorphic_corpus``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.sanitizer import metamorphic as mm

CORPUS_DIR = Path(__file__).parent / "data" / "metamorphic_corpus"

#: CI can rotate the base seed (METAMORPHIC_SEED) to sweep fresh cases
#: without touching the test code; the default keeps local runs stable.
BASE_SEED = int(os.environ.get("METAMORPHIC_SEED", "0"))


# ----------------------------------------------------------------------
# the healthy rewrites: hundreds of seeded cases, zero failures
# ----------------------------------------------------------------------

def test_200_seeded_cases_all_clean():
    failures = mm.fuzz(200, seed=BASE_SEED, shots=64)
    # Each describe() embeds the failing seed + rewrite: the assertion
    # message alone is a complete reproducer.
    assert not failures, "\n".join(case.describe() for case in failures)


@pytest.mark.parametrize("rewrite", sorted(mm.REWRITES))
def test_each_rewrite_clean_in_isolation(rewrite):
    failures = mm.fuzz(20, seed=BASE_SEED + 10_000, rewrites=(rewrite,), shots=64)
    assert not failures, "\n".join(case.describe() for case in failures)


def test_clean_with_sanitizer_enabled():
    """Fuzzing under REPRO_SANITIZE_EVERY-style checking stays clean too."""
    failures = mm.fuzz(10, seed=BASE_SEED + 20_000, shots=64, sanitize_every=1)
    assert not failures, "\n".join(case.describe() for case in failures)


def test_failure_messages_embed_the_seed():
    case = mm.CaseResult(seed=4711, rewrite="commute-disjoint", ok=False,
                         reason="demo")
    message = case.describe()
    assert "seed=4711" in message
    assert "commute-disjoint" in message
    assert "FAIL" in message


# ----------------------------------------------------------------------
# determinism: the same seed always produces the same case
# ----------------------------------------------------------------------

def test_generator_is_deterministic():
    a = mm.random_program(3, 12, seed=99)
    b = mm.random_program(3, 12, seed=99)
    assert a.to_qasm() == b.to_qasm()
    assert a.to_qasm() != mm.random_program(3, 12, seed=100).to_qasm()


@pytest.mark.parametrize("rewrite", sorted({**mm.REWRITES, **mm.BROKEN_REWRITES}))
def test_rewrites_are_deterministic(rewrite):
    circuit = mm.random_program(3, 10, seed=5)
    first = mm.apply_rewrite(circuit, rewrite, seed=77)
    second = mm.apply_rewrite(circuit, rewrite, seed=77)
    assert first.to_qasm() == second.to_qasm()


def test_unknown_rewrite_rejected():
    circuit = mm.random_program(2, 4, seed=0)
    with pytest.raises(ValueError, match="unknown rewrite"):
        mm.apply_rewrite(circuit, "swap-everything", seed=0)


# ----------------------------------------------------------------------
# the planted bug: broken-sign-flip must be caught and shrunk
# ----------------------------------------------------------------------

def test_broken_sign_flip_is_caught_and_shrunk(tmp_path):
    failures = mm.fuzz(
        8, seed=BASE_SEED + 30_000, rewrites=("broken-sign-flip",), shots=64
    )
    # The rewrite inserts g(θ)·g(θ) where the inverse belongs — every
    # single case must fail the equivalence check.
    assert len(failures) == 8, "\n".join(case.describe() for case in failures)
    for case in failures:
        assert "equivalen" in case.reason or "distribution" in case.reason
        assert case.shrunk is not None
        # Shrinking strips the original down to (near) nothing: the whole
        # counterexample is the two inserted gates.
        assert len(case.transformed) <= 5, case.describe()

    # Saving produces a replayable corpus entry.
    path = mm.save_counterexample(tmp_path, failures[0])
    record = json.loads(path.read_text())
    assert record["format"] == mm.CORPUS_FORMAT
    assert record["rewrite"] == "broken-sign-flip"
    assert record["transformed_gates"] <= 5
    replay = mm.replay_record(record, shots=64)
    assert not replay.ok


# ----------------------------------------------------------------------
# the committed corpus: every entry still fails (regression archive)
# ----------------------------------------------------------------------

def test_corpus_directory_has_entries():
    records = mm.load_corpus(CORPUS_DIR)
    assert records, f"no corpus entries under {CORPUS_DIR}"
    for record in records:
        assert record["format"] == mm.CORPUS_FORMAT
        assert record["transformed_gates"] <= 5


def test_corpus_entries_replay_as_failures():
    for record in mm.load_corpus(CORPUS_DIR):
        replay = mm.replay_record(record, shots=64)
        assert not replay.ok, (
            f"corpus entry {record['path']} no longer fails — if the "
            "rewrite was fixed, delete the entry; if the checker regressed, "
            "this is the bug"
        )


def test_load_corpus_rejects_unknown_format(tmp_path):
    (tmp_path / "bogus.json").write_text(json.dumps({"format": "nope"}))
    with pytest.raises(ValueError, match="unknown corpus format"):
        mm.load_corpus(tmp_path)


def test_load_corpus_missing_directory_is_empty(tmp_path):
    assert mm.load_corpus(tmp_path / "does-not-exist") == []
