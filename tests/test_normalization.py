"""Unit tests for the normalization schemes (paper footnote 3)."""

import cmath
import math

import pytest

from repro.dd.complex_table import ComplexTable
from repro.dd.edge import Edge, ZERO_EDGE
from repro.dd.node import TERMINAL
from repro.dd.normalization import NormalizationScheme, normalize
from repro.errors import DDError


def _edges(table, *weights):
    return tuple(
        Edge(TERMINAL, table.lookup(w)) if w != 0 else ZERO_EDGE for w in weights
    )


class TestL2:
    def test_unit_pair_already_normalized(self):
        table = ComplexTable()
        inv = 1.0 / math.sqrt(2.0)
        factor, edges = normalize(
            _edges(table, inv, inv), table, NormalizationScheme.L2
        )
        assert factor == ComplexTable.ONE
        assert edges[0].weight == table.lookup(inv)

    def test_norm_extracted(self):
        table = ComplexTable()
        factor, edges = normalize(
            _edges(table, 3.0, 4.0), table, NormalizationScheme.L2
        )
        assert abs(factor - 5.0) < 1e-12
        norm = math.sqrt(sum(abs(e.weight) ** 2 for e in edges))
        assert abs(norm - 1.0) < 1e-12

    def test_first_nonzero_weight_positive_real(self):
        table = ComplexTable()
        factor, edges = normalize(
            _edges(table, 1j * 0.6, 0.8j), table, NormalizationScheme.L2
        )
        first = edges[0].weight
        assert abs(first.imag) < 1e-12
        assert first.real > 0
        # Reconstruction: factor * normalized weight == original.
        assert cmath.isclose(factor * first, 0.6j, abs_tol=1e-12)

    def test_zero_first_branch(self):
        table = ComplexTable()
        factor, edges = normalize(
            _edges(table, 0.0, -2.0), table, NormalizationScheme.L2
        )
        assert edges[0] is ZERO_EDGE
        assert abs(edges[1].weight - 1.0) < 1e-12  # real, positive
        assert abs(factor + 2.0) < 1e-12

    def test_all_zero(self):
        table = ComplexTable()
        factor, edges = normalize(
            (ZERO_EDGE, ZERO_EDGE), table, NormalizationScheme.L2
        )
        assert factor == ComplexTable.ZERO
        assert all(edge is ZERO_EDGE for edge in edges)

    def test_tiny_weights_treated_as_zero(self):
        table = ComplexTable()
        factor, edges = normalize(
            _edges(table, 1e-14, 1.0), table, NormalizationScheme.L2
        )
        assert edges[0] is ZERO_EDGE


class TestMaxMagnitude:
    def test_pivot_becomes_exactly_one(self):
        table = ComplexTable()
        factor, edges = normalize(
            _edges(table, 0.5, -0.75), table, NormalizationScheme.MAX_MAGNITUDE
        )
        assert edges[1].weight == ComplexTable.ONE
        assert abs(factor + 0.75) < 1e-12

    def test_tie_broken_towards_smaller_index(self):
        table = ComplexTable()
        factor, edges = normalize(
            _edges(table, 0.5, 0.5), table, NormalizationScheme.MAX_MAGNITUDE
        )
        assert edges[0].weight == ComplexTable.ONE
        assert abs(factor - 0.5) < 1e-12

    def test_four_edges(self):
        table = ComplexTable()
        factor, edges = normalize(
            _edges(table, 0.0, 1j, 0.0, -1j),
            table,
            NormalizationScheme.MAX_MAGNITUDE,
        )
        assert edges[1].weight == ComplexTable.ONE
        assert abs(factor - 1j) < 1e-12
        assert edges[3].weight == table.lookup(-1.0)

    def test_reconstruction(self):
        table = ComplexTable()
        weights = (0.1 + 0.2j, -0.3, 0.05j, 0.0)
        factor, edges = normalize(
            _edges(table, *weights), table, NormalizationScheme.MAX_MAGNITUDE
        )
        for original, edge in zip(weights, edges):
            assert cmath.isclose(factor * edge.weight, original, abs_tol=1e-12)


class TestNearZeroClamp:
    """Near-zero and non-finite weights must never reach normalization."""

    def test_sub_tolerance_magnitude_clamped_both_schemes(self):
        table = ComplexTable()
        tiny = complex(table.tolerance * 0.5, -table.tolerance * 0.5)
        for scheme in NormalizationScheme:
            factor, edges = normalize(
                (Edge(TERMINAL, tiny), Edge(TERMINAL, table.lookup(0.8))),
                table,
                scheme,
            )
            assert edges[0] is ZERO_EDGE
            assert not edges[1].is_zero

    def test_tiny_weight_never_becomes_pivot(self):
        # If the only non-zero weight is sub-tolerance, the whole node must
        # collapse to the zero stub — dividing by a ~1e-11 pivot would blow
        # its rounding noise up into garbage sibling phases.
        table = ComplexTable()
        tiny = complex(table.tolerance * 0.9, 0.0)
        for scheme in NormalizationScheme:
            factor, edges = normalize(
                (Edge(TERMINAL, tiny), ZERO_EDGE), table, scheme
            )
            assert factor == ComplexTable.ZERO
            assert all(edge is ZERO_EDGE for edge in edges)

    def test_non_finite_weight_rejected(self):
        table = ComplexTable()
        for bad in (
            complex(float("inf"), 0.0),
            complex(0.0, float("-inf")),
            complex(float("nan"), 0.0),
        ):
            with pytest.raises(DDError):
                normalize(
                    (Edge(TERMINAL, bad), Edge(TERMINAL, ComplexTable.ONE)),
                    table,
                    NormalizationScheme.MAX_MAGNITUDE,
                )
