"""Integration tests over the realistic OpenQASM corpus in tests/data."""

import math
import os

import numpy as np
import pytest

from repro.qc import library
from repro.qc.qasm import circuit_to_qasm, parse_qasm, parse_qasm_file
from repro.simulation import (
    DDSimulator,
    DensityMatrixSimulator,
    StatevectorSimulator,
    build_unitary,
)
from repro.verification import check_equivalence_construct

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
ALL_FILES = sorted(
    name for name in os.listdir(DATA_DIR) if name.endswith(".qasm")
)


def _load(name):
    return parse_qasm_file(os.path.join(DATA_DIR, name))


class TestCorpusParses:
    @pytest.mark.parametrize("name", ALL_FILES)
    def test_parses_and_simulates(self, name):
        circuit = _load(name)
        simulator = DDSimulator(circuit, seed=0)
        simulator.run_all()
        assert abs(np.linalg.norm(simulator.statevector()) - 1.0) < 1e-9

    @pytest.mark.parametrize("name", ALL_FILES)
    def test_dd_and_dense_simulators_agree(self, name):
        circuit = _load(name)
        # Fix every measurement outcome to 0-where-possible by seeding both
        # identically through forced stepping.
        dd = DDSimulator(circuit, seed=123)
        dense = StatevectorSimulator(circuit, seed=123)
        while not dd.at_end:
            record = dd.step_forward()
            dense.step(outcome=record.outcome)
        assert np.allclose(dd.statevector(), dense.state, atol=1e-9)

    @pytest.mark.parametrize(
        "name", [n for n in ALL_FILES
                 if n in ("variational.qasm", "phaseflip_encoder.qasm",
                          "iqft4.qasm")]
    )
    def test_unitary_files_roundtrip_through_export(self, name):
        circuit = _load(name)
        reparsed = parse_qasm(circuit_to_qasm(circuit))
        result = check_equivalence_construct(circuit, reparsed)
        assert result.equivalent


class TestAdder:
    def test_computes_one_plus_one_plus_one(self):
        simulator = DensityMatrixSimulator(_load("adder.qasm"))
        simulator.run()
        # 1 + 1 + 1 = 0b11: sum = 1 (c0), carry = 1 (c1).
        assert simulator.classical_distribution() == {"11": pytest.approx(1.0)}

    def test_truth_table(self):
        """Drive all eight input combinations by rewriting the x-prep."""
        source = open(os.path.join(DATA_DIR, "adder.qasm")).read()
        base = source.replace("x a[0];\n", "").replace(
            "x b[0];\n", ""
        ).replace("x cin[0];\n", "")
        for cin in (0, 1):
            for a in (0, 1):
                for b in (0, 1):
                    prep = ""
                    if a:
                        prep += "x a[0];\n"
                    if b:
                        prep += "x b[0];\n"
                    if cin:
                        prep += "x cin[0];\n"
                    text = base.replace("barrier cin, a, b, cout;",
                                        prep + "barrier cin, a, b, cout;", 1)
                    simulator = DensityMatrixSimulator(parse_qasm(text))
                    simulator.run()
                    total = a + b + cin
                    expected = format((total >> 1) << 1 | (total & 1), "02b")
                    assert simulator.classical_distribution() == {
                        expected: pytest.approx(1.0)
                    }, (cin, a, b)


class TestIqft4:
    def test_is_inverse_of_library_qft(self):
        circuit = _load("iqft4.qasm")
        product = build_unitary(circuit) @ build_unitary(library.qft(4))
        assert np.allclose(product, np.eye(16), atol=1e-9)


class TestPhaseFlipEncoder:
    def test_codewords(self):
        circuit = _load("phaseflip_encoder.qasm")
        simulator = DDSimulator(circuit)
        simulator.run_all()
        vector = simulator.statevector()
        alpha = math.cos(0.35)
        beta = math.sin(0.35)
        plus = np.array([1, 1]) / math.sqrt(2)
        minus = np.array([1, -1]) / math.sqrt(2)
        expected = alpha * np.kron(plus, np.kron(plus, plus)) + beta * np.kron(
            minus, np.kron(minus, minus)
        )
        assert np.allclose(vector, expected, atol=1e-9)


class TestTeleport:
    def test_all_branches_deliver_the_state(self):
        circuit = _load("teleport.qasm")
        exact = DensityMatrixSimulator(circuit)
        exact.run()
        # The message state on q0, averaged over branches, must be pure.
        reduced = exact.reduced_density_matrix([0])
        alpha = math.cos(0.45)
        beta = math.sin(0.45) * complex(math.cos(0.4), math.sin(0.4))
        expected = np.outer([alpha, beta], np.conj([alpha, beta]))
        assert np.allclose(reduced, expected, atol=1e-9)


class TestResetReuse:
    def test_second_measurement_unbiased(self):
        circuit = _load("reset_reuse.qasm")
        exact = DensityMatrixSimulator(circuit)
        exact.run()
        distribution = exact.classical_distribution()
        # c0 from the Bell measurement: 50/50; c1 after reset + H: 50/50,
        # independent.
        for outcome in ("00", "01", "10", "11"):
            assert distribution[outcome] == pytest.approx(0.25)
