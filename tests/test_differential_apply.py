"""Differential fuzzer: storage backends vs. matrix path vs. dense reference.

Every seeded random circuit (1-6 qubits; mixed single-qubit, controlled,
multi-controlled and two-qubit gates; no measurements) is executed four
ways:

* the direct apply kernels on **pooled** index storage (the default);
* the direct apply kernels on **object** storage (the storage oracle —
  the two backends run the same arithmetic in the same order, so their
  statevectors must agree *bit for bit*, not merely within tolerance);
* the legacy matrix-DD path (gate DD + multiply), the structural oracle;
* the dense statevector simulator of :mod:`repro.simulation.statevector`,
  the independent numerical oracle.

Kernel/matrix/dense must agree amplitude-by-amplitude to ``1e-10``;
pooled/object must be byte-identical and build identically sized DDs.

The base seed rotates in CI (``DIFFERENTIAL_SEED`` environment variable,
derived from the run number and echoed into the log); locally it defaults
to 0 so the suite is reproducible.  To replay a CI failure::

    DIFFERENTIAL_SEED=<seed from the CI log> python -m pytest \
        tests/test_differential_apply.py -q
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dd.governance import MemoryBudget
from repro.dd.package import DDPackage
from repro.qc.circuit import QuantumCircuit
from repro.qc.operations import GateOp
from repro.simulation.simulator import DDSimulator
from repro.simulation.statevector import StatevectorSimulator

TOLERANCE = 1e-10
NUM_CASES = 200

BASE_SEED = int(os.environ.get("DIFFERENTIAL_SEED", "0"))

_FIXED_1Q = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg")
_PARAM_1Q = ("rx", "ry", "rz", "p", "u2", "u3")


def _random_gate_params(name: str, rng: np.random.Generator):
    count = {"u2": 2, "u3": 3}.get(name, 1)
    return tuple(float(angle) for angle in rng.uniform(0.0, 2.0 * np.pi, count))


def _random_single_gate(rng: np.random.Generator):
    if rng.random() < 0.5:
        return str(rng.choice(_FIXED_1Q)), ()
    name = str(rng.choice(_PARAM_1Q))
    return name, _random_gate_params(name, rng)


def _split_controls(lines, rng: np.random.Generator):
    """Partition control lines into positive and negative controls."""
    positive, negative = [], []
    for line in lines:
        (positive if rng.random() < 0.7 else negative).append(int(line))
    return tuple(positive), tuple(negative)


def random_mixed_circuit(
    num_qubits: int, depth: int, rng: np.random.Generator
) -> QuantumCircuit:
    """A random circuit exercising every kernel family.

    Mix (for ``num_qubits >= 2``): ~35% (multi-)controlled single-qubit
    gates with mixed control polarity, ~10% SWAP (sometimes Fredkin),
    ~5% iSWAP, rest plain single-qubit gates.
    """
    circuit = QuantumCircuit(num_qubits, name=f"fuzz_{num_qubits}x{depth}")
    for _ in range(depth):
        roll = rng.random()
        if num_qubits >= 2 and roll < 0.35:
            lines = rng.permutation(num_qubits)
            max_controls = min(3, num_qubits - 1)
            num_controls = int(rng.integers(1, max_controls + 1))
            target = int(lines[0])
            controls, negatives = _split_controls(lines[1 : 1 + num_controls], rng)
            name, params = _random_single_gate(rng)
            circuit.append(
                GateOp(
                    gate=name,
                    params=params,
                    targets=(target,),
                    controls=controls,
                    negative_controls=negatives,
                )
            )
        elif num_qubits >= 2 and roll < 0.45:
            lines = rng.permutation(num_qubits)
            a, b = sorted((int(lines[0]), int(lines[1])), reverse=True)
            if num_qubits >= 3 and rng.random() < 0.4:
                controls, negatives = _split_controls((int(lines[2]),), rng)
            else:
                controls, negatives = (), ()
            circuit.append(
                GateOp(
                    gate="swap",
                    targets=(a, b),
                    controls=controls,
                    negative_controls=negatives,
                )
            )
        elif num_qubits >= 2 and roll < 0.5:
            lines = rng.permutation(num_qubits)
            a, b = sorted((int(lines[0]), int(lines[1])), reverse=True)
            circuit.append(
                GateOp(
                    gate="iswap" if rng.random() < 0.5 else "iswapdg",
                    targets=(a, b),
                )
            )
        else:
            name, params = _random_single_gate(rng)
            circuit.append(
                GateOp(
                    gate=name,
                    params=params,
                    targets=(int(rng.integers(num_qubits)),),
                )
            )
    return circuit


def _case_circuit(case: int) -> QuantumCircuit:
    rng = np.random.default_rng(BASE_SEED * 1_000_003 + case)
    num_qubits = int(rng.integers(1, 7))
    depth = int(rng.integers(8, 9 + 3 * num_qubits))
    return random_mixed_circuit(num_qubits, depth, rng)


@pytest.mark.parametrize("case", range(NUM_CASES))
def test_three_way_amplitude_agreement(case):
    circuit = _case_circuit(case)
    kernel_sim = DDSimulator(circuit, use_apply_kernels=True, storage="pooled")
    kernel_sim.run_all()
    object_sim = DDSimulator(circuit, use_apply_kernels=True, storage="object")
    object_sim.run_all()
    matrix_sim = DDSimulator(circuit, use_apply_kernels=False)
    matrix_sim.run_all()
    dense = StatevectorSimulator(circuit)
    dense.run()

    kernel_vector = kernel_sim.statevector()
    object_vector = object_sim.statevector()
    matrix_vector = matrix_sim.statevector()
    label = f"case {case} (base seed {BASE_SEED}): {circuit.name}"
    assert np.abs(kernel_vector - dense.state).max() < TOLERANCE, (
        f"{label}: kernel path deviates from the dense reference"
    )
    assert np.abs(matrix_vector - dense.state).max() < TOLERANCE, (
        f"{label}: matrix path deviates from the dense reference"
    )
    assert np.abs(kernel_vector - matrix_vector).max() < TOLERANCE, (
        f"{label}: kernel path deviates from the matrix path"
    )
    # Storage oracle: pooled and object run the same arithmetic in the
    # same order — byte-identical amplitudes, identically sized DDs.
    assert np.array_equal(kernel_vector, object_vector), (
        f"{label}: pooled storage is not bit-exact against object storage"
    )
    assert kernel_sim.node_count() == object_sim.node_count(), (
        f"{label}: storage backends disagree on the final DD size"
    )
    # The kernel path never constructs an operation DD.
    assert kernel_sim.package._matrix_unique.misses == 0
    assert object_sim.package._matrix_unique.misses == 0


# Aggregate bookkeeping for the 4-way sweep: tiny circuits may never hit
# the pressure window, so "sifting actually fired" is asserted over the
# whole sweep rather than per case.
_PRESSURE_STATS = {"cases": 0, "reorder_runs": 0, "identity_skips": 0}


@pytest.mark.parametrize("case", range(NUM_CASES))
def test_four_way_reorder_and_skipping_agreement(case):
    """The 4-way differential sweep over the dynamic-order features.

    Each seeded circuit runs on {object, pooled} storage under (a)
    ``identity_skipping=True`` on the legacy matrix path — every gate is
    a full matrix DD, so the skip reduction fires constantly — and (b)
    ``reorder="pressure"`` under a deliberately tiny node budget, so the
    governor sifts mid-circuit.  All four legs must agree with the legacy
    object-path oracle amplitude-by-amplitude to ``TOLERANCE``
    (``to_vector`` undoes the recorded qubit permutation), and the two
    skipping legs must additionally be bit-exact against each other.
    """
    circuit = _case_circuit(case)
    oracle = DDSimulator(circuit, use_apply_kernels=False, storage="object")
    oracle.run_all()
    reference = oracle.statevector()
    label = f"case {case} (base seed {BASE_SEED}): {circuit.name}"

    skip_vectors = {}
    skip_nodes = {}
    for storage in ("pooled", "object"):
        skip_package = DDPackage(
            storage=storage, identity_skipping=True, use_apply_kernels=False
        )
        skip_sim = DDSimulator(circuit, package=skip_package)
        skip_sim.run_all()
        vector = skip_sim.statevector()
        assert np.abs(vector - reference).max() < TOLERANCE, (
            f"{label}: identity-skipping ({storage}) deviates from the oracle"
        )
        skip_vectors[storage] = vector
        skip_nodes[storage] = skip_sim.node_count()
        _PRESSURE_STATS["identity_skips"] += skip_package.identity_skip_count

        pressure_package = DDPackage(
            storage=storage,
            use_apply_kernels=True,
            reorder="pressure",
            budget=MemoryBudget(max_nodes=30, check_interval=1),
        )
        pressure_sim = DDSimulator(circuit, package=pressure_package)
        pressure_sim.run_all()
        vector = pressure_sim.statevector()
        assert np.abs(vector - reference).max() < TOLERANCE, (
            f"{label}: pressure reordering ({storage}) deviates from the "
            f"oracle (order {pressure_package.qubit_order})"
        )
        _PRESSURE_STATS["reorder_runs"] += pressure_package._reorder_runs
    # The two skipping legs run the same arithmetic in the same order:
    # byte-identical amplitudes, identically sized DDs.
    assert np.array_equal(skip_vectors["pooled"], skip_vectors["object"]), (
        f"{label}: skipping legs are not bit-exact across storage backends"
    )
    assert skip_nodes["pooled"] == skip_nodes["object"], (
        f"{label}: skipping legs disagree on the final DD size"
    )
    _PRESSURE_STATS["cases"] += 1


def test_four_way_sweep_exercised_the_features():
    """Over the full sweep, sifting fired and identities were skipped.

    Guarded so a partial run (``-k``, a single case) skips instead of
    reporting a vacuous failure.
    """
    if _PRESSURE_STATS["cases"] < NUM_CASES:
        pytest.skip("aggregate check needs the full case sweep")
    assert _PRESSURE_STATS["reorder_runs"] > 0, (
        "no pressure-triggered reorder ran across the whole sweep"
    )
    assert _PRESSURE_STATS["identity_skips"] > 0, (
        "the identity-skipping reduction never fired across the whole sweep"
    )


def test_fuzzer_covers_every_kernel():
    """Across all cases the fuzzer exercises each kernel family at least
    once (counters are only collected when observability is on, so count
    operation kinds on the circuits themselves)."""
    controlled = swaps = iswaps = plain = 0
    for case in range(NUM_CASES):
        for operation in _case_circuit(case):
            if operation.gate in ("iswap", "iswapdg"):
                iswaps += 1
            elif operation.gate == "swap":
                swaps += 1
            elif operation.num_controls:
                controlled += 1
            else:
                plain += 1
    assert min(controlled, swaps, iswaps, plain) > 0
