"""Tests for the SSE streaming layer and the live dashboard.

In-process tests drive :class:`ServiceApp` directly (a
:class:`StreamingResponse` is just an iterator of SSE chunks), covering
replay, Last-Event-ID resume, slow-subscriber drop-oldest, session
expiry/eviction ending streams, the stream cap, and shutdown drain.  The
loopback test at the bottom is the acceptance scenario: one session driven
to completion under 9 concurrent SSE subscribers (6 frame streams + 3
metric streams), every frame subscriber forcing one reconnect and still
receiving every step frame in order with zero duplicates.
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.qc import library
from repro.service import DDToolServer, ServiceConfig, StreamingResponse
from repro.service.app import Request, ServiceApp

GHZ = library.ghz_state(2).to_qasm()
QFT = library.qft(3).to_qasm()


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def make_app(**overrides):
    defaults = dict(
        workers=0, metrics_interval=0.05, heartbeat_interval=0.1,
    )
    defaults.update(overrides)
    return ServiceApp(ServiceConfig(**defaults))


def post(app, path, payload):
    return app.handle(Request("POST", path, body=json.dumps(payload).encode()))


def parse_sse(chunk):
    """One SSE chunk -> (id or None, event or None, data dict or None)."""
    event_id, kind, data = None, None, None
    for line in chunk.decode().splitlines():
        if line.startswith("id: "):
            event_id = int(line[4:])
        elif line.startswith("event: "):
            kind = line[7:]
        elif line.startswith("data: "):
            data = json.loads(line[6:])
    return event_id, kind, data


def collect(iterator, count, skip_comments=True, limit=200):
    """Pull ``count`` parsed SSE events (skipping heartbeats/retry hints)."""
    events = []
    for _ in range(limit):
        chunk = next(iterator)
        if skip_comments and (chunk.startswith(b":") or chunk.startswith(b"retry")):
            continue
        events.append(parse_sse(chunk))
        if len(events) == count:
            return events
    raise AssertionError(f"only {len(events)} of {count} events arrived")


def drain(iterator):
    return list(iterator)


# ----------------------------------------------------------------------
# session frame streams (in-process)
# ----------------------------------------------------------------------
class TestSessionStream:
    def test_fresh_subscriber_replays_all_frames_in_order(self):
        app = make_app()
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": GHZ,
            }).body)
            sid = created["session_id"]
            post(app, f"/sessions/{sid}/step", {"action": "to_end"})
            stream = app.handle(Request("GET", f"/sessions/{sid}/stream"))
            assert isinstance(stream, StreamingResponse)
            assert stream.content_type == "text/event-stream"
            events = collect(stream.chunks, created["total"] + 1)
            assert [kind for _, kind, _ in events] == ["frame"] * (created["total"] + 1)
            assert [data["index"] for _, _, data in events] == list(
                range(created["total"] + 1)
            )
            ids = [event_id for event_id, _, _ in events]
            assert ids == sorted(ids)
            first = events[0][2]
            assert first["svg"].startswith("<svg") and first["node_count"] >= 1
            assert first["text"]
            stream.close()
        finally:
            app.close()

    def test_last_event_id_resumes_without_duplicates(self):
        app = make_app()
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": GHZ,
            }).body)
            sid = created["session_id"]
            post(app, f"/sessions/{sid}/step", {"action": "forward"})
            first = app.handle(Request("GET", f"/sessions/{sid}/stream"))
            seen = collect(first.chunks, 2)
            first.close()  # client vanishes mid-stream
            cursor = seen[-1][0]
            post(app, f"/sessions/{sid}/step", {"action": "to_end"})
            second = app.handle(Request(
                "GET", f"/sessions/{sid}/stream",
                headers={"last-event-id": str(cursor)},
            ))
            rest = collect(second.chunks, created["total"] + 1 - len(seen))
            indices = [d["index"] for _, _, d in seen + rest]
            assert indices == list(range(created["total"] + 1))
            assert len(set(e[0] for e in seen + rest)) == len(indices)
            second.close()
        finally:
            app.close()

    def test_bad_last_event_id_is_400(self):
        app = make_app()
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": GHZ,
            }).body)
            response = app.handle(Request(
                "GET", f"/sessions/{created['session_id']}/stream",
                headers={"last-event-id": "banana"},
            ))
            assert response.status == 400
        finally:
            app.close()

    def test_slow_subscriber_drops_oldest_and_counts(self):
        app = make_app(stream_queue=4)
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": QFT,
            }).body)
            sid = created["session_id"]
            stream = app.handle(Request("GET", f"/sessions/{sid}/stream"))
            # Never consume while the session races ahead: the per-
            # subscriber ring (4 slots) must shed the *oldest* frames.
            post(app, f"/sessions/{sid}/step", {"action": "to_end"})
            total_frames = created["total"] + 1
            assert total_frames > 4
            events = collect(stream.chunks, 4, limit=20)
            indices = [d["index"] for _, _, d in events]
            assert indices == list(range(total_frames - 4, total_frames))
            dropped = app.registry.counter("dd_stream_dropped_total").value
            assert dropped == total_frames - 4
            stream.close()
        finally:
            app.close()

    def test_stream_ends_when_session_deleted(self):
        app = make_app()
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": GHZ,
            }).body)
            sid = created["session_id"]
            stream = app.handle(Request("GET", f"/sessions/{sid}/stream"))
            collect(stream.chunks, 1)
            app.handle(Request("DELETE", f"/sessions/{sid}"))
            tail = [parse_sse(c) for c in drain(stream.chunks)
                    if not c.startswith(b":")]
            assert tail[-1][1] == "closed"
            assert tail[-1][2]["reason"] == "deleted"
            assert app.active_streams == 0
        finally:
            app.close()

    def test_stream_ends_when_session_expires(self):
        app = make_app(session_ttl=0.15)
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": GHZ,
            }).body)
            stream = app.handle(
                Request("GET", f"/sessions/{created['session_id']}/stream")
            )
            collect(stream.chunks, 1)
            time.sleep(0.2)
            app.handle(Request("GET", "/sessions"))  # triggers the purge
            tail = [parse_sse(c) for c in drain(stream.chunks)
                    if not c.startswith(b":")]
            assert tail[-1][1] == "closed"
            assert tail[-1][2]["reason"] == "expired"
        finally:
            app.close()

    def test_stream_ends_when_session_evicted(self):
        app = make_app(max_sessions=1)
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": GHZ,
            }).body)
            stream = app.handle(
                Request("GET", f"/sessions/{created['session_id']}/stream")
            )
            collect(stream.chunks, 1)
            post(app, "/sessions", {"kind": "simulation", "qasm": GHZ})
            tail = [parse_sse(c) for c in drain(stream.chunks)
                    if not c.startswith(b":")]
            assert tail[-1][1] == "closed"
            assert tail[-1][2]["reason"] == "evicted"
        finally:
            app.close()

    def test_stream_cap_returns_503(self):
        app = make_app(max_streams=2)
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": GHZ,
            }).body)
            sid = created["session_id"]
            streams = [
                app.handle(Request("GET", f"/sessions/{sid}/stream"))
                for _ in range(2)
            ]
            rejected = app.handle(Request("GET", f"/sessions/{sid}/stream"))
            assert rejected.status == 503
            assert "Retry-After" in rejected.headers
            streams[0].close()
            accepted = app.handle(Request("GET", f"/sessions/{sid}/stream"))
            assert isinstance(accepted, StreamingResponse)
            for stream in streams[1:] + [accepted]:
                stream.close()
        finally:
            app.close()

    def test_unknown_session_is_404(self):
        app = make_app()
        try:
            assert app.handle(
                Request("GET", "/sessions/deadbeef/stream")
            ).status == 404
        finally:
            app.close()


# ----------------------------------------------------------------------
# metrics stream (in-process)
# ----------------------------------------------------------------------
class TestMetricsStream:
    def test_snapshot_then_delta(self):
        app = make_app()
        try:
            stream = app.handle(Request("GET", "/stream/metrics"))
            [(_, kind, snapshot)] = collect(stream.chunks, 1)
            assert kind == "snapshot"
            names = {m["name"] for m in snapshot["metrics"]}
            assert "service_requests_total" in names
            post(app, "/sessions", {"kind": "simulation", "qasm": GHZ})
            events = collect(stream.chunks, 2, limit=40)
            kinds = [k for _, k, _ in events]
            assert "session.created" in kinds
            assert "delta" in kinds
            delta = next(d for _, k, d in events if k == "delta")
            assert delta["metrics"], "delta must carry the changed metrics"
            stream.close()
        finally:
            app.close()

    def test_forwarded_bus_events_carry_ids_but_deltas_do_not(self):
        app = make_app()
        try:
            stream = app.handle(Request("GET", "/stream/metrics"))
            collect(stream.chunks, 1)  # snapshot: synthetic, no id
            post(app, "/sessions", {"kind": "simulation", "qasm": GHZ})
            events = collect(stream.chunks, 2, limit=40)
            for event_id, kind, _ in events:
                if kind in ("delta", "snapshot"):
                    assert event_id is None
                else:
                    assert event_id is not None
            stream.close()
        finally:
            app.close()

    def test_shutdown_drains_all_streams(self):
        app = make_app()
        try:
            created = json.loads(post(app, "/sessions", {
                "kind": "simulation", "qasm": GHZ,
            }).body)
            metrics = app.handle(Request("GET", "/stream/metrics"))
            frames = app.handle(
                Request("GET", f"/sessions/{created['session_id']}/stream")
            )
            collect(metrics.chunks, 1)
            collect(frames.chunks, 1)
            assert app.active_streams == 2
            app.begin_shutdown()
            metric_tail = [parse_sse(c) for c in drain(metrics.chunks)
                           if not c.startswith(b":")]
            assert metric_tail[-1][1] == "shutdown"
            drain(frames.chunks)
            assert app.active_streams == 0
            late = app.handle(Request("GET", "/stream/metrics"))
            assert late.status == 503
        finally:
            app.close()

    def test_streams_open_gauge_tracks_connections(self):
        app = make_app()
        try:
            gauge = app.registry.gauge("service_streams_open")
            stream = app.handle(Request("GET", "/stream/metrics"))
            assert gauge.value == 1
            stream.close()
            assert gauge.value == 0
        finally:
            app.close()


# ----------------------------------------------------------------------
# satellites: rate-limit exemption, dashboard page
# ----------------------------------------------------------------------
class TestOperatorEndpoints:
    def test_report_is_exempt_from_rate_limiting(self):
        app = make_app(rate_limit=0.0001, rate_burst=1)
        try:
            assert app.handle(Request("GET", "/sessions")).status == 200
            assert app.handle(Request("GET", "/sessions")).status == 429
            for path in ("/report", "/healthz", "/metrics"):
                assert app.handle(Request("GET", path)).status == 200, path
        finally:
            app.close()

    def test_dashboard_is_self_contained_html(self):
        app = make_app()
        try:
            response = app.handle(Request("GET", "/dashboard"))
            assert response.status == 200
            assert response.content_type.startswith("text/html")
            page = response.body.decode()
            assert "http://" not in page and "https://" not in page
            assert "EventSource" in page
            assert "/stream/metrics" in page
            assert "/stream" in page and "dashboard" in page.lower()
        finally:
            app.close()


# ----------------------------------------------------------------------
# acceptance: loopback e2e with concurrent subscribers and reconnects
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        host="127.0.0.1", port=0, workers=0, metrics_interval=0.05,
        heartbeat_interval=0.5, drain_timeout=5.0,
    )
    instance = DDToolServer(config).start()
    yield instance
    instance.stop()


def _open_stream(server, path, last_event_id=None):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=10)
    headers = {}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    connection.request("GET", path, headers=headers)
    response = connection.getresponse()
    assert response.status == 200, response.read()
    return connection, response


def _read_sse(response):
    """Yield (id, event, data) triples; heartbeats are skipped."""
    event_id, kind, data_lines = None, None, []
    while True:
        raw = response.readline()
        if not raw:
            return
        line = raw.decode().rstrip("\n")
        if line.startswith(":") or line.startswith("retry:"):
            continue
        if line == "":
            if kind is not None or data_lines:
                data = json.loads("\n".join(data_lines)) if data_lines else None
                yield event_id, kind, data
            event_id, kind, data_lines = None, None, []
            continue
        if line.startswith("id: "):
            event_id = int(line[4:])
        elif line.startswith("event: "):
            kind = line[7:]
        elif line.startswith("data: "):
            data_lines.append(line[6:])


def _frame_subscriber(server, sid, total, out, errors):
    """Collect every frame, forcing one reconnect partway through."""
    try:
        frames = []
        connection, response = _open_stream(server, f"/sessions/{sid}/stream")
        cursor = None
        for event_id, kind, data in _read_sse(response):
            if kind != "frame":
                continue
            frames.append(data["index"])
            cursor = event_id
            if len(frames) == 2:
                break
        connection.close()  # the forced reconnect
        connection, response = _open_stream(
            server, f"/sessions/{sid}/stream", last_event_id=cursor
        )
        for _, kind, data in _read_sse(response):
            if kind == "frame":
                frames.append(data["index"])
                if data["index"] == total:
                    break
            elif kind == "closed":
                break
        connection.close()
        out.append(frames)
    except Exception as error:  # noqa: BLE001 - surfaced by the assertion
        errors.append(error)


def _metrics_subscriber(server, done, out, errors):
    try:
        kinds = []
        connection, response = _open_stream(server, "/stream/metrics")
        for _, kind, _ in _read_sse(response):
            kinds.append(kind)
            if done.is_set() and "delta" in kinds:
                break
        connection.close()
        out.append(kinds)
    except Exception as error:  # noqa: BLE001
        errors.append(error)


def test_e2e_session_completion_under_concurrent_subscribers(server):
    host, port = server.address
    control = HTTPConnection(host, port, timeout=30)
    control.request("POST", "/sessions", body=json.dumps({
        "kind": "simulation", "qasm": QFT,
    }), headers={"Content-Type": "application/json"})
    created = json.loads(control.getresponse().read())
    sid, total = created["session_id"], created["total"]
    assert total >= 4

    frame_results, metric_results, errors = [], [], []
    done = threading.Event()
    threads = [
        threading.Thread(
            target=_frame_subscriber,
            args=(server, sid, total, frame_results, errors),
        )
        for _ in range(6)
    ] + [
        threading.Thread(
            target=_metrics_subscriber,
            args=(server, done, metric_results, errors),
        )
        for _ in range(3)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.2)  # let every subscriber attach before stepping

    # Drive the session to completion, one operation at a time.
    for _ in range(total):
        control.request("POST", f"/sessions/{sid}/step", body=json.dumps({
            "action": "forward",
        }), headers={"Content-Type": "application/json"})
        response = control.getresponse()
        assert response.status == 200, response.read()
        response.read()
        time.sleep(0.02)
    done.set()

    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive(), "a subscriber never finished"
    assert not errors, errors

    # Every frame subscriber saw every frame exactly once, in order,
    # despite its forced reconnect.
    assert len(frame_results) == 6
    for frames in frame_results:
        assert frames == list(range(total + 1))
    # Every metrics subscriber got the initial snapshot and live deltas.
    assert len(metric_results) == 3
    for kinds in metric_results:
        assert kinds[0] == "snapshot"
        assert "delta" in kinds

    control.request("DELETE", f"/sessions/{sid}")
    control.getresponse().read()
    control.close()


def test_server_stop_drains_open_streams(server_factory=None):
    config = ServiceConfig(
        host="127.0.0.1", port=0, workers=0, metrics_interval=0.05,
        heartbeat_interval=0.2, drain_timeout=5.0,
    )
    instance = DDToolServer(config).start()
    connection, response = _open_stream(instance, "/stream/metrics")
    reader = _read_sse(response)
    assert next(reader)[1] == "snapshot"
    start = time.monotonic()
    instance.stop()
    elapsed = time.monotonic() - start
    assert elapsed < config.drain_timeout, "stop() waited for the drain timeout"
    tail = list(reader)
    assert tail and tail[-1][1] == "shutdown"
    connection.close()
    assert instance.app.active_streams == 0
