"""Every example script must run cleanly end to end (deliverable check).

Each example is executed as a subprocess in a temporary working directory
(they write their artifacts into the cwd), with a generous timeout.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples"
)
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)
ALL_EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def _subprocess_env() -> dict:
    """The examples import `repro` without being installed: prepend the
    repo's src/ directory to the subprocess's PYTHONPATH."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        SRC_DIR if not existing else SRC_DIR + os.pathsep + existing
    )
    # Examples run against a fixed wall-clock budget; an ambient
    # sanitize-every-op setting (e.g. the CI sanitize job's environment)
    # would blow the timeout on the density-matrix examples.  Sanitizer
    # coverage of these code paths lives in the dedicated suites.
    env.pop("REPRO_SANITIZE_EVERY", None)
    return env


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name, tmp_path):
    script = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    completed = subprocess.run(
        [sys.executable, script],
        cwd=tmp_path,
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{name} failed:\n{completed.stdout[-2000:]}\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{name} produced no output"


def test_expected_example_set():
    """The README promises these examples; keep the list in sync."""
    expected = {
        "quickstart.py",
        "teleportation.py",
        "verify_compilation.py",
        "render_gallery.py",
        "grover_search.py",
        "mixed_states.py",
        "noisy_phase_estimation.py",
        "ising_energy.py",
    }
    assert expected <= set(ALL_EXAMPLES)
