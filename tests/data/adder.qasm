// One-bit full adder: (cin, a, b) -> sum on b, carry-out on cout.
OPENQASM 2.0;
include "qelib1.inc";
qreg cin[1];
qreg a[1];
qreg b[1];
qreg cout[1];
creg result[2];
// set inputs a=1, b=1, cin=1
x a[0];
x b[0];
x cin[0];
barrier cin, a, b, cout;
// MAJ / UMA style adder
ccx a[0], b[0], cout[0];
cx a[0], b[0];
ccx cin[0], b[0], cout[0];
cx cin[0], b[0];
barrier cin, a, b, cout;
measure b[0] -> result[0];
measure cout[0] -> result[1];
