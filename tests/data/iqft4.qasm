// Inverse QFT on 4 qubits built from a user-defined controlled phase.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
gate cphase(theta) c, t {
  p(theta/2) c;
  cx c, t;
  p(-theta/2) t;
  cx c, t;
  p(theta/2) t;
}
swap q[0], q[3];
swap q[1], q[2];
h q[0];
cphase(-pi/2) q[0], q[1];
h q[1];
cphase(-pi/4) q[0], q[2];
cphase(-pi/2) q[1], q[2];
h q[2];
cphase(-pi/8) q[0], q[3];
cphase(-pi/4) q[1], q[3];
cphase(-pi/2) q[2], q[3];
h q[3];
