// Hardware-efficient two-layer variational ansatz on 4 qubits.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
gate layer(t1, t2) a, b {
  ry(t1) a;
  ry(t2) b;
  cx a, b;
  rz(t1/2) b;
}
layer(pi/3, pi/5) q[0], q[1];
layer(pi/7, -pi/4) q[2], q[3];
barrier q;
layer(0.25, 0.5) q[1], q[2];
layer(sin(1.0), cos(1.0)) q[3], q[0];
