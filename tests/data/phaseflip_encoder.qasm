// Three-qubit phase-flip code encoder: |psi>|00> -> alpha|+++> + beta|--->
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
ry(0.7) q[2];
cx q[2], q[1];
cx q[2], q[0];
h q;
