"""Unit tests for the complex-number table."""

import math

import pytest

from repro.dd.complex_table import ComplexTable, DEFAULT_TOLERANCE, phase_of


class TestLookup:
    def test_zero_and_one_are_exact(self):
        table = ComplexTable()
        assert table.lookup(0.0) == ComplexTable.ZERO
        assert table.lookup(1.0 + 0.0j) == ComplexTable.ONE

    def test_nearby_values_unify(self):
        table = ComplexTable()
        first = table.lookup(0.123456789)
        second = table.lookup(0.123456789 + DEFAULT_TOLERANCE / 10)
        assert first == second
        assert first is not None

    def test_distant_values_stay_distinct(self):
        table = ComplexTable()
        first = table.lookup(0.5)
        second = table.lookup(0.5 + 100 * DEFAULT_TOLERANCE)
        assert first != second

    def test_near_one_snaps_to_exact_one(self):
        table = ComplexTable()
        assert table.lookup(1.0 + DEFAULT_TOLERANCE / 5) == ComplexTable.ONE

    def test_near_zero_snaps_to_exact_zero(self):
        table = ComplexTable()
        assert table.lookup(complex(1e-14, -1e-14)) == ComplexTable.ZERO

    def test_bucket_boundary_values_unify(self):
        # Two values straddling a bucket boundary but within tolerance must
        # still be identified (the 3x3 neighbourhood search).
        tolerance = 1e-6
        table = ComplexTable(tolerance)
        base = 5 * tolerance  # exactly on a bucket boundary
        first = table.lookup(base - tolerance / 4)
        second = table.lookup(base + tolerance / 4)
        assert first == second

    def test_half_tolerance_apart_across_bucket_edge(self):
        # Regression: two values tolerance/2 apart whose buckets differ
        # (one just below, one just above a grid line) must map to the
        # same canonical representative on both axes.
        tolerance = 1e-6
        table = ComplexTable(tolerance)
        for base in (3 * tolerance, -7 * tolerance):
            first = table.lookup(complex(base - tolerance / 4, 0.0))
            second = table.lookup(complex(base + tolerance / 4, 0.0))
            assert first == second, f"real-axis split at {base}"
        imag_base = 11 * tolerance
        first = table.lookup(complex(0.5, imag_base - tolerance / 4))
        second = table.lookup(complex(0.5, imag_base + tolerance / 4))
        assert first == second

    def test_sqrt2_inverse_is_seeded(self):
        table = ComplexTable()
        value = table.lookup(1.0 / math.sqrt(2.0))
        assert value == complex(1.0 / math.sqrt(2.0), 0.0)

    def test_imaginary_units_seeded(self):
        table = ComplexTable()
        assert table.lookup(complex(0.0, 1.0)) == 1j
        assert table.lookup(complex(0.0, -1.0)) == -1j

    def test_non_finite_rejected(self):
        table = ComplexTable()
        with pytest.raises(ValueError):
            table.lookup(complex(float("inf"), 0.0))
        with pytest.raises(ValueError):
            table.lookup(complex(0.0, float("nan")))

    def test_lookup_real_wrapper(self):
        table = ComplexTable()
        assert table.lookup_real(0.5) == complex(0.5, 0.0)

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ComplexTable(0.0)
        with pytest.raises(ValueError):
            ComplexTable(-1e-9)


class TestPredicates:
    def test_is_zero(self):
        table = ComplexTable()
        assert table.is_zero(ComplexTable.ZERO)
        assert table.is_zero(complex(1e-12, 1e-12))
        assert not table.is_zero(complex(1e-3, 0.0))

    def test_is_one(self):
        table = ComplexTable()
        assert table.is_one(ComplexTable.ONE)
        assert table.is_one(complex(1.0 + 1e-12, -1e-12))
        assert not table.is_one(complex(0.999, 0.0))

    def test_approx_equal(self):
        table = ComplexTable()
        assert table.approx_equal(0.3 + 0.4j, 0.3 + 0.4j + 1e-12)
        assert not table.approx_equal(0.3 + 0.4j, 0.3 + 0.5j)


class TestBookkeeping:
    def test_hit_and_miss_counting(self):
        table = ComplexTable()
        table.lookup(0.123)  # miss
        table.lookup(0.123)  # hit
        assert table.misses >= 1
        assert table.hits >= 1

    def test_len_counts_entries(self):
        table = ComplexTable()
        before = len(table)
        table.lookup(0.777)
        assert len(table) == before + 1

    def test_clear_reseeds_specials(self):
        table = ComplexTable()
        table.lookup(0.777)
        table.clear()
        assert table.lookup(1.0) == ComplexTable.ONE
        assert table.hits >= 0

    def test_clear_reseeds_full_special_set(self):
        # Regression: clear() used to re-insert only 0/1/-1/+-1j, so the
        # sqrt(2) family got fresh (bit-different) representatives after a
        # cache reset — breaking exact == against pre-clear weights.
        table = ComplexTable()
        sqrt2_inv = 1.0 / math.sqrt(2.0)
        before = len(table)
        table.clear()
        assert len(table) == before
        for special in (complex(sqrt2_inv, 0.0), complex(-sqrt2_inv, 0.0),
                        complex(0.0, sqrt2_inv), complex(0.0, -sqrt2_inv)):
            hits_before = table.hits
            assert table.lookup(special) == special
            assert table.hits == hits_before + 1  # seeded, not re-minted


class TestSweep:
    def test_unmarked_values_dropped(self):
        table = ComplexTable()
        keep = table.lookup(0.123 + 0.456j)
        table.lookup(0.777)
        table.lookup(-0.25j)
        reclaimed = table.sweep({keep})
        assert reclaimed == 2
        # The survivor keeps its identity (a re-lookup is a hit).
        hits_before = table.hits
        assert table.lookup(0.123 + 0.456j) == keep
        assert table.hits == hits_before + 1

    def test_specials_survive_empty_mark_set(self):
        table = ComplexTable()
        table.lookup(0.777)
        table.sweep(set())
        assert table.lookup(1.0) == ComplexTable.ONE
        assert table.lookup(1.0 / math.sqrt(2.0)) == complex(
            1.0 / math.sqrt(2.0), 0.0
        )

    def test_sweep_does_not_duplicate_marked_specials(self):
        # A marked seed survives the sweep AND gets re-seeded; the idempotent
        # _seed() must not insert it a second time.
        table = ComplexTable()
        size = len(table)
        table.sweep({ComplexTable.ONE, complex(0.0, 1.0)})
        assert len(table) == size
        table.sweep(set())
        assert len(table) == size


class TestPhaseOf:
    def test_positive_real_phase_zero(self):
        assert phase_of(complex(2.0, 0.0)) == 0.0

    def test_quadrants(self):
        assert abs(phase_of(1j) - math.pi / 2) < 1e-12
        assert abs(phase_of(-1.0 + 0j) - math.pi) < 1e-12
        assert abs(phase_of(-1j) - 1.5 * math.pi) < 1e-12

    def test_range_half_open(self):
        angle = phase_of(complex(1.0, -1e-18))
        assert 0.0 <= angle < 2.0 * math.pi
