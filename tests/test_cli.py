"""Unit tests for the command-line interface."""

import pytest

from repro.qc import library
from repro.tool.cli import main


@pytest.fixture
def bell_qasm(tmp_path):
    path = tmp_path / "bell.qasm"
    path.write_text(library.bell_pair().to_qasm())
    return str(path)


@pytest.fixture
def qft_qasm(tmp_path):
    path = tmp_path / "qft.qasm"
    path.write_text(library.qft(3).to_qasm())
    return str(path)


@pytest.fixture
def qft_compiled_qasm(tmp_path):
    path = tmp_path / "qftc.qasm"
    path.write_text(library.qft_compiled(3).to_qasm())
    return str(path)


class TestSim:
    def test_basic_run(self, bell_qasm, capsys):
        assert main(["sim", bell_qasm, "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "final state DD (3 nodes)" in out
        assert "1/√2" in out

    def test_steps_and_shots(self, bell_qasm, capsys):
        assert main(["sim", bell_qasm, "--steps", "--shots", "50", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "step   1" in out
        assert "50 shots:" in out

    def test_exports(self, bell_qasm, tmp_path, capsys):
        html = tmp_path / "out.html"
        svg = tmp_path / "out.svg"
        assert main([
            "sim", bell_qasm, "--seed", "0",
            "--export", str(html), "--svg", str(svg),
        ]) == 0
        assert html.read_text().startswith("<!DOCTYPE html>")
        assert svg.read_text().startswith("<svg")

    def test_style_option(self, bell_qasm, capsys):
        assert main(["sim", bell_qasm, "--style", "modern", "--seed", "0"]) == 0


class TestVerify:
    def test_equivalent_exit_zero(self, qft_qasm, qft_compiled_qasm, capsys):
        code = main(["verify", qft_qasm, qft_compiled_qasm])
        assert code == 0
        out = capsys.readouterr().out
        assert "equivalent" in out
        assert "peak nodes" in out

    def test_construct_strategy(self, qft_qasm, qft_compiled_qasm, capsys):
        assert main([
            "verify", qft_qasm, qft_compiled_qasm, "--strategy", "construct"
        ]) == 0
        assert "construct" in capsys.readouterr().out

    def test_compilation_flow_reports_9_nodes(
        self, qft_qasm, qft_compiled_qasm, capsys
    ):
        assert main([
            "verify", qft_qasm, qft_compiled_qasm,
            "--strategy", "compilation-flow",
        ]) == 0
        assert "peak nodes: 9" in capsys.readouterr().out

    def test_inequivalent_exit_one(self, qft_qasm, tmp_path, capsys):
        wrong = library.qft(3)
        wrong.x(0)
        other = tmp_path / "wrong.qasm"
        other.write_text(wrong.to_qasm())
        code = main(["verify", qft_qasm, str(other)])
        assert code == 1
        assert "NOT equivalent" in capsys.readouterr().out

    def test_export(self, bell_qasm, tmp_path, capsys):
        html = tmp_path / "v.html"
        assert main(["verify", bell_qasm, bell_qasm, "--export", str(html)]) == 0
        assert html.exists()


class TestRender:
    def test_svg_to_stdout(self, bell_qasm, capsys):
        assert main(["render", bell_qasm]) == 0
        assert capsys.readouterr().out.startswith("<svg")

    def test_dot_format(self, bell_qasm, capsys):
        assert main(["render", bell_qasm, "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_text_format(self, bell_qasm, capsys):
        assert main(["render", bell_qasm, "--format", "text"]) == 0
        assert "q1" in capsys.readouterr().out

    def test_functionality_flag(self, bell_qasm, tmp_path, capsys):
        out = tmp_path / "f.svg"
        assert main([
            "render", bell_qasm, "--functionality", "-o", str(out)
        ]) == 0
        assert "nodes" in capsys.readouterr().out
        assert out.exists()


class TestWheel:
    def test_wheel_stdout(self, capsys):
        assert main(["wheel"]) == 0
        assert capsys.readouterr().out.startswith("<svg")

    def test_wheel_file(self, tmp_path, capsys):
        out = tmp_path / "wheel.svg"
        assert main(["wheel", "-o", str(out)]) == 0
        assert out.exists()


class TestErrors:
    def test_parse_error_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.qasm"
        bad.write_text("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];")
        assert main(["sim", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exit_two_one_line(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.qasm")
        assert main(["sim", missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nope.qasm" in err
        assert len(err.strip().splitlines()) == 1  # no traceback

    @pytest.mark.parametrize("command", ["verify", "render", "convert", "stats"])
    def test_missing_file_other_subcommands(self, command, tmp_path, capsys):
        missing = str(tmp_path / "absent.qasm")
        argv = {
            "verify": ["verify", missing, missing],
            "render": ["render", missing],
            "convert": ["convert", missing],
            "stats": ["stats", missing],
        }[command]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "absent.qasm" in err

    def test_malformed_qasm_one_line_message(self, tmp_path, capsys):
        bad = tmp_path / "bad.qasm"
        bad.write_text("OPENQASM 2.0;\nqreg q[2;\n")
        assert main(["sim", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "line" in err  # parser reports the position
        assert "Traceback" not in err

    def test_input_path_is_directory_exit_two(self, tmp_path, capsys):
        directory = tmp_path / "adir.qasm"
        directory.mkdir()
        assert main(["sim", str(directory)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unwritable_output_exit_two(self, bell_qasm, tmp_path, capsys):
        target = str(tmp_path / "no" / "such" / "dir" / "out.svg")
        assert main(["sim", bell_qasm, "--seed", "0", "--svg", target]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_synth_missing_amplitude_file_exit_two(self, tmp_path, capsys):
        assert main(["synth", f"@{tmp_path / 'amps.txt'}"]) == 2
        assert capsys.readouterr().err.startswith("error:")
