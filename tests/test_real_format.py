"""Unit tests for the RevLib .real parser."""

import numpy as np
import pytest

from repro.errors import ParseError
from repro.qc.real_format import parse_real
from repro.simulation import build_unitary, StatevectorSimulator


def _simulate_bits(circuit, input_bits):
    """Classically simulate a reversible circuit on basis input."""
    simulator = StatevectorSimulator(circuit)
    simulator.state[:] = 0.0
    simulator.state[input_bits] = 1.0
    simulator.run()
    outputs = np.flatnonzero(np.abs(simulator.state) > 0.5)
    assert outputs.size == 1
    return int(outputs[0])


HEADER = ".version 2.0\n.numvars 3\n.variables a b c\n"


class TestParsing:
    def test_toffoli_gate(self):
        circuit = parse_real(HEADER + ".begin\nt3 a b c\n.end\n")
        operation = circuit[0]
        # a is the most significant variable (line 2), c the target (line 0).
        assert operation.gate == "x"
        assert operation.targets == (0,)
        assert set(operation.controls) == {1, 2}

    def test_not_and_cnot(self):
        circuit = parse_real(HEADER + ".begin\nt1 a\nt2 a b\n.end\n")
        assert circuit[0].gate == "x" and circuit[0].targets == (2,)
        assert circuit[1].controls == (2,) and circuit[1].targets == (1,)

    def test_fredkin(self):
        circuit = parse_real(HEADER + ".begin\nf3 a b c\n.end\n")
        operation = circuit[0]
        assert operation.gate == "swap"
        assert operation.controls == (2,)
        assert set(operation.targets) == {0, 1}

    def test_negative_control(self):
        circuit = parse_real(HEADER + ".begin\nt2 -a b\n.end\n")
        operation = circuit[0]
        assert operation.negative_controls == (2,)
        assert operation.targets == (1,)

    def test_v_gates(self):
        circuit = parse_real(HEADER + ".begin\nv a b\nv+ a b\n.end\n")
        assert circuit[0].gate == "sx"
        assert circuit[1].gate == "sxdg"
        assert circuit[0].controls == (2,)

    def test_peres(self):
        circuit = parse_real(HEADER + ".begin\np3 a b c\n.end\n")
        assert len(circuit) == 2
        assert circuit[0].gate == "x" and len(circuit[0].controls) == 2
        assert circuit[1].gate == "x" and len(circuit[1].controls) == 1

    def test_constants_initialize_lines(self):
        circuit = parse_real(
            ".numvars 3\n.variables a b c\n.constants 1-0\n.begin\n.end\n"
        )
        assert circuit[0].gate == "x" and circuit[0].targets == (2,)
        assert len(circuit) == 1

    def test_comments_and_blank_lines(self):
        source = HEADER + "# comment\n\n.begin\nt1 a # trailing\n.end\n"
        circuit = parse_real(source)
        assert len(circuit) == 1

    def test_default_variable_names(self):
        circuit = parse_real(".numvars 2\n.begin\nt1 x0\n.end\n")
        assert circuit.num_qubits == 2


class TestErrors:
    def test_missing_numvars(self):
        with pytest.raises(ParseError):
            parse_real(".variables a b\n.begin\n.end\n")

    def test_numvars_mismatch(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 3\n.variables a b\n.begin\n.end\n")

    def test_unknown_variable(self):
        with pytest.raises(ParseError):
            parse_real(HEADER + ".begin\nt1 z\n.end\n")

    def test_gate_before_begin(self):
        with pytest.raises(ParseError):
            parse_real(HEADER + "t1 a\n.begin\n.end\n")

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_real(HEADER + ".begin\nt1 a\n")

    def test_operand_count_mismatch(self):
        with pytest.raises(ParseError):
            parse_real(HEADER + ".begin\nt3 a b\n.end\n")

    def test_unknown_gate(self):
        with pytest.raises(ParseError):
            parse_real(HEADER + ".begin\nq2 a b\n.end\n")

    def test_bad_constants_length(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 2\n.constants 101\n.begin\n.end\n")


class TestSemantics:
    def test_toffoli_truth_table(self):
        circuit = parse_real(HEADER + ".begin\nt3 a b c\n.end\n")
        # Lines: a=2, b=1, c=0; target flips when a=b=1.
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    index = (a << 2) | (b << 1) | c
                    expected = index ^ 1 if (a and b) else index
                    assert _simulate_bits(circuit, index) == expected

    def test_peres_equals_its_definition(self):
        peres = parse_real(HEADER + ".begin\np3 a b c\n.end\n")
        explicit = parse_real(HEADER + ".begin\nt3 a b c\nt2 a b\n.end\n")
        assert np.allclose(build_unitary(peres), build_unitary(explicit))

    def test_reversibility(self):
        circuit = parse_real(
            HEADER + ".begin\nt3 a b c\nt2 b c\nt1 a\nf2 b c\n.end\n"
        )
        unitary = build_unitary(circuit)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(8))
