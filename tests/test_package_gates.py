"""Unit tests for gate-DD construction (embedding, controls, two-qubit)."""

import math

import numpy as np
import pytest

from repro.errors import DDError
from tests.conftest import random_unitary

H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _embed_single(num_qubits, matrix, target):
    result = np.ones((1, 1), dtype=complex)
    for var in range(num_qubits - 1, -1, -1):
        factor = matrix if var == target else np.eye(2)
        result = np.kron(result, factor)
    return result


class TestSingleQubit:
    @pytest.mark.parametrize("target", [0, 1, 2])
    def test_embedding_positions(self, package, target):
        gate = package.single_qubit_gate(3, H, target)
        assert np.allclose(package.to_matrix(gate, 3), _embed_single(3, H, target))

    def test_random_unitary_embedding(self, package, rng):
        matrix = random_unitary(1, rng)
        gate = package.single_qubit_gate(4, matrix, 2)
        assert np.allclose(package.to_matrix(gate, 4), _embed_single(4, matrix, 2))

    def test_gate_dd_is_compact(self, package):
        """A single-qubit gate needs exactly one node per level."""
        gate = package.single_qubit_gate(5, H, 2)
        assert package.node_count(gate) == 5

    def test_bad_target_rejected(self, package):
        with pytest.raises(DDError):
            package.single_qubit_gate(2, H, 2)

    def test_bad_shape_rejected(self, package):
        with pytest.raises(DDError):
            package.single_qubit_gate(2, np.eye(4), 0)


class TestControlled:
    def test_cnot(self, package):
        gate = package.controlled_gate(2, X, 0, controls=[1])
        expected = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
        )
        assert np.allclose(package.to_matrix(gate, 2), expected)

    def test_cnot_reversed_lines(self, package):
        gate = package.controlled_gate(2, X, 1, controls=[0])
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]]
        )
        assert np.allclose(package.to_matrix(gate, 2), expected)

    def test_toffoli(self, package):
        gate = package.controlled_gate(3, X, 0, controls=[1, 2])
        expected = np.eye(8)
        expected[[6, 7]] = expected[[7, 6]]
        assert np.allclose(package.to_matrix(gate, 3), expected)

    def test_negative_control(self, package):
        gate = package.controlled_gate(2, X, 0, negative_controls=[1])
        # X on q0 applied when q1 == 0.
        expected = np.array(
            [[0, 1, 0, 0], [1, 0, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1]]
        )
        assert np.allclose(package.to_matrix(gate, 2), expected)

    def test_mixed_controls(self, package):
        gate = package.controlled_gate(3, Z, 0, controls=[2], negative_controls=[1])
        expected = np.eye(8, dtype=complex)
        expected[5, 5] = -1.0  # q2=1, q1=0, q0=1
        assert np.allclose(package.to_matrix(gate, 3), expected)

    def test_control_far_from_target(self, package):
        gate = package.controlled_gate(4, X, 0, controls=[3])
        dense = package.to_matrix(gate, 4)
        expected = np.zeros((16, 16))
        for basis in range(16):
            image = basis ^ 1 if basis & 0b1000 else basis
            expected[image, basis] = 1.0
        assert np.allclose(dense, expected)

    def test_identity_base_gate_gives_identity(self, package):
        gate = package.controlled_gate(2, np.eye(2), 0, controls=[1])
        identity = package.identity(2)
        assert gate.node is identity.node

    def test_overlapping_lines_rejected(self, package):
        with pytest.raises(DDError):
            package.controlled_gate(2, X, 0, controls=[0])

    def test_no_controls_falls_back_to_single(self, package):
        direct = package.single_qubit_gate(2, H, 1)
        via_control = package.controlled_gate(2, H, 1)
        assert direct.node is via_control.node


class TestTwoQubit:
    def test_swap_adjacent(self, package):
        gate = package.two_qubit_gate(2, SWAP, 1, 0)
        assert np.allclose(package.to_matrix(gate, 2), SWAP)

    def test_swap_distant(self, package):
        gate = package.two_qubit_gate(3, SWAP, 2, 0)
        dense = package.to_matrix(gate, 3)
        expected = np.zeros((8, 8))
        for basis in range(8):
            bit2, bit1, bit0 = (basis >> 2) & 1, (basis >> 1) & 1, basis & 1
            swapped = (bit0 << 2) | (bit1 << 1) | bit2
            expected[swapped, basis] = 1.0
        assert np.allclose(dense, expected)

    def test_random_two_qubit(self, package, rng):
        matrix = random_unitary(2, rng)
        gate = package.two_qubit_gate(2, matrix, 1, 0)
        assert np.allclose(package.to_matrix(gate, 2), matrix)

    def test_random_two_qubit_embedded(self, package, rng):
        matrix = random_unitary(2, rng)
        gate = package.two_qubit_gate(3, matrix, 2, 1)
        dense = package.to_matrix(gate, 3)
        # Reference: permute so (q2,q1) are adjacent... here they already
        # are; expected = matrix (x) I.
        assert np.allclose(dense, np.kron(matrix, np.eye(2)))

    def test_line_order_enforced(self, package):
        with pytest.raises(DDError):
            package.two_qubit_gate(3, SWAP, 0, 2)
        with pytest.raises(DDError):
            package.two_qubit_gate(3, SWAP, 1, 1)

    def test_bad_shape_rejected(self, package):
        with pytest.raises(DDError):
            package.two_qubit_gate(2, np.eye(2), 1, 0)
