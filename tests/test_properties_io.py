"""Property-based tests for serialization, exporters and observables."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dd import DDPackage
from repro.dd.expectation import expectation_hamiltonian, expectation_pauli
from repro.dd.serialize import dd_from_dict, dd_to_dict
from repro.qc import QuantumCircuit
from repro.qc.qasm import parse_qasm
from repro.qc.real_exporter import circuit_to_real
from repro.qc.real_format import parse_real
from repro.simulation import build_unitary
from tests.test_properties import state_vectors


@st.composite
def reversible_circuits(draw, max_qubits: int = 4, max_depth: int = 20):
    """Circuits over the Toffoli family (what .real can express)."""
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    depth = draw(st.integers(min_value=1, max_value=max_depth))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(depth):
        lines = list(rng.permutation(num_qubits))
        kind = int(rng.integers(4))
        if kind == 0:
            circuit.x(int(lines[0]))
        elif kind == 1 or num_qubits < 3:
            circuit.cx(int(lines[0]), int(lines[1]))
        elif kind == 2:
            circuit.ccx(int(lines[0]), int(lines[1]), int(lines[2]))
        else:
            circuit.gate(
                "x", [int(lines[0])],
                controls=[int(lines[1])],
                negative_controls=[int(lines[2])],
            )
    return circuit


@st.composite
def pauli_strings(draw, length: int):
    return "".join(
        draw(st.sampled_from("IXYZ")) for _ in range(length)
    )


class TestSerializationProperties:
    @given(vector=state_vectors(max_qubits=4))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_into_fresh_package(self, vector):
        package = DDPackage()
        state = package.from_state_vector(vector)
        fresh = DDPackage()
        rebuilt = dd_from_dict(fresh, dd_to_dict(package, state))
        n = int(math.log2(len(vector)))
        assert np.allclose(fresh.to_vector(rebuilt, n), vector, atol=1e-9)

    @given(vector=state_vectors(max_qubits=3))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_canonicity(self, vector):
        package = DDPackage()
        state = package.from_state_vector(vector)
        rebuilt = dd_from_dict(package, dd_to_dict(package, state))
        assert rebuilt.node is state.node

    @given(vector=state_vectors(max_qubits=3))
    @settings(max_examples=30, deadline=None)
    def test_document_node_count_matches_diagram(self, vector):
        package = DDPackage()
        state = package.from_state_vector(vector)
        data = dd_to_dict(package, state)
        assert len(data["nodes"]) == package.node_count(state)


class TestRealExportProperties:
    @given(circuit=reversible_circuits())
    @settings(max_examples=25, deadline=None)
    def test_real_roundtrip_preserves_unitary(self, circuit):
        reparsed = parse_real(circuit_to_real(circuit))
        assert np.allclose(
            build_unitary(reparsed), build_unitary(circuit), atol=1e-9
        )

    @given(circuit=reversible_circuits(max_qubits=3, max_depth=10))
    @settings(max_examples=20, deadline=None)
    def test_real_then_qasm_then_real(self, circuit):
        """The two format pipelines commute on reversible circuits."""
        via_real = parse_real(circuit_to_real(circuit))
        via_qasm = parse_qasm(via_real.to_qasm())
        assert np.allclose(
            build_unitary(via_qasm), build_unitary(circuit), atol=1e-9
        )


class TestExpectationProperties:
    @given(vector=state_vectors(max_qubits=3), seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_pauli_expectations_are_real_and_bounded(self, vector, seed):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        state = package.from_state_vector(vector)
        rng = np.random.default_rng(seed)
        string = "".join(rng.choice(list("IXYZ")) for _ in range(n))
        value = expectation_pauli(package, state, string)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(vector=state_vectors(max_qubits=3),
           c1=st.floats(-2, 2), c2=st.floats(-2, 2))
    @settings(max_examples=25, deadline=None)
    def test_hamiltonian_is_linear_in_coefficients(self, vector, c1, c2):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        state = package.from_state_vector(vector)
        za = "Z" + "I" * (n - 1)
        xa = "X" + "I" * (n - 1)
        combined = expectation_hamiltonian(
            package, state, {za: c1, xa: c2}
        )
        separate = c1 * expectation_pauli(package, state, za) + (
            c2 * expectation_pauli(package, state, xa)
        )
        assert combined == separate or abs(combined - separate) < 1e-9

    @given(vector=state_vectors(max_qubits=3))
    @settings(max_examples=25, deadline=None)
    def test_identity_expectation_is_one(self, vector):
        package = DDPackage()
        n = int(math.log2(len(vector)))
        state = package.from_state_vector(vector)
        assert abs(expectation_pauli(package, state, "I" * n) - 1.0) < 1e-9
