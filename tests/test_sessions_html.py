"""Unit tests for the tool layer: sessions and HTML export (paper Sec. IV)."""

import math

import numpy as np
import pytest

from repro.errors import ReproError, SimulationError, VerificationError
from repro.qc import QuantumCircuit, library
from repro.tool import SimulationSession, VerificationSession, load_circuit
from repro.vis.html_export import Frame, frames_to_html

INV_SQRT2 = 1.0 / math.sqrt(2.0)


class TestLoadCircuit:
    def test_passthrough(self):
        circuit = library.bell_pair()
        assert load_circuit(circuit) is circuit

    def test_qasm_source(self):
        circuit = load_circuit("OPENQASM 2.0;\nqreg q[2];\nh q[0];")
        assert circuit.num_qubits == 2

    def test_real_source(self):
        circuit = load_circuit(".numvars 2\n.begin\nt2 x0 x1\n.end\n")
        assert circuit.num_qubits == 2

    def test_qasm_file(self, tmp_path):
        path = tmp_path / "c.qasm"
        path.write_text(library.bell_pair().to_qasm())
        circuit = load_circuit(str(path))
        assert circuit.name == "c"

    def test_real_file(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(".numvars 1\n.begin\nt1 x0\n.end\n")
        circuit = load_circuit(str(path))
        assert circuit.num_qubits == 1

    def test_garbage_rejected(self):
        with pytest.raises(ReproError):
            load_circuit("not a circuit at all")


class TestSimulationSession:
    def test_fig8_walkthrough(self):
        """Paper Fig. 8: initial |00>, Bell state, measurement dialog, |11>."""
        circuit = library.bell_pair()
        circuit.measure(0, 0)
        session = SimulationSession(circuit)
        session.forward()  # H
        session.forward()  # CNOT
        dialog = session.pending_dialog()
        assert dialog is not None
        kind, qubit, p0, p1 = dialog
        assert kind == "measure" and qubit == 0
        assert abs(p0 - 0.5) < 1e-12 and abs(p1 - 0.5) < 1e-12
        record = session.forward(outcome=1)
        assert record.outcome == 1
        assert np.allclose(
            session.simulator.statevector(), [0, 0, 0, 1]
        )

    def test_no_dialog_for_deterministic_qubit(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).measure(0, 0)
        session = SimulationSession(circuit)
        session.forward()
        assert session.pending_dialog() is None

    def test_dialog_for_reset(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).reset(0)
        session = SimulationSession(circuit)
        session.forward()
        dialog = session.pending_dialog()
        assert dialog[0] == "reset"

    def test_backward_drops_frame(self):
        session = SimulationSession(library.bell_pair())
        session.forward()
        assert len(session.frames) == 2
        session.backward()
        assert len(session.frames) == 1

    def test_to_end_stops_at_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        session = SimulationSession(circuit)
        session.to_end()
        assert session.simulator.position == 2
        session.to_end()
        assert session.simulator.at_end

    def test_to_start(self):
        session = SimulationSession(library.ghz_state(3))
        session.to_end(stop_at_breakpoints=False)
        session.to_start()
        assert session.simulator.at_start
        assert len(session.frames) == 1

    def test_play_iterates_all(self):
        session = SimulationSession(library.ghz_state(3))
        records = list(session.play())
        assert len(records) == 3

    def test_frames_carry_svg_and_descriptions(self):
        session = SimulationSession(library.bell_pair())
        session.to_end(stop_at_breakpoints=False)
        assert all(frame.svg.startswith("<svg") for frame in session.frames)
        assert "Applied H" in session.frames[1].description

    def test_export_html(self, tmp_path):
        session = SimulationSession(library.bell_pair())
        session.to_end(stop_at_breakpoints=False)
        path = tmp_path / "session.html"
        session.export_html(str(path))
        text = path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "const frames" in text
        assert text.count("<svg") >= 3

    def test_accepts_qasm_source_directly(self):
        session = SimulationSession("OPENQASM 2.0;\nqreg q[1];\nx q[0];")
        session.to_end()
        assert np.allclose(session.simulator.statevector(), [0, 1])


class TestVerificationSession:
    def test_fig9_qft_verification(self):
        """Paper Ex. 15 / Fig. 9: alternating application stays close to
        the identity and ends at it."""
        session = VerificationSession(library.qft(3), library.qft_compiled(3))
        session.run_compilation_flow()
        assert session.finished
        assert session.is_identity()
        assert session.peak_node_count == 9  # paper Ex. 12

    def test_manual_stepping(self):
        session = VerificationSession(library.qft(3), library.qft_compiled(3))
        session.apply_left()
        applied = session.apply_right_to_barrier()
        assert applied >= 1
        assert session.node_count >= 3

    def test_mid_way_not_identity(self):
        session = VerificationSession(library.qft(3), library.qft_compiled(3))
        session.apply_left()
        assert not session.is_identity()

    def test_inequivalent_detected(self):
        wrong = library.qft_compiled(3)
        wrong.x(0)
        session = VerificationSession(library.qft(3), wrong)
        session.run_compilation_flow()
        assert not session.is_identity()

    def test_stepping_past_end_rejected(self):
        session = VerificationSession(library.bell_pair(), library.bell_pair())
        session.apply_left(2)
        with pytest.raises(SimulationError):
            session.apply_left()

    def test_remaining_counters(self):
        session = VerificationSession(library.bell_pair(), library.bell_pair())
        assert session.left_remaining == 2
        session.apply_left()
        assert session.left_remaining == 1
        assert session.right_remaining == 2

    def test_qubit_mismatch_rejected(self):
        with pytest.raises(VerificationError):
            VerificationSession(library.qft(2), library.qft(3))

    def test_export_html(self, tmp_path):
        session = VerificationSession(library.bell_pair(), library.bell_pair())
        session.run_compilation_flow()
        path = tmp_path / "verify.html"
        session.export_html(str(path))
        assert "Verification" in path.read_text()


class TestHtmlExport:
    def test_requires_frames(self):
        with pytest.raises(ValueError):
            frames_to_html([])

    def test_escapes_title(self):
        html = frames_to_html([Frame(svg="<svg/>")], title="<nasty>")
        assert "<nasty>" not in html
        assert "&lt;nasty&gt;" in html

    def test_embeds_all_frames(self):
        frames = [Frame(svg=f"<svg>{i}</svg>", title=f"t{i}") for i in range(5)]
        html = frames_to_html(frames)
        for i in range(5):
            assert f"<svg>{i}</svg>" in html

    def test_controls_present(self):
        html = frames_to_html([Frame(svg="<svg/>")])
        for control in ("to-start", "back", "forward", "to-end", "play"):
            assert f'id="{control}"' in html
