"""Unit tests for Kraus channels, noise models and noisy simulation."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage, density
from repro.errors import DDError
from repro.noise import (
    KrausChannel,
    NoiseModel,
    NoisySimulator,
    amplitude_damping,
    apply_channel,
    bit_flip,
    depolarizing,
    phase_damping,
    phase_flip,
)
from repro.qc import QuantumCircuit, library


def _rho(package, amplitudes):
    return density.density_from_statevector(package, amplitudes)


class TestChannelDefinitions:
    @pytest.mark.parametrize(
        "factory,param",
        [
            (bit_flip, 0.3),
            (phase_flip, 0.2),
            (depolarizing, 0.5),
            (amplitude_damping, 0.4),
            (phase_damping, 0.6),
        ],
    )
    def test_trace_preserving(self, factory, param):
        channel = factory(param)
        total = sum(
            operator.conj().T @ operator for operator in channel.operators
        )
        assert np.allclose(total, np.eye(2))

    @pytest.mark.parametrize("factory", [bit_flip, phase_flip, depolarizing,
                                         amplitude_damping, phase_damping])
    def test_probability_validation(self, factory):
        with pytest.raises(DDError):
            factory(-0.1)
        with pytest.raises(DDError):
            factory(1.1)

    def test_non_trace_preserving_rejected(self):
        with pytest.raises(DDError):
            KrausChannel("broken", (np.eye(2) * 0.5,))

    def test_wrong_shape_rejected(self):
        with pytest.raises(DDError):
            KrausChannel("broken", (np.eye(4),))

    def test_identity_detection(self):
        assert bit_flip(0.0).is_identity
        assert not bit_flip(0.1).is_identity


class TestChannelAction:
    def test_bit_flip_on_zero(self, package):
        rho = _rho(package, [1.0, 0.0])
        out = apply_channel(package, rho, bit_flip(0.3), 0)
        assert np.allclose(package.to_matrix(out, 1), np.diag([0.7, 0.3]))

    def test_phase_flip_kills_coherence(self, package):
        inv = 1.0 / math.sqrt(2.0)
        rho = _rho(package, [inv, inv])
        out = apply_channel(package, rho, phase_flip(0.5), 0)
        # Full dephasing at p = 1/2.
        assert np.allclose(package.to_matrix(out, 1), np.eye(2) / 2)

    def test_depolarizing_limit(self, package):
        rho = _rho(package, [1.0, 0.0])
        out = apply_channel(package, rho, depolarizing(1.0), 0)
        assert np.allclose(package.to_matrix(out, 1), np.eye(2) / 2)

    def test_amplitude_damping_decays_to_ground(self, package):
        rho = _rho(package, [0.0, 1.0])
        out = apply_channel(package, rho, amplitude_damping(1.0), 0)
        assert np.allclose(package.to_matrix(out, 1), np.diag([1.0, 0.0]))

    def test_amplitude_damping_partial(self, package):
        rho = _rho(package, [0.0, 1.0])
        out = apply_channel(package, rho, amplitude_damping(0.25), 0)
        assert np.allclose(
            package.to_matrix(out, 1), np.diag([0.25, 0.75])
        )

    def test_channel_on_selected_qubit(self, package):
        rho = _rho(package, [0.0, 0.0, 0.0, 1.0])  # |11>
        out = apply_channel(package, rho, amplitude_damping(1.0), 1)
        expected = np.zeros((4, 4))
        expected[1, 1] = 1.0  # q1 decayed, q0 untouched
        assert np.allclose(package.to_matrix(out, 2), expected)

    def test_trace_preserved_on_random_states(self, package, rng):
        from tests.conftest import random_state

        rho = _rho(package, random_state(3, rng))
        for channel in (bit_flip(0.2), depolarizing(0.3), amplitude_damping(0.4)):
            out = apply_channel(package, rho, channel, 1)
            assert abs(density.trace(package, out) - 1.0) < 1e-9

    def test_identity_channel_shortcut(self, package):
        rho = _rho(package, [1.0, 0.0])
        assert apply_channel(package, rho, bit_flip(0.0), 0) == rho


class TestNoiseModel:
    def test_channel_selection(self):
        single = bit_flip(0.1)
        double = depolarizing(0.2)
        special = phase_flip(0.3)
        model = NoiseModel(
            single_qubit=single, two_qubit=double, per_gate={"t": special}
        )
        from repro.qc.operations import GateOp

        assert model.channel_for(GateOp(gate="h", targets=(0,))) is single
        assert model.channel_for(
            GateOp(gate="x", targets=(0,), controls=(1,))
        ) is double
        assert model.channel_for(GateOp(gate="t", targets=(0,))) is special

    def test_no_noise_by_default(self):
        from repro.qc.operations import GateOp

        model = NoiseModel()
        assert model.channel_for(GateOp(gate="h", targets=(0,))) is None


class TestNoisySimulator:
    def test_zero_noise_equals_ideal(self):
        model = NoiseModel(single_qubit=bit_flip(0.0))
        simulator = NoisySimulator(library.ghz_state(3), model)
        simulator.run()
        assert abs(simulator.fidelity_with_ideal() - 1.0) < 1e-9
        assert abs(simulator.purity() - 1.0) < 1e-9

    def test_fidelity_decays_monotonically(self):
        fidelities = []
        for probability in (0.0, 0.02, 0.05, 0.1):
            model = NoiseModel(
                single_qubit=depolarizing(probability),
                two_qubit=depolarizing(2 * probability),
            )
            simulator = NoisySimulator(library.ghz_state(4), model)
            simulator.run()
            fidelities.append(simulator.fidelity_with_ideal())
        assert all(a > b for a, b in zip(fidelities, fidelities[1:]))
        assert fidelities[0] > 1.0 - 1e-9

    def test_trace_stays_one(self):
        model = NoiseModel(
            single_qubit=amplitude_damping(0.1), two_qubit=depolarizing(0.05)
        )
        simulator = NoisySimulator(library.qft(3), model)
        simulator.run()
        assert abs(
            density.trace(simulator.package, simulator.state()) - 1.0
        ) < 1e-9

    def test_readout_error(self):
        model = NoiseModel(measurement=bit_flip(0.1))
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        simulator = NoisySimulator(circuit, model)
        simulator.run()
        distribution = simulator.classical_distribution()
        assert abs(distribution["0"] - 0.9) < 1e-9
        assert abs(distribution["1"] - 0.1) < 1e-9

    def test_bitflip_flips_distribution(self):
        model = NoiseModel(single_qubit=bit_flip(1.0))
        circuit = QuantumCircuit(1, 1)
        circuit.i(0)  # the gate triggers the (certain) flip
        circuit.measure(0, 0)
        simulator = NoisySimulator(circuit, model)
        simulator.run()
        assert simulator.classical_distribution() == {"1": 1.0}

    def test_fidelity_with_ideal_requires_unitary(self):
        model = NoiseModel(single_qubit=bit_flip(0.1))
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = NoisySimulator(circuit, model)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.fidelity_with_ideal()

    def test_dephasing_ghz_decoheres_but_keeps_populations(self):
        model = NoiseModel(single_qubit=phase_damping(0.5),
                           two_qubit=phase_damping(0.5))
        simulator = NoisySimulator(library.ghz_state(3), model)
        simulator.run()
        dense = simulator.density_matrix()
        # Populations of |000> and |111> survive dephasing...
        assert abs(dense[0, 0] - 0.5) < 1e-9
        assert abs(dense[7, 7] - 0.5) < 1e-9
        # ... while the off-diagonal coherence shrinks.
        assert abs(dense[0, 7]) < 0.5
