"""Unit tests for measurement, sampling and reset (paper Sec. III-B/IV-B)."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage, NormalizationScheme
from repro.dd import sampling
from repro.errors import DDError, InvalidStateError

INV_SQRT2 = 1.0 / math.sqrt(2.0)


def _bell(package):
    return package.from_state_vector([INV_SQRT2, 0.0, 0.0, INV_SQRT2])


class TestProbabilities:
    def test_bell_is_fifty_fifty(self, package):
        """Paper Ex. 2: measuring one qubit of the Bell state yields |0>
        in 50% of the cases."""
        state = _bell(package)
        for qubit in (0, 1):
            p0, p1 = sampling.qubit_probabilities(package, state, qubit)
            assert abs(p0 - 0.5) < 1e-12
            assert abs(p1 - 0.5) < 1e-12

    def test_basis_state_deterministic(self, package):
        state = package.basis_state(3, "101")
        assert sampling.qubit_probabilities(package, state, 0) == (0.0, 1.0)
        assert sampling.qubit_probabilities(package, state, 1) == (1.0, 0.0)
        assert sampling.qubit_probabilities(package, state, 2) == (0.0, 1.0)

    def test_matches_dense_computation(self, package, rng):
        from tests.conftest import random_state

        vector = random_state(3, rng)
        state = package.from_state_vector(vector)
        for qubit in range(3):
            mask = 1 << qubit
            expected_p1 = sum(
                abs(vector[i]) ** 2 for i in range(8) if i & mask
            )
            p0, p1 = sampling.qubit_probabilities(package, state, qubit)
            assert abs(p1 - expected_p1) < 1e-9

    def test_qubit_out_of_range(self, package):
        with pytest.raises(DDError):
            sampling.qubit_probabilities(package, package.zero_state(2), 2)

    def test_branch_probabilities_is_root_qubit(self, package):
        state = _bell(package)
        assert sampling.branch_probabilities(package, state) == (0.5, 0.5)

    def test_works_with_max_normalization(self, max_package):
        state = _bell(max_package)
        p0, p1 = sampling.qubit_probabilities(max_package, state, 0)
        assert abs(p0 - 0.5) < 1e-12


class TestSample:
    def test_bell_only_00_and_11(self, package, rng):
        state = _bell(package)
        for _ in range(50):
            outcome = sampling.sample(package, state, rng)
            assert outcome in ("00", "11")

    def test_big_endian_order(self, package, rng):
        state = package.basis_state(3, "110")
        assert sampling.sample(package, state, rng) == "110"

    def test_counts_match_distribution(self, package):
        state = package.from_state_vector([math.sqrt(0.9), 0.0, 0.0, math.sqrt(0.1)])
        counts = sampling.sample_counts(
            package, state, 2000, np.random.default_rng(7)
        )
        assert set(counts) <= {"00", "11"}
        assert abs(counts.get("00", 0) / 2000 - 0.9) < 0.05

    def test_sampling_is_nondestructive(self, package, rng):
        """Paper Sec. III-B: repeated measurement of the same DD."""
        state = _bell(package)
        before = package.to_vector(state, 2).copy()
        sampling.sample_counts(package, state, 10, rng)
        assert np.allclose(package.to_vector(state, 2), before)

    def test_max_scheme_sampling(self, max_package, rng):
        state = _bell(max_package)
        for _ in range(20):
            assert sampling.sample(max_package, state, rng) in ("00", "11")

    def test_invalid_shots(self, package, rng):
        with pytest.raises(DDError):
            sampling.sample_counts(package, _bell(package), 0, rng)

    def test_zero_vector_rejected(self, package, rng):
        from repro.dd.edge import ZERO_EDGE

        with pytest.raises(InvalidStateError):
            sampling.sample(package, ZERO_EDGE, rng)


class TestMeasureCollapse:
    def test_forced_outcome_one(self, package):
        """Paper Ex. 13 / Fig. 8: measuring q0 of the Bell state as |1>
        leaves |11> due to entanglement."""
        state = _bell(package)
        outcome, probability, collapsed = sampling.measure_qubit(
            package, state, 0, outcome=1
        )
        assert outcome == 1
        assert abs(probability - 0.5) < 1e-12
        assert np.allclose(package.to_vector(collapsed, 2), [0, 0, 0, 1])

    def test_forced_outcome_zero(self, package):
        state = _bell(package)
        __, __, collapsed = sampling.measure_qubit(package, state, 0, outcome=0)
        assert np.allclose(package.to_vector(collapsed, 2), [1, 0, 0, 0])

    def test_collapsed_state_is_normalized(self, package, rng):
        from tests.conftest import random_state

        state = package.from_state_vector(random_state(3, rng))
        __, __, collapsed = sampling.measure_qubit(package, state, 1, outcome=0)
        assert abs(package.norm_squared(collapsed) - 1.0) < 1e-9

    def test_impossible_outcome_rejected(self, package):
        state = package.zero_state(2)
        with pytest.raises(InvalidStateError):
            sampling.measure_qubit(package, state, 0, outcome=1)

    def test_invalid_outcome_value(self, package):
        with pytest.raises(DDError):
            sampling.measure_qubit(package, _bell(package), 0, outcome=2)

    def test_random_outcome_uses_rng(self, package):
        state = _bell(package)
        outcomes = {
            sampling.measure_qubit(package, state, 0, rng=np.random.default_rng(s))[0]
            for s in range(20)
        }
        assert outcomes == {0, 1}

    def test_superposition_partially_preserved(self, package):
        """Measuring an unentangled qubit leaves the rest untouched."""
        # |+>|+> - measure q0, q1 stays in |+>.
        state = package.from_state_vector([0.5, 0.5, 0.5, 0.5])
        __, __, collapsed = sampling.measure_qubit(package, state, 0, outcome=0)
        assert np.allclose(
            package.to_vector(collapsed, 2), [INV_SQRT2, 0.0, INV_SQRT2, 0.0]
        )


class TestReset:
    def test_reset_moves_branch_to_zero(self, package):
        """Paper Sec. IV-B: the remaining branch becomes the |0> branch."""
        state = _bell(package)
        observed, probability, result = sampling.reset_qubit(
            package, state, 0, outcome=1
        )
        assert observed == 1
        # q0 reset to |0>; q1 keeps the value correlated with outcome 1.
        assert np.allclose(package.to_vector(result, 2), [0, 0, 1, 0])

    def test_reset_on_zero_is_noop(self, package):
        state = package.zero_state(2)
        observed, probability, result = sampling.reset_qubit(package, state, 0)
        assert observed == 0
        assert probability == 1.0
        assert result.node is state.node

    def test_reset_probabilities(self, package):
        state = package.from_state_vector([0.6, 0.8, 0.0, 0.0])
        observed, probability, result = sampling.reset_qubit(
            package, state, 0, outcome=1
        )
        assert abs(probability - 0.64) < 1e-12
        assert np.allclose(package.to_vector(result, 2), [1, 0, 0, 0])
