"""Property-based QASM round-trip tests.

For any circuit the exporter can express, ``parse(export(circuit))`` must
reproduce the exact operation stream — asserted via the circuit digest.
A seeded generator drives 100 random circuits through the round trip and
a coverage check proves every exportable gate key was exercised.
"""

from __future__ import annotations

import random
from typing import Set, Tuple

import pytest

from repro.qc.circuit import QuantumCircuit
from repro.qc.gates import gate_signature
from repro.qc.qasm.exporter import _EXPORT_NAMES
from repro.qc.qasm.parser import parse_qasm

#: ``u``/``cu1`` aliases re-parse under their canonical spelling (``u3`` /
#: ``p``), changing the digest on the *first* round trip by design; the
#: dedicated alias test below pins their (stable) second round trip.
ALIAS_KEYS = {("u", 0), ("u", 1), ("u1", 1)}
STABLE_KEYS = sorted(set(_EXPORT_NAMES) - ALIAS_KEYS)

NUM_CASES = 100


def random_roundtrip_circuit(seed: int) -> Tuple[QuantumCircuit, Set[tuple]]:
    """A random circuit using only digest-stable exportable gates.

    Returns the circuit and the set of ``(gate, n_controls)`` keys used,
    so the coverage test can prove the generator reaches the whole table.
    """
    rng = random.Random(seed)
    num_qubits = rng.randint(3, 5)
    circuit = QuantumCircuit(num_qubits, name=f"roundtrip-{seed}")
    used: Set[tuple] = set()
    for _ in range(rng.randint(8, 24)):
        key = rng.choice(STABLE_KEYS)
        gate, n_controls = key
        num_params, num_targets = gate_signature(gate)
        lines = rng.sample(range(num_qubits), num_targets + n_controls)
        # The IR stores multi-target lines as (high, low); feeding the
        # canonical order in keeps the first round trip digest-stable.
        targets = sorted(lines[:num_targets], reverse=True)
        params = [round(rng.uniform(0.05, 3.1), 9) for _ in range(num_params)]
        circuit.gate(gate, targets=targets, params=params,
                     controls=lines[num_targets:])
        used.add(key)
    return circuit, used


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_random_circuit_roundtrip_digest_equal(seed):
    circuit, _ = random_roundtrip_circuit(seed)
    text = circuit.to_qasm()
    back = parse_qasm(text)
    assert back.digest() == circuit.digest(), (
        f"round-trip changed the circuit (seed={seed}):\n{text}"
    )
    # And the round trip is a fixed point, not a two-cycle.
    assert parse_qasm(back.to_qasm()).digest() == back.digest()


def test_generator_covers_every_stable_gate_key():
    covered: Set[tuple] = set()
    for seed in range(NUM_CASES):
        covered |= random_roundtrip_circuit(seed)[1]
    missing = set(STABLE_KEYS) - covered
    assert not missing, f"generator never produced: {sorted(missing)}"


@pytest.mark.parametrize("key", STABLE_KEYS, ids=lambda k: f"{k[0]}-c{k[1]}")
def test_each_gate_key_roundtrips_alone(key):
    gate, n_controls = key
    num_params, num_targets = gate_signature(gate)
    circuit = QuantumCircuit(num_targets + n_controls + 1)
    targets = list(range(num_targets))[::-1]  # canonical (high, low)
    controls = list(range(num_targets, num_targets + n_controls))
    params = [0.7 * (index + 1) for index in range(num_params)]
    circuit.gate(gate, targets=targets, params=params, controls=controls)
    back = parse_qasm(circuit.to_qasm())
    assert back.digest() == circuit.digest()


@pytest.mark.parametrize("key", sorted(ALIAS_KEYS), ids=lambda k: f"{k[0]}-c{k[1]}")
def test_alias_gates_stabilize_after_one_roundtrip(key):
    """``u``/``cu1`` re-parse under canonical names, then stay fixed."""
    gate, n_controls = key
    num_params, num_targets = gate_signature(gate)
    circuit = QuantumCircuit(num_targets + n_controls)
    params = [0.4 * (index + 1) for index in range(num_params)]
    circuit.gate(gate, targets=[0], params=params,
                 controls=list(range(1, 1 + n_controls)))
    once = parse_qasm(circuit.to_qasm())
    twice = parse_qasm(once.to_qasm())
    assert twice.digest() == once.digest()


def test_iswapdg_roundtrip_regression():
    """iswapdg was missing from the export table (and the parser) —
    exporting any circuit containing it raised CircuitError."""
    circuit = QuantumCircuit(3)
    circuit.gate("iswap", targets=[1, 0])
    circuit.gate("iswapdg", targets=[1, 0])
    circuit.gate("iswapdg", targets=[2, 1])
    text = circuit.to_qasm()
    assert "iswapdg q[1],q[0];" in text
    assert back_equal(circuit, text)


def back_equal(circuit: QuantumCircuit, text: str) -> bool:
    return parse_qasm(text).digest() == circuit.digest()
