"""Tests for the DD sanitizer: clean runs, wiring, CLI, no false positives."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dd import DDPackage, NormalizationScheme
from repro.errors import SanitizerError
from repro.qc import library
from repro.qc.gates import gate_matrix
from repro.sanitizer import DDSanitizer, SanitizeReport, Violation, sanitize_package
from repro.simulation.simulator import DDSimulator
from repro.verification import (
    ApplicationStrategy,
    check_equivalence_alternating,
)

DATA = Path(__file__).parent / "data"


# ----------------------------------------------------------------------
# clean packages produce zero violations
# ----------------------------------------------------------------------

def test_fresh_package_is_clean(package):
    report = package.sanitize()
    assert report.ok
    assert report.violations == []
    assert report.complex_entries_checked >= 2  # at least the seeds


def test_clean_after_state_construction(package):
    state = package.from_state_vector([0.5, 0.5j, -0.5, 0.5])
    package.incref(state)
    report = package.sanitize()
    assert report.ok, report.summary()
    assert report.nodes_checked >= 2
    assert report.roots_checked >= 1


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_clean_after_random_circuits(seed):
    pkg = DDPackage(sanitize_every=1)
    circuit = library.random_circuit(4, 25, seed=seed)
    simulator = DDSimulator(circuit, package=pkg)
    simulator.run_all()
    assert pkg.sanitize_runs > 0
    assert pkg.sanitize_violations == 0
    report = pkg.sanitize()
    assert report.ok, report.summary()
    simulator.close()


@pytest.mark.parametrize(
    "factory",
    [
        lambda: library.ghz_state(4),
        lambda: library.qft(3),
        lambda: library.grover(3, marked=5),
    ],
    ids=["ghz", "qft", "grover"],
)
def test_clean_on_library_circuits(factory):
    pkg = DDPackage(sanitize_every=1)
    simulator = DDSimulator(factory(), package=pkg)
    simulator.run_all()
    assert pkg.sanitize().ok
    simulator.close()


def test_clean_under_max_magnitude_scheme():
    pkg = DDPackage(
        vector_scheme=NormalizationScheme.MAX_MAGNITUDE, sanitize_every=1
    )
    simulator = DDSimulator(library.random_circuit(4, 30, seed=9), package=pkg)
    simulator.run_all()
    assert pkg.sanitize().ok
    simulator.close()


def test_clean_through_verification_and_gc():
    pkg = DDPackage(sanitize_every=1)
    circuit = library.qft(3)
    result = check_equivalence_alternating(circuit, circuit.copy(), package=pkg)
    assert result.equivalent
    pkg.gc(force=True)  # post-GC sanitize hook runs here
    assert pkg.sanitize_violations == 0
    assert pkg.last_sanitize_report is not None
    assert pkg.last_sanitize_report.ok


def test_example_12_peak_unchanged_with_sanitizer():
    """Paper Ex. 12: QFT3 alternating check peaks at 9 nodes, not 21 —
    the sanitizer must observe, never change, the computation."""
    pkg = DDPackage(sanitize_every=1)
    result = check_equivalence_alternating(
        library.qft(3),
        library.qft_compiled(3),
        strategy=ApplicationStrategy.COMPILATION_FLOW,
        package=pkg,
    )
    assert result.equivalent
    assert result.max_nodes == 9
    assert pkg.sanitize_runs > 0
    assert pkg.sanitize_violations == 0


# ----------------------------------------------------------------------
# wiring: op boundaries, environment variable, stats, functional API
# ----------------------------------------------------------------------

def test_sanitize_every_triggers_at_op_boundaries():
    pkg = DDPackage(sanitize_every=2)
    state = pkg.zero_state(2)
    hadamard = pkg.single_qubit_gate(2, gate_matrix("h"), 0)
    before = pkg.sanitize_runs
    for _ in range(4):
        state = pkg.multiply(hadamard, state)
    # 4 multiplies at every=2 -> exactly 2 op-boundary runs (construction
    # helpers above may add more; count the delta).
    assert pkg.sanitize_runs - before == 2


def test_sanitize_every_zero_disables():
    pkg = DDPackage(sanitize_every=0)
    state = pkg.zero_state(2)
    hadamard = pkg.single_qubit_gate(2, gate_matrix("h"), 0)
    pkg.multiply(hadamard, state)
    assert pkg.sanitize_runs == 0


def test_sanitize_every_env_variable(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "3")
    assert DDPackage().sanitize_every == 3
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "not-a-number")
    assert DDPackage().sanitize_every == 0
    monkeypatch.delenv("REPRO_SANITIZE_EVERY")
    assert DDPackage().sanitize_every == 0
    # Explicit argument wins over the environment.
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "7")
    assert DDPackage(sanitize_every=0).sanitize_every == 0


def test_stats_has_sanitizer_section(package):
    package.sanitize()
    section = package.stats()["sanitizer"]
    assert section["runs"] == 1
    assert section["violations"] == 0


def test_sanitize_metrics_counters():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    pkg = DDPackage(registry=registry)
    pkg.sanitize()
    assert registry.counter("dd_sanitize_runs_total").value == 1
    assert registry.counter("dd_sanitize_violations_total").value == 0


def test_sanitize_package_function(package):
    report = sanitize_package(package, raise_on_violation=True)
    assert isinstance(report, SanitizeReport)
    assert report.ok


def test_report_shapes(package):
    report = DDSanitizer(package).run()
    data = report.as_dict()
    assert data["ok"] is True
    assert data["violations"] == []
    assert "OK" in report.summary()
    violation = Violation("demo-check", "broken", "node #1")
    assert "demo-check" in str(violation)
    failing = SanitizeReport(violations=[violation])
    assert not failing.ok
    assert failing.checks_failed == ("demo-check",)
    with pytest.raises(SanitizerError) as excinfo:
        failing.raise_if_violations()
    assert excinfo.value.report is failing


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _run_cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
    )


def test_cli_sanitize_clean_circuit(tmp_path):
    out = tmp_path / "report.json"
    result = _run_cli(
        "sanitize", str(DATA / "adder.qasm"), "--json-out", str(out)
    )
    assert result.returncode == 0, result.stderr
    assert "sanitize: OK" in result.stdout
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    assert payload["circuit"] == "adder"
    assert payload["violations"] == []
    assert payload["runs"] > 0


def test_cli_sanitize_every_flag():
    result = _run_cli("sanitize", str(DATA / "iqft4.qasm"), "--every", "5")
    assert result.returncode == 0, result.stderr
    assert "every 5 operation(s)" in result.stdout


def test_cli_sanitize_missing_file():
    result = _run_cli("sanitize", "no-such-circuit.qasm")
    assert result.returncode == 2
    assert "error:" in result.stderr
