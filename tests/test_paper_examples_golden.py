"""Golden regression of the paper-checked numbers.

Freezes the quantities the paper states (and earlier tests verified) into
``tests/data/golden_paper.json``:

* Ex. 12: peak of 9 intermediate nodes for the alternating scheme versus
  21 nodes when constructing the entire system matrix;
* Fig. 5/6: the three-qubit QFT functionality DD has 21 nodes, the QFT
  state reached from |000> has 3;
* Bell / GHZ / QFT amplitudes, stored as exact ``repr`` strings.

Both gate-application paths (direct kernels and legacy matrix path) must
reproduce the golden payload **byte-for-byte**: the test serializes each
path's results with the same ``json.dumps`` settings as the stored file
and compares the strings.

Regenerate (only when intentionally changing the frozen numbers) with::

    PYTHONPATH=src python tests/test_paper_examples_golden.py --regenerate
"""

from __future__ import annotations

import json
import os

import pytest

from repro.dd.package import DDPackage
from repro.qc import library
from repro.qc.dd_builder import circuit_to_dd
from repro.simulation.simulator import DDSimulator
from repro.verification.alternating import (
    ApplicationStrategy,
    check_equivalence_alternating,
)
from repro.verification.checker import check_equivalence_construct

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_paper.json")

_SIMULATED = ("bell", "ghz3", "qft3", "qft3_compiled")


def _circuit(name: str):
    return {
        "bell": library.bell_pair,
        "ghz3": lambda: library.ghz_state(3),
        "qft3": lambda: library.qft(3),
        "qft3_compiled": lambda: library.qft_compiled(3),
    }[name]()


def compute_payload(
    use_apply_kernels: bool, storage: str = None, identity_skipping: bool = False
) -> dict:
    """Everything the golden file freezes, computed on one execution path."""

    def make_package() -> DDPackage:
        return DDPackage(
            use_apply_kernels=use_apply_kernels,
            storage=storage,
            identity_skipping=identity_skipping,
        )

    payload: dict = {"simulation": {}}
    for name in _SIMULATED:
        circuit = _circuit(name)
        simulator = DDSimulator(circuit, package=make_package())
        simulator.run_all()
        amplitudes = [
            repr(simulator.package.amplitude(simulator.state, index,
                                             circuit.num_qubits))
            for index in range(1 << circuit.num_qubits)
        ]
        payload["simulation"][name] = {
            "node_count": simulator.node_count(),
            "peak_node_count": simulator.peak_node_count,
            "amplitudes": amplitudes,
        }
    package = make_package()
    functionality = circuit_to_dd(package, library.qft(3))
    payload["qft3_functionality_nodes"] = package.node_count(functionality)
    alternating = check_equivalence_alternating(
        library.qft(3),
        library.qft_compiled(3),
        strategy=ApplicationStrategy.COMPILATION_FLOW,
        package=make_package(),
    )
    construct = check_equivalence_construct(
        library.qft(3), library.qft_compiled(3), package=make_package()
    )
    payload["example12"] = {
        "equivalent": alternating.equivalent,
        "alternating_peak_nodes": alternating.max_nodes,
        "construct_peak_nodes": construct.max_nodes,
    }
    return payload


def _serialize(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.fixture(scope="module")
def golden() -> str:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.mark.parametrize("use_apply_kernels", [True, False],
                         ids=["apply-kernels", "matrix-path"])
def test_both_paths_reproduce_golden_byte_for_byte(golden, use_apply_kernels):
    assert _serialize(compute_payload(use_apply_kernels)) == golden


@pytest.mark.parametrize("use_apply_kernels", [True, False],
                         ids=["apply-kernels", "matrix-path"])
def test_identity_skipping_reproduces_golden_amplitudes(golden, use_apply_kernels):
    """Identity skipping changes *representation*, never *semantics*.

    With reordering disabled, a skipping package must reproduce every
    golden amplitude byte-for-byte (same ``repr`` strings) and the same
    vector-DD node counts — vector DDs stay level-dense, so skipping
    cannot touch them.  Where the goldens legitimately differ is the
    matrix-DD sizes: the QFT functionality and the construct-checker peak
    shrink once identity blocks collapse (arXiv:2406.11959), so those are
    asserted *smaller*, not equal.
    """
    reference = json.loads(golden)
    payload = compute_payload(use_apply_kernels, identity_skipping=True)
    assert payload["simulation"] == reference["simulation"], (
        "identity skipping changed a simulated amplitude or a vector-DD "
        "node count"
    )
    assert payload["example12"]["equivalent"] is True
    # Matrix-DD node counts are where the goldens may legitimately move.
    # The *final* 3-qubit QFT unitary is dense (no identity sub-blocks),
    # so its functionality DD cannot shrink — frozen at the same 21:
    assert (
        payload["qft3_functionality_nodes"]
        == reference["qft3_functionality_nodes"]
    )
    assert (
        payload["example12"]["construct_peak_nodes"]
        == reference["example12"]["construct_peak_nodes"]
    )
    # ... but the alternating scheme's *intermediate* products carry
    # identity-padded gates, and those do collapse: peak 9 -> 5.
    assert (
        payload["example12"]["alternating_peak_nodes"]
        < reference["example12"]["alternating_peak_nodes"]
    )
    assert payload["example12"]["alternating_peak_nodes"] == 5


def test_golden_freezes_the_paper_numbers(golden):
    """The stored file itself states the paper's numbers (guards against
    regenerating the golden from a broken build)."""
    payload = json.loads(golden)
    assert payload["example12"]["equivalent"] is True
    assert payload["example12"]["alternating_peak_nodes"] == 9
    assert payload["example12"]["construct_peak_nodes"] == 21
    assert payload["qft3_functionality_nodes"] == 21
    bell = payload["simulation"]["bell"]
    assert bell["node_count"] == 3
    assert bell["amplitudes"][0] == "(0.7071067811865475+0j)"
    assert bell["amplitudes"][1] == "0j"
    assert payload["simulation"]["qft3"]["node_count"] == 3


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        rendered = _serialize(compute_payload(True))
        if rendered != _serialize(compute_payload(False)):
            raise SystemExit("paths disagree; refusing to regenerate")
        with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {GOLDEN_PATH}")
