"""Unit tests for the canonical circuit digest (repro.qc.hashing)."""

import math

import pytest

from repro.qc import circuit_digest, library
from repro.qc.circuit import QuantumCircuit
from repro.qc.hashing import operation_fingerprint
from repro.qc.operations import GateOp
from repro.qc.qasm.parser import parse_qasm


def test_digest_is_hex_sha256():
    digest = circuit_digest(library.bell_pair())
    assert len(digest) == 64
    int(digest, 16)  # parses as hex


def test_digest_matches_method():
    circuit = library.qft(3)
    assert circuit.digest() == circuit_digest(circuit)


def test_same_construction_same_digest():
    assert circuit_digest(library.qft(4)) == circuit_digest(library.qft(4))


@pytest.mark.parametrize(
    "factory",
    [
        library.bell_pair,
        lambda: library.qft(3),
        lambda: library.qft_compiled(3),
        lambda: library.ghz_state(5),
        lambda: library.random_circuit(4, 30, seed=3),
    ],
)
def test_qasm_roundtrip_preserves_digest(factory):
    circuit = factory()
    roundtripped = parse_qasm(circuit.to_qasm())
    assert circuit_digest(roundtripped) == circuit_digest(circuit)


def test_name_does_not_matter():
    a = library.qft(3)
    b = a.copy(name="completely-different-name")
    assert circuit_digest(a) == circuit_digest(b)


def test_gate_change_changes_digest():
    a = QuantumCircuit(2).h(0).cx(0, 1)
    b = QuantumCircuit(2).h(0).cz(0, 1)
    assert circuit_digest(a) != circuit_digest(b)


def test_parameter_change_changes_digest():
    a = QuantumCircuit(1).rz(0.5, 0)
    b = QuantumCircuit(1).rz(0.5 + 1e-9, 0)
    assert circuit_digest(a) != circuit_digest(b)


def test_qubit_rewiring_changes_digest():
    a = QuantumCircuit(2).cx(0, 1)
    b = QuantumCircuit(2).cx(1, 0)
    assert circuit_digest(a) != circuit_digest(b)


def test_operation_order_changes_digest():
    a = QuantumCircuit(2).h(0).x(1)
    b = QuantumCircuit(2).x(1).h(0)
    assert circuit_digest(a) != circuit_digest(b)


def test_register_shape_changes_digest():
    assert circuit_digest(QuantumCircuit(2)) != circuit_digest(QuantumCircuit(3))
    assert circuit_digest(QuantumCircuit(2, 1)) != circuit_digest(QuantumCircuit(2, 2))


def test_control_order_is_canonical():
    a = GateOp(gate="x", targets=(0,), controls=(1, 2))
    b = GateOp(gate="x", targets=(0,), controls=(2, 1))
    assert operation_fingerprint(a) == operation_fingerprint(b)


def test_negative_zero_parameter_is_canonical():
    a = QuantumCircuit(1).rz(0.0, 0)
    b = QuantumCircuit(1).rz(-0.0, 0)
    assert circuit_digest(a) == circuit_digest(b)


def test_special_operations_distinguished():
    base = QuantumCircuit(2, 2).h(0)
    measured = base.copy().measure(0, 0)
    reset = base.copy().reset(0)
    barriered = base.copy().barrier()
    digests = {
        circuit_digest(base),
        circuit_digest(measured),
        circuit_digest(reset),
        circuit_digest(barriered),
    }
    assert len(digests) == 4


def test_condition_changes_digest():
    a = QuantumCircuit(2, 1).gate("x", [1], condition=([0], 0))
    b = QuantumCircuit(2, 1).gate("x", [1], condition=([0], 1))
    c = QuantumCircuit(2, 1).gate("x", [1])
    assert len({circuit_digest(a), circuit_digest(b), circuit_digest(c)}) == 3


def test_conditioned_circuit_roundtrips():
    # One classical bit: QASM 2.0 only exports full-register conditions.
    circuit = QuantumCircuit(2, 1, name="teleport-ish")
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.gate("x", [1], condition=([0], 1))
    circuit.rz(math.pi / 7, 1)
    assert parse_qasm(circuit.to_qasm()).digest() == circuit.digest()
