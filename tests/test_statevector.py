"""Unit tests for the dense baseline and DD-vs-dense cross-checks."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qc import QuantumCircuit, library
from repro.qc.operations import GateOp
from repro.simulation import DDSimulator, StatevectorSimulator, build_unitary
from repro.simulation.statevector import gate_unitary


class TestGateUnitary:
    def test_single_qubit_embedding(self):
        op = GateOp(gate="x", targets=(1,))
        expected = np.kron(np.eye(2), np.kron([[0, 1], [1, 0]], np.eye(2)))
        assert np.allclose(gate_unitary(op, 3), expected)

    def test_controlled_embedding(self):
        op = GateOp(gate="x", targets=(0,), controls=(1,))
        expected = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
        )
        assert np.allclose(gate_unitary(op, 2), expected)

    def test_two_qubit_with_control(self):
        op = GateOp(gate="swap", targets=(1, 0), controls=(2,))
        dense = gate_unitary(op, 3)
        expected = np.eye(8)
        expected[[5, 6]] = expected[[6, 5]]
        assert np.allclose(dense, expected)

    def test_every_library_gate_is_unitary_when_embedded(self):
        for name, targets in [
            ("h", (0,)), ("y", (1,)), ("sdg", (2,)), ("swap", (2, 0)),
            ("iswap", (1, 0)),
        ]:
            op = GateOp(gate=name, targets=targets)
            dense = gate_unitary(op, 3)
            assert np.allclose(dense @ dense.conj().T, np.eye(8))


class TestBuildUnitary:
    def test_rejects_nonunitary(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(SimulationError):
            build_unitary(circuit)

    def test_gate_order(self):
        circuit = QuantumCircuit(1)
        circuit.x(0).s(0)  # S X as a matrix product
        s = np.diag([1.0, 1j])
        x = np.array([[0, 1], [1, 0]])
        assert np.allclose(build_unitary(circuit), s @ x)


class TestSimulator:
    def test_matches_dd_simulator_on_random_circuits(self):
        for seed in (0, 1, 2):
            circuit = library.random_circuit(4, 40, seed=seed)
            dd = DDSimulator(circuit)
            dd.run_all()
            dense = StatevectorSimulator(circuit)
            dense.run()
            assert np.allclose(dd.statevector(), dense.state)

    def test_measurement_collapse(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = StatevectorSimulator(circuit, seed=3)
        simulator.run()
        assert simulator.classical_bits[0] in (0, 1)
        assert abs(np.linalg.norm(simulator.state) - 1.0) < 1e-12

    def test_forced_outcome(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = StatevectorSimulator(circuit)
        simulator.step()
        simulator.step(outcome=1)
        assert np.allclose(simulator.state, [0, 1])

    def test_impossible_outcome_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        simulator = StatevectorSimulator(circuit)
        with pytest.raises(SimulationError):
            simulator.step(outcome=1)

    def test_reset(self):
        circuit = QuantumCircuit(1)
        circuit.x(0).reset(0)
        simulator = StatevectorSimulator(circuit)
        simulator.run()
        assert np.allclose(simulator.state, [1, 0])

    def test_classical_condition(self):
        circuit = QuantumCircuit(2, 1)
        circuit.x(0).measure(0, 0)
        circuit.gate("x", [1], condition=([0], 1))
        simulator = StatevectorSimulator(circuit)
        simulator.run()
        assert np.allclose(simulator.state, np.eye(4)[3])

    def test_step_past_end(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        simulator = StatevectorSimulator(circuit)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.step()

    def test_probabilities(self):
        circuit = library.bell_pair()
        simulator = StatevectorSimulator(circuit)
        simulator.run()
        p0, p1 = simulator.probabilities(1)
        assert abs(p0 - 0.5) < 1e-12
