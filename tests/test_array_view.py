"""Unit tests for the dense-array views (state-vector bars, matrix heatmap)."""

import math
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.errors import VisualizationError
from repro.vis import matrix_svg, statevector_svg


class TestStatevectorSvg:
    def test_valid_xml(self):
        svg = statevector_svg([1.0, 0.0])
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_bar_per_nonzero_amplitude(self):
        inv = 1.0 / math.sqrt(2.0)
        svg = statevector_svg([inv, 0.0, 0.0, inv])
        assert svg.count("<rect") == 2

    def test_basis_labels_big_endian(self):
        svg = statevector_svg([1.0, 0.0, 0.0, 0.0])
        for label in ("00", "01", "10", "11"):
            assert f">{label}</text>" in svg

    def test_phase_coloring(self):
        svg = statevector_svg([0.0, -1.0])
        assert 'fill="#00ffff"' in svg  # phase pi -> cyan

    def test_title(self):
        svg = statevector_svg([1.0, 0.0], title="psi & friends")
        assert "psi &amp; friends" in svg

    def test_tooltip_shows_pretty_value(self):
        inv = 1.0 / math.sqrt(2.0)
        svg = statevector_svg([inv, inv])
        assert "1/√2" in svg

    def test_size_cap(self):
        with pytest.raises(VisualizationError):
            statevector_svg(np.ones(128), max_entries=64)

    def test_empty_rejected(self):
        with pytest.raises(VisualizationError):
            statevector_svg([])


class TestMatrixSvg:
    def test_valid_xml(self):
        svg = matrix_svg(np.eye(4))
        ET.fromstring(svg)

    def test_cell_count(self):
        svg = matrix_svg(np.eye(4))
        assert svg.count("<rect") == 16

    def test_zero_cells_neutral(self):
        svg = matrix_svg(np.eye(2))
        assert '#f5f5f5' in svg

    def test_phase_hue(self):
        svg = matrix_svg(np.array([[1j, 0], [0, 1]]))
        # i has phase pi/2 -> chartreuse-ish green (#80ff00).
        assert 'fill="#80ff00"' in svg

    def test_dimension_cap(self):
        with pytest.raises(VisualizationError):
            matrix_svg(np.eye(64), max_dim=32)

    def test_non_2d_rejected(self):
        with pytest.raises(VisualizationError):
            matrix_svg(np.ones(4))

    def test_qft_heatmap(self):
        from repro.qc.library import qft_matrix

        svg = matrix_svg(qft_matrix(3), title="QFT")
        ET.fromstring(svg)
        assert svg.count("<rect") == 64


class TestSessionIntegration:
    def test_session_with_statevector_view(self):
        from repro.qc import library
        from repro.tool import SimulationSession

        session = SimulationSession(
            library.bell_pair(), include_statevector=True
        )
        session.to_end(stop_at_breakpoints=False)
        frame = session.frames[-1]
        # circuit diagram + DD + state vector
        assert frame.svg.count("<svg") == 3

    def test_statevector_view_disabled_for_large_systems(self):
        from repro.qc import library
        from repro.tool import SimulationSession

        session = SimulationSession(
            library.ghz_state(8), include_statevector=True
        )
        assert not session.include_statevector
        # circuit diagram + DD only
        assert session.frames[0].svg.count("<svg") == 2

    def test_circuit_diagram_disabled_for_very_large_systems(self):
        from repro.qc import library
        from repro.tool import SimulationSession

        session = SimulationSession(library.ghz_state(16))
        assert not session.include_circuit_diagram
        assert session.frames[0].svg.count("<svg") == 1
