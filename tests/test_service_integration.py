"""Loopback integration test of the full HTTP service.

One real :class:`DDToolServer` (threading HTTP front end + process worker
pool) serves 8 concurrent clients, each of which drives a complete
session-stepping workflow, a one-shot ``/simulate`` and a one-shot
``/verify`` — including paper Ex. 12's three-qubit QFT alternating check,
which must report a peak of 9 nodes through the API.  Zero dropped
requests allowed; afterwards a repeated identical request must be served
from the result cache and the cache-hit counter must be visible at
``/metrics``.
"""

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.qc import library
from repro.service import DDToolServer, ServiceConfig

CLIENTS = 8
QFT = library.qft(3).to_qasm()
QFT_COMPILED = library.qft_compiled(3).to_qasm()


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        host="127.0.0.1", port=0, workers=2,
        max_sessions=32, cache_capacity=64,
    )
    instance = DDToolServer(config).start()
    yield instance
    instance.stop()


class _Client:
    """A tiny JSON-over-HTTP client on a persistent loopback connection."""

    def __init__(self, server):
        host, port = server.address
        self.connection = HTTPConnection(host, port, timeout=30)

    def request(self, method, path, payload=None):
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        self.connection.request(method, path, body=body, headers=headers)
        response = self.connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        data = json.loads(raw) if content_type.startswith("application/json") else raw
        return response.status, data

    def close(self):
        self.connection.close()


def _drive_one_client(server, index, failures):
    try:
        client = _Client(server)
        # --- session stepping -----------------------------------------
        status, created = client.request("POST", "/sessions", {
            "kind": "simulation", "qasm": QFT, "seed": index,
        })
        assert status == 201, created
        sid = created["session_id"]
        status, state = client.request(
            "POST", f"/sessions/{sid}/step", {"action": "forward"}
        )
        assert status == 200 and state["position"] == 1, state
        status, state = client.request(
            "POST", f"/sessions/{sid}/step", {"action": "to_end"}
        )
        assert status == 200 and state["at_end"], state
        assert state["node_count"] == 3, state
        status, svg = client.request("GET", f"/sessions/{sid}/svg")
        assert status == 200 and svg.startswith(b"<svg"), svg[:40]
        status, dump = client.request("GET", f"/sessions/{sid}/text")
        assert status == 200, dump
        status, counts = client.request(
            "GET", f"/sessions/{sid}/counts?shots=32&seed={index}"
        )
        assert status == 200 and sum(counts["counts"].values()) == 32, counts
        status, _ = client.request("DELETE", f"/sessions/{sid}")
        assert status == 200

        # --- one-shot batch simulation ---------------------------------
        status, result = client.request("POST", "/simulate", {
            "qasm": QFT, "shots": 16, "seed": 7,
        })
        assert status == 200, result
        assert result["nodes"] == 3 and result["peak_nodes"] == 3, result

        # --- one-shot verification (paper Ex. 12 through the API) ------
        status, verdict = client.request("POST", "/verify", {
            "left": QFT, "right": QFT_COMPILED, "strategy": "compilation-flow",
        })
        assert status == 200, verdict
        assert verdict["equivalent"] is True, verdict
        assert verdict["peak_nodes"] == 9, verdict
        client.close()
    except Exception as error:  # noqa: BLE001 - collected and re-raised
        failures.append((index, repr(error)))


def test_eight_concurrent_clients_zero_drops(server):
    failures = []
    threads = [
        threading.Thread(target=_drive_one_client, args=(server, i, failures))
        for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads), "client hung"
    assert failures == []


def test_repeat_request_hits_cache_and_metrics_show_it(server):
    client = _Client(server)
    payload = {"qasm": QFT, "shots": 16, "seed": 7}
    status, result = client.request("POST", "/simulate", payload)
    assert status == 200
    # The concurrency test already simulated this exact request, so by now
    # it must come from the cache; hit it once more to be self-contained.
    status, repeated = client.request("POST", "/simulate", payload)
    assert status == 200 and repeated["cached"] is True
    assert {k: v for k, v in repeated.items() if k != "cached"} == \
           {k: v for k, v in result.items() if k != "cached"}

    status, metrics = client.request("GET", "/metrics")
    assert status == 200
    text = metrics.decode()
    hits = [
        line for line in text.splitlines()
        if line.startswith("service_cache_hits_total")
    ]
    assert hits, text
    assert float(hits[0].split()[-1]) >= 1
    # per-endpoint request counters and latency histograms are exposed
    assert 'service_requests_total{endpoint="/simulate"' in text
    assert 'service_request_seconds_bucket{endpoint="/simulate"' in text
    assert 'service_requests_total{endpoint="/sessions/{id}/step"' in text
    client.close()


def test_verification_session_stepping_over_http(server):
    client = _Client(server)
    status, created = client.request("POST", "/sessions", {
        "kind": "verification", "left": QFT, "right": QFT_COMPILED,
    })
    assert status == 201, created
    sid = created["session_id"]
    status, state = client.request(
        "POST", f"/sessions/{sid}/step", {"action": "compilation_flow"}
    )
    assert status == 200, state
    assert state["finished"] and state["is_identity"], state
    assert state["peak_node_count"] == 9, state
    client.request("DELETE", f"/sessions/{sid}")
    client.close()


def test_healthz_under_load(server):
    client = _Client(server)
    status, body = client.request("GET", "/healthz")
    assert status == 200 and body["status"] == "ok"
    client.close()
