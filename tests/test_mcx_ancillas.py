"""Unit tests for the clean-ancilla (Toffoli-chain) MCX construction."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.qc import QuantumCircuit
from repro.qc.transforms import emit_mcx, emit_mcx_with_ancillas
from repro.simulation import build_unitary
from repro.verification import check_equivalence_ancillary


def _chain_circuit(num_controls):
    num_ancillas = max(num_controls - 2, 0)
    num_qubits = num_controls + 1 + num_ancillas
    circuit = QuantumCircuit(num_qubits)
    controls = list(range(1, num_controls + 1))
    ancillas = list(range(num_controls + 1, num_qubits))
    emit_mcx_with_ancillas(circuit, controls, 0, ancillas)
    return circuit, controls, ancillas


class TestCleanAncillaMcx:
    @pytest.mark.parametrize("num_controls", [1, 2, 3, 4, 5])
    def test_correct_on_zero_ancillas(self, num_controls):
        circuit, controls, ancillas = _chain_circuit(num_controls)
        direct = QuantumCircuit(circuit.num_qubits)
        direct.mcx(controls, 0)
        chain_unitary = build_unitary(circuit)
        direct_unitary = build_unitary(direct)
        mask = sum(1 << a for a in ancillas)
        columns = [b for b in range(1 << circuit.num_qubits) if b & mask == 0]
        assert np.allclose(chain_unitary[:, columns], direct_unitary[:, columns])

    @pytest.mark.parametrize("num_controls", [3, 4, 5])
    def test_ancillas_uncomputed(self, num_controls):
        circuit, controls, ancillas = _chain_circuit(num_controls)
        unitary = build_unitary(circuit)
        mask = sum(1 << a for a in ancillas)
        for basis in range(1 << circuit.num_qubits):
            if basis & mask:
                continue
            image = int(np.argmax(np.abs(unitary[:, basis])))
            assert image & mask == 0  # ancillas end in |0>

    def test_linear_gate_count(self):
        counts = []
        for num_controls in (3, 5, 7, 9):
            circuit, __, __ = _chain_circuit(num_controls)
            counts.append(circuit.num_gates)
        # 2(k-2) + 1 Toffolis.
        assert counts == [3, 7, 11, 15]
        # Versus the exponential ancilla-free construction.
        free = QuantumCircuit(10)
        emit_mcx(free, list(range(1, 10)), 0)
        assert free.num_gates > counts[-1] * 20

    def test_equivalence_via_ancillary_checker(self):
        """The intended verification route for ancilla constructions."""
        circuit, controls, __ = _chain_circuit(4)
        direct = QuantumCircuit(5)
        direct.mcx([1, 2, 3, 4], 0)
        result = check_equivalence_ancillary(direct, circuit, seed=0)
        assert result.equivalent

    def test_too_few_ancillas_rejected(self):
        circuit = QuantumCircuit(6)
        with pytest.raises(CircuitError):
            emit_mcx_with_ancillas(circuit, [1, 2, 3, 4], 0, [5])

    def test_overlapping_lines_rejected(self):
        circuit = QuantumCircuit(6)
        with pytest.raises(CircuitError):
            emit_mcx_with_ancillas(circuit, [1, 2, 3], 0, [3])

    def test_small_cases_need_no_ancillas(self):
        circuit = QuantumCircuit(3)
        emit_mcx_with_ancillas(circuit, [1, 2], 0, [])
        assert circuit.num_gates == 1
        assert circuit[0].gate == "x" and len(circuit[0].controls) == 2
