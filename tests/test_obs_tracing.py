"""Tests for span tracing and its wiring into simulator and verifier.

Covers span nesting and timing monotonicity, the ring-buffer retention,
the ``@traced`` decorator, the disabled fast path, tree rendering, the
per-step simulator spans, the verification trajectory (paper Ex. 12's
"at most 9 nodes" peak as a recorded metric), the ``trace`` CLI
subcommand and the SVG timeline renderer.
"""

import time

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Tracer, format_span_tree, traced
from repro.obs.tracing import NULL_SPAN
from repro.qc import library
from repro.simulation import DDSimulator
from repro.tool.cli import main
from repro.verification import ApplicationStrategy, check_equivalence_alternating
from repro.vis import span_timeline_svg, timeline_svg
from repro.errors import VisualizationError


class TestSpanBasics:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert tracer.spans == (root,)

    def test_timing_is_monotonic(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.002)
        assert outer.start_time <= inner.start_time
        assert inner.end_time <= outer.end_time
        assert inner.duration > 0
        assert outer.duration >= inner.duration

    def test_duration_zero_while_open(self):
        tracer = Tracer(enabled=True)
        span = tracer.span("open")
        assert span.duration == 0.0
        with span:
            assert span.duration == 0.0
        assert span.duration > 0

    def test_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", op="H", index=0) as span:
            span.set_attribute("nodes", 5)
        assert span.attributes == {"op": "H", "index": 0, "nodes": 5}

    def test_current_tracks_stack(self):
        tracer = Tracer(enabled=True)
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None


class TestTracerRetention:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(enabled=True, capacity=2)
        for index in range(4):
            with tracer.span(f"run{index}"):
                pass
        assert [s.name for s in tracer.spans] == ["run2", "run3"]

    def test_only_roots_are_retained(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.spans] == ["root"]

    def test_clear(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans == ()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDisabledTracer:
    def test_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", key="value")
        assert span is NULL_SPAN
        with span as entered:
            entered.set_attribute("ignored", 1)
        assert tracer.spans == ()

    def test_enabled_none_defers_to_global_switch(self):
        tracer = Tracer()
        try:
            obs.set_enabled(False)
            assert tracer.span("dark") is NULL_SPAN
            obs.set_enabled(True)
            with tracer.span("lit"):
                pass
            assert [s.name for s in tracer.spans] == ["lit"]
        finally:
            obs.set_enabled(True)


class TestTracedDecorator:
    def test_bare_decorator_uses_qualname(self):
        tracer = Tracer(enabled=True)

        @traced(tracer=tracer)
        def compute():
            return 21

        assert compute() == 21
        assert len(tracer.spans) == 1
        assert "compute" in tracer.spans[0].name

    def test_named_decorator(self):
        tracer = Tracer(enabled=True)

        @traced("dd.multiply", tracer=tracer)
        def multiply(a, b):
            return a * b

        assert multiply(3, 7) == 21
        assert tracer.spans[0].name == "dd.multiply"


class TestFormatSpanTree:
    def test_renders_branches_and_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("sim.run", circuit="qft3") as root:
            with tracer.span("sim.step", index=0):
                pass
            with tracer.span("sim.step", index=1):
                pass
        text = format_span_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("sim.run")
        assert "{circuit=qft3}" in lines[0]
        assert lines[1].startswith("├─ sim.step")
        assert lines[2].startswith("└─ sim.step")
        assert "ms]" in lines[0]


class TestSimulatorSpans:
    def test_run_produces_one_step_span_per_operation(self):
        tracer = Tracer(enabled=True)
        circuit = library.qft(3)
        simulator = DDSimulator(circuit, seed=0, tracer=tracer)
        simulator.run(stop_at_breakpoints=False)
        root = tracer.spans[-1]
        assert root.name == "sim.run"
        assert root.attributes["circuit"] == circuit.name
        steps = [c for c in root.children if c.name == "sim.step"]
        assert len(steps) == circuit.num_gates
        for index, step in enumerate(steps):
            assert step.attributes["index"] == index
            assert "op" in step.attributes
            assert step.attributes["nodes"] >= 1
        assert root.attributes["steps"] == circuit.num_gates

    def test_disabled_tracer_records_nothing_but_peak_tracks(self):
        tracer = Tracer(enabled=False)
        simulator = DDSimulator(library.ghz_state(3), seed=0, tracer=tracer)
        simulator.run(stop_at_breakpoints=False)
        assert tracer.spans == ()
        assert simulator.peak_node_count >= 3


class TestVerificationTrajectory:
    def test_example_12_peak_is_a_recorded_metric(self):
        from repro.dd import DDPackage

        registry = MetricsRegistry(enabled=True)
        package = DDPackage(registry=registry)
        result = check_equivalence_alternating(
            library.qft(3),
            library.qft_compiled(3),
            strategy=ApplicationStrategy.COMPILATION_FLOW,
            package=package,
        )
        assert result.equivalent
        assert result.max_nodes == 9  # paper Ex. 12
        assert registry.get("verify_peak_nodes").value == 9
        trajectory = registry.get("verify_node_trajectory")
        assert trajectory.count == len(result.trace)
        applications = sum(
            registry.get("verify_applications_total", {"side": side}).value
            for side in ("G", "G'")
        )
        assert applications == len(result.trace)

    def test_verify_spans_carry_sides_and_nodes(self):
        tracer = Tracer(enabled=True)
        from repro.verification.alternating import _Engine
        from repro.dd import DDPackage

        registry = MetricsRegistry(enabled=True)
        package = DDPackage(registry=registry)
        engine = _Engine(package, 3, tracer=tracer)
        gates = [op for op in library.qft(3)]
        with tracer.span("verify.run"):
            engine.apply_left(gates[0], 0)
        root = tracer.spans[-1]
        [apply_span] = root.children
        assert apply_span.name == "verify.apply"
        assert apply_span.attributes["side"] == "G"
        assert apply_span.attributes["nodes"] >= 1


class TestTraceCli:
    def test_trace_prints_nested_span_tree(self, tmp_path, capsys):
        qasm = tmp_path / "qft.qasm"
        qasm.write_text(library.qft(3).to_qasm())
        assert main(["trace", str(qasm), "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "sim.run" in out
        assert "└─ sim.step" in out
        assert "ms]" in out

    def test_trace_writes_timeline_svg(self, tmp_path, capsys):
        qasm = tmp_path / "qft.qasm"
        qasm.write_text(library.qft(3).to_qasm())
        svg = tmp_path / "timeline.svg"
        assert main(["trace", str(qasm), "--seed", "0", "--svg", str(svg)]) == 0
        text = svg.read_text()
        assert text.startswith("<svg")
        assert "</svg>" in text


class TestTimelineSvg:
    def test_timeline_from_tuples(self):
        svg = timeline_svg(
            [("H [0]", 0.001, 2), ("CX", 0.002, 3), ("measure", 0.0005, 1)],
            title="demo",
        )
        assert svg.startswith("<svg")
        assert "demo" in svg
        assert "H [0]" in svg

    def test_timeline_rejects_empty_input(self):
        with pytest.raises(VisualizationError):
            timeline_svg([])

    def test_span_timeline_from_simulator_run(self):
        tracer = Tracer(enabled=True)
        simulator = DDSimulator(library.ghz_state(3), seed=0, tracer=tracer)
        simulator.run(stop_at_breakpoints=False)
        svg = span_timeline_svg(tracer.spans[-1])
        assert svg.startswith("<svg")
        assert "polyline" in svg
