"""Unit tests for circuit transformations."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.qc import QuantumCircuit, library
from repro.qc.operations import BarrierOp
from repro.qc.transforms import (
    decompose_to_primitives,
    permute_qubits,
    remove_barriers,
    reverse_qubits,
)
from repro.simulation import build_unitary
from repro.verification import check_equivalence_construct


def _wire_permutation_matrix(num_qubits, mapping):
    size = 1 << num_qubits
    matrix = np.zeros((size, size))
    for basis in range(size):
        image = 0
        for line in range(num_qubits):
            if basis & (1 << line):
                image |= 1 << mapping[line]
        matrix[image, basis] = 1.0
    return matrix


class TestPermuteQubits:
    def test_identity_permutation(self):
        circuit = library.qft(3)
        same = permute_qubits(circuit, [0, 1, 2])
        assert np.allclose(build_unitary(same), build_unitary(circuit))

    @pytest.mark.parametrize("mapping", [[1, 0, 2], [2, 0, 1], [2, 1, 0]])
    def test_conjugates_by_wire_permutation(self, mapping):
        circuit = library.qft(3)
        permuted = permute_qubits(circuit, mapping)
        p_matrix = _wire_permutation_matrix(3, mapping)
        expected = p_matrix @ build_unitary(circuit) @ p_matrix.T
        assert np.allclose(build_unitary(permuted), expected)

    def test_remaps_special_operations(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0).reset(1).barrier(0)
        permuted = permute_qubits(circuit, [1, 0])
        assert permuted[0].qubit == 1
        assert permuted[1].qubit == 0
        assert permuted[2].lines == (1,)

    def test_swap_targets_stay_high_low(self):
        circuit = QuantumCircuit(3)
        circuit.swap(2, 0)
        permuted = permute_qubits(circuit, [2, 1, 0])
        assert permuted[0].targets == (2, 0)

    def test_rejects_non_permutation(self):
        with pytest.raises(CircuitError):
            permute_qubits(library.qft(2), [0, 0])
        with pytest.raises(CircuitError):
            permute_qubits(library.qft(2), [0, 2])

    def test_reverse_qubits(self):
        circuit = library.bell_pair()
        reversed_circuit = reverse_qubits(circuit)
        assert reversed_circuit[0].targets == (0,)
        assert reversed_circuit[1].controls == (0,)
        assert reversed_circuit[1].targets == (1,)


class TestRemoveBarriers:
    def test_strips_all_barriers(self):
        circuit = library.qft_compiled(3)
        stripped = remove_barriers(circuit)
        assert not any(isinstance(op, BarrierOp) for op in stripped)
        assert stripped.num_gates == circuit.num_gates

    def test_preserves_functionality(self):
        circuit = library.qft_compiled(2)
        assert np.allclose(
            build_unitary(remove_barriers(circuit)), build_unitary(circuit)
        )


class TestDecomposeToPrimitives:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: library.qft(3),
            lambda: library.ghz_state(3),
            lambda: library.w_state(3),
        ],
    )
    def test_preserves_functionality(self, factory):
        circuit = factory()
        compiled = decompose_to_primitives(circuit)
        result = check_equivalence_construct(circuit, compiled)
        assert result.equivalent_up_to_global_phase

    def test_toffoli_decomposition_exact(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(2, 1, 0)
        compiled = decompose_to_primitives(circuit)
        assert np.allclose(build_unitary(compiled), build_unitary(circuit))
        assert all(op.num_controls <= 1 for op in compiled)

    def test_result_is_primitive(self):
        compiled = decompose_to_primitives(library.qft(4))
        for operation in compiled:
            assert operation.num_controls <= 1
            assert operation.gate != "swap" or not operation.controls
            if operation.gate in ("p", "u1"):
                assert not operation.controls

    def test_barrier_per_gate(self):
        circuit = library.qft(3)
        compiled = decompose_to_primitives(circuit, barrier_per_gate=True)
        barriers = sum(1 for op in compiled if isinstance(op, BarrierOp))
        assert barriers == len(circuit)  # one per original gate incl. none skipped

    def test_matches_library_qft_compiled(self):
        via_transform = decompose_to_primitives(
            library.qft(3), barrier_per_gate=True
        )
        result = check_equivalence_construct(
            via_transform, library.qft_compiled(3)
        )
        assert result.equivalent

    def test_multicontrolled_x_now_supported(self):
        circuit = QuantumCircuit(4)
        circuit.mcx([1, 2, 3], 0)
        compiled = decompose_to_primitives(circuit)
        assert np.allclose(build_unitary(compiled), build_unitary(circuit))

    def test_unsupported_controlled_twoqubit_rejected(self):
        circuit = QuantumCircuit(3)
        circuit.gate("iswap", [2, 1], controls=[0])
        with pytest.raises(CircuitError):
            decompose_to_primitives(circuit)

    def test_specials_pass_through(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0).reset(0)
        compiled = decompose_to_primitives(circuit)
        kinds = [type(op).__name__ for op in compiled]
        assert kinds == ["MeasureOp", "ResetOp"]
