"""Unit tests for the OpenQASM lexer."""

import pytest

from repro.errors import ParseError
from repro.qc.qasm.tokens import TokenType, tokenize


def _texts(source):
    return [(t.type, t.text) for t in tokenize(source) if t.type != TokenType.EOF]


class TestTokens:
    def test_identifiers_and_symbols(self):
        tokens = _texts("qreg q[3];")
        assert tokens == [
            (TokenType.ID, "qreg"),
            (TokenType.ID, "q"),
            (TokenType.SYMBOL, "["),
            (TokenType.INT, "3"),
            (TokenType.SYMBOL, "]"),
            (TokenType.SYMBOL, ";"),
        ]

    def test_arrow_and_equality(self):
        tokens = _texts("-> == -")
        assert [t[1] for t in tokens] == ["->", "==", "-"]

    def test_reals_and_ints(self):
        tokens = _texts("3 3.5 .5 2e3 1.5e-2")
        kinds = [t[0] for t in tokens]
        assert kinds == [
            TokenType.INT,
            TokenType.REAL,
            TokenType.REAL,
            TokenType.REAL,
            TokenType.REAL,
        ]

    def test_string_literal(self):
        tokens = _texts('include "qelib1.inc";')
        assert (TokenType.STRING, "qelib1.inc") in tokens

    def test_line_comment_skipped(self):
        tokens = _texts("x // comment with ; tokens\ny")
        assert [t[1] for t in tokens] == ["x", "y"]

    def test_block_comment_skipped(self):
        tokens = _texts("x /* multi\nline */ y")
        assert [t[1] for t in tokens] == ["x", "y"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* never closed")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('include "broken')

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("x @ y")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_ends_with_eof(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_underscore_identifiers(self):
        tokens = _texts("my_gate _x")
        assert [t[1] for t in tokens] == ["my_gate", "_x"]
