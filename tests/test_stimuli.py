"""Unit tests for stimuli-based equivalence checking."""

import pytest

from repro.errors import VerificationError
from repro.qc import QuantumCircuit, library
from repro.verification import check_equivalence_stimuli


class TestStimuli:
    def test_equivalent_pair_not_falsified(self):
        result = check_equivalence_stimuli(
            library.qft(3), library.qft_compiled(3), seed=0
        )
        assert result.equivalent
        assert result.worst_fidelity > 1.0 - 1e-9
        assert bool(result)

    def test_inequivalent_pair_falsified(self):
        a = library.qft(3)
        b = library.qft(3)
        b.x(1)
        result = check_equivalence_stimuli(a, b, seed=0)
        assert not result.equivalent
        assert result.first_failure is not None
        assert result.worst_fidelity < 1.0

    def test_difference_invisible_on_zero_state_found_by_other_stimuli(self):
        """A bug that only triggers for |1> inputs escapes the all-zero
        stimulus but is caught by random basis states."""
        a = QuantumCircuit(2)
        a.cx(1, 0)
        b = QuantumCircuit(2)  # forgets the CNOT entirely
        result = check_equivalence_stimuli(a, b, num_stimuli=4, seed=1)
        assert not result.equivalent

    def test_zero_state_always_first(self):
        a = QuantumCircuit(1)
        a.x(0)
        b = QuantumCircuit(1)
        result = check_equivalence_stimuli(a, b, num_stimuli=1, seed=0)
        assert not result.equivalent
        assert result.first_failure == 0
        assert result.stimuli_run == 1

    def test_stimuli_capped_at_dimension(self):
        result = check_equivalence_stimuli(
            library.bell_pair(), library.bell_pair(), num_stimuli=1000, seed=0
        )
        assert result.stimuli_run == 4

    def test_global_phase_not_flagged(self):
        a = QuantumCircuit(1)
        a.p(0.4, 0)
        b = QuantumCircuit(1)
        b.rz(0.4, 0)
        result = check_equivalence_stimuli(a, b, seed=0)
        assert result.equivalent  # fidelity is phase-insensitive

    def test_validation(self):
        with pytest.raises(VerificationError):
            check_equivalence_stimuli(library.qft(2), library.qft(3))
        with pytest.raises(VerificationError):
            check_equivalence_stimuli(
                library.qft(2), library.qft(2), num_stimuli=0
            )
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(VerificationError):
            check_equivalence_stimuli(circuit, QuantumCircuit(1))
