"""Unit tests for the OpenQASM exporter (and parse/export roundtrips)."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.qc import QuantumCircuit, library
from repro.qc.qasm import circuit_to_qasm, parse_qasm
from repro.simulation import build_unitary


class TestBasics:
    def test_header(self):
        text = circuit_to_qasm(QuantumCircuit(2, 1))
        assert text.startswith('OPENQASM 2.0;\ninclude "qelib1.inc";\n')
        assert "qreg q[2];" in text
        assert "creg c[1];" in text

    def test_no_creg_when_no_clbits(self):
        assert "creg" not in circuit_to_qasm(QuantumCircuit(2))

    def test_gate_lines(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).rz(0.5, 2)
        text = circuit_to_qasm(circuit)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "ccx q[0],q[1],q[2];" in text
        assert "rz(0.5) q[2];" in text

    def test_specials(self):
        circuit = QuantumCircuit(2, 2)
        circuit.barrier().measure(0, 1).reset(1)
        text = circuit_to_qasm(circuit)
        assert "barrier q;" in text
        assert "measure q[0] -> c[1];" in text
        assert "reset q[1];" in text

    def test_partial_barrier(self):
        circuit = QuantumCircuit(3)
        circuit.barrier(0, 2)
        assert "barrier q[0],q[2];" in circuit_to_qasm(circuit)

    def test_condition(self):
        circuit = QuantumCircuit(1, 2)
        circuit.gate("x", [0], condition=([0, 1], 2))
        assert "if(c==2) x q[0];" in circuit_to_qasm(circuit)

    def test_partial_condition_rejected(self):
        circuit = QuantumCircuit(1, 2)
        circuit.gate("x", [0], condition=([1], 1))
        with pytest.raises(CircuitError):
            circuit_to_qasm(circuit)

    def test_negative_controls_via_x_conjugation(self):
        circuit = QuantumCircuit(2)
        circuit.gate("x", [0], negative_controls=[1])
        text = circuit_to_qasm(circuit)
        assert text.count("x q[1];") == 2
        assert "cx q[1],q[0];" in text

    def test_unexportable_gate_rejected(self):
        circuit = QuantumCircuit(4)
        circuit.mcx([1, 2, 3], 0)  # 3 controls: no qasm name
        with pytest.raises(CircuitError):
            circuit_to_qasm(circuit)


class TestRoundtrips:
    @pytest.mark.parametrize(
        "factory",
        [
            library.bell_pair,
            lambda: library.ghz_state(3),
            lambda: library.qft(3),
            lambda: library.qft_compiled(3),
            lambda: library.w_state(3),
            lambda: library.random_circuit(3, 25, seed=3),
        ],
    )
    def test_unitary_preserved(self, factory):
        circuit = factory()
        reparsed = parse_qasm(circuit_to_qasm(circuit))
        assert np.allclose(build_unitary(reparsed), build_unitary(circuit))

    def test_roundtrip_with_specials(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0).measure(0, 0).reset(0).barrier()
        circuit.gate("x", [1], condition=([0, 1], 1))
        reparsed = parse_qasm(circuit_to_qasm(circuit))
        kinds = [type(op).__name__ for op in reparsed]
        assert kinds == ["GateOp", "MeasureOp", "ResetOp", "BarrierOp", "GateOp"]
        assert reparsed[4].condition == ((0, 1), 1)

    def test_circuit_to_qasm_method(self):
        circuit = library.bell_pair()
        assert circuit.to_qasm() == circuit_to_qasm(circuit)
