"""Fault injection: every planted fault is detected, the service degrades.

The contract under test (ISSUE 5): the sanitizer detects 100% of the fault
classes in :mod:`repro.sanitizer.faults`, each by its *expected* check, and
a service facing corruption or dying workers degrades gracefully (503/504,
``dd_sanitize_violations_total`` metric, degraded ``/healthz``) instead of
serving wrong answers.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.dd import DDPackage
from repro.errors import (
    DDError,
    JobTimeoutError,
    SanitizerError,
    ServiceUnavailableError,
)
from repro.obs.metrics import MetricsRegistry
from repro.qc import library
from repro.sanitizer.faults import (
    EXPECTED_CHECKS,
    FAULT_CLASSES,
    FaultInjector,
    fault_corrupt_job,
    fault_crash_job,
    fault_hang_job,
    inject_fault,
)
from repro.service import Request, ServiceApp, ServiceConfig
from repro.service import workers as service_workers


def _seeded_package(storage: str = None) -> DDPackage:
    """A package with live nodes, complex entries and GC roots to corrupt."""
    package = DDPackage(storage=storage)
    state = package.from_state_vector([0.5, 0.5j, -0.5, 0.5])
    package.incref(state)
    # A second root with a non-trivial weight, so root-targeting faults
    # (orphan-root-weight) always have a candidate.
    from repro.dd.edge import Edge

    scaled = Edge(state.node, package.complex_table.lookup(0.5 + 0.5j))
    package.incref(scaled)
    # A state whose edge weights are NOT pre-seeded specials (0.6/0.8 are
    # no one's seed), so weight-targeting pooled faults always have a
    # non-seed candidate.
    skew = package.from_state_vector([0.6, 0.8j, 0.0, 0.0])
    package.incref(skew)
    # A live matrix DD above level 0, so matrix-structure faults
    # (skip-across-level) always have a candidate.
    gate = package.single_qubit_gate(2, [[0, 1], [1, 0]], 1)
    package.incref(gate)
    # GC roots hold weak references; pin the edges so the nodes stay live
    # for the duration of the test.
    package._test_pin = (state, scaled, skew, gate)
    return package


#: Fault classes that only make sense against pooled index storage.
_POOLED_ONLY = {"pooled-dangling-successor", "pooled-stale-weight"}


# ----------------------------------------------------------------------
# every fault class, asserted individually
# ----------------------------------------------------------------------

class TestFaultDetection:
    def test_perturb_weight_detected(self):
        package = _seeded_package()
        inject_fault(package, "perturb-weight", seed=0)
        report = package.sanitize()
        assert "unique-key" in report.checks_failed, report.summary()

    def test_alias_unique_entry_detected(self):
        package = _seeded_package()
        inject_fault(package, "alias-unique-entry", seed=0)
        report = package.sanitize()
        assert "unique-duplicate" in report.checks_failed, report.summary()

    def test_skew_refcount_detected(self):
        package = _seeded_package()
        inject_fault(package, "skew-refcount", seed=0)
        report = package.sanitize()
        assert "root-count" in report.checks_failed, report.summary()

    def test_orphan_root_weight_detected(self):
        package = _seeded_package()
        inject_fault(package, "orphan-root-weight", seed=0)
        report = package.sanitize()
        assert "root-weight-missing" in report.checks_failed, report.summary()

    def test_unclamp_near_zero_detected(self):
        package = _seeded_package()
        inject_fault(package, "unclamp-near-zero", seed=0)
        report = package.sanitize()
        assert "weight-near-zero" in report.checks_failed, report.summary()

    def test_poison_nonfinite_detected(self):
        package = _seeded_package()
        inject_fault(package, "poison-nonfinite", seed=0)
        report = package.sanitize()
        assert "weight-nonfinite" in report.checks_failed, report.summary()

    def test_duplicate_complex_rep_detected(self):
        package = _seeded_package()
        inject_fault(package, "duplicate-complex-rep", seed=0)
        report = package.sanitize()
        assert "complex-duplicate" in report.checks_failed, report.summary()

    def test_pooled_dangling_successor_detected(self):
        package = _seeded_package(storage="pooled")
        inject_fault(package, "pooled-dangling-successor", seed=0)
        report = package.sanitize()
        assert "pool-dangling-successor" in report.checks_failed, report.summary()

    def test_pooled_stale_weight_detected(self):
        package = _seeded_package(storage="pooled")
        inject_fault(package, "pooled-stale-weight", seed=0)
        report = package.sanitize()
        assert "pool-stale-weight" in report.checks_failed, report.summary()

    def test_corrupt_order_map_detected(self):
        package = _seeded_package()
        inject_fault(package, "corrupt-order-map", seed=0)
        report = package.sanitize()
        assert "order-map" in report.checks_failed, report.summary()

    def test_skip_across_level_detected(self):
        package = _seeded_package()
        inject_fault(package, "skip-across-level", seed=0)
        report = package.sanitize()
        assert "skip-level-dense" in report.checks_failed, report.summary()

    def test_skip_across_level_refused_on_skipping_package(self):
        package = DDPackage(identity_skipping=True)
        gate = package.single_qubit_gate(2, [[0, 1], [1, 0]], 1)
        package.incref(gate)
        package._test_pin = gate
        with pytest.raises(DDError, match="dense"):
            inject_fault(package, "skip-across-level", seed=0)

    @pytest.mark.parametrize("fault", sorted(_POOLED_ONLY))
    def test_pooled_faults_refused_on_object_storage(self, fault):
        with pytest.raises(DDError, match="pooled"):
            inject_fault(_seeded_package(storage="object"), fault, seed=0)

    @pytest.mark.parametrize("storage", ["pooled", "object"])
    @pytest.mark.parametrize("fault", sorted(FAULT_CLASSES))
    @pytest.mark.parametrize("seed", [1, 7, 42, 12345])
    def test_detected_across_seeds(self, fault, seed, storage):
        """No fault class escapes detection, whatever the seed picks."""
        if storage == "object" and fault in _POOLED_ONLY:
            pytest.skip("fault class targets pooled storage only")
        package = _seeded_package(storage=storage)
        inject_fault(package, fault, seed=seed)
        report = package.sanitize()
        assert EXPECTED_CHECKS[fault] in report.checks_failed, (
            f"{fault} (seed={seed}, {storage}) missed: {report.summary()}"
        )

    @pytest.mark.parametrize("fault", sorted(FAULT_CLASSES))
    def test_injection_is_deterministic(self, fault):
        """The same seed plants the same fault — failures reproduce.

        Node uids are process-global (they keep counting across packages),
        so compare the injection details modulo identity fields.
        """
        identity_keys = {"node", "clone", "uid", "root"}
        # Pooled-only faults need the pooled backend regardless of the
        # process-wide REPRO_DD_STORAGE default (the storage-matrix CI leg).
        storage = "pooled" if fault in _POOLED_ONLY else None
        details = []
        checks = []
        for _ in range(2):
            package = _seeded_package(storage=storage)
            detail = inject_fault(package, fault, seed=99)
            details.append(
                {k: v for k, v in detail.items() if k not in identity_keys}
            )
            checks.append(package.sanitize().checks_failed)
        assert details[0] == details[1]
        assert checks[0] == checks[1]

    def test_sanitize_raises_with_report(self):
        package = _seeded_package()
        inject_fault(package, "poison-nonfinite", seed=0)
        with pytest.raises(SanitizerError) as excinfo:
            package.sanitize(raise_on_violation=True)
        assert excinfo.value.report is not None
        assert not excinfo.value.report.ok

    def test_unknown_fault_rejected(self):
        with pytest.raises(DDError, match="unknown fault"):
            inject_fault(_seeded_package(), "melt-cpu")

    def test_clean_package_stays_clean(self):
        """Control: the injector's *presence* plants nothing."""
        package = _seeded_package()
        FaultInjector(package, seed=0)  # constructed but never asked to inject
        assert package.sanitize().ok


# ----------------------------------------------------------------------
# service degradation: inline pool (workers=0)
# ----------------------------------------------------------------------

@pytest.fixture
def inline_app(monkeypatch):
    """An inline-mode app whose worker package sanitizes every operation."""
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "1")
    service_workers._reset_package()
    application = ServiceApp(
        ServiceConfig(workers=0), registry=MetricsRegistry(enabled=True)
    )
    yield application
    application.close()
    service_workers._reset_package()


def _corrupt_worker_package(fault, seed):
    """Plant live state into the inline worker package, then a fault.

    One-shot jobs release their roots on completion, so after a clean
    request the worker package has nothing left to corrupt — plant a
    pinned state first, exactly like a half-finished job would leave.
    """
    package = service_workers._package()
    state = package.from_state_vector([0.5, 0.5j, -0.5, 0.5])
    package.incref(state)
    package._test_pin = state
    inject_fault(package, fault, seed=seed)


def _post(app, path, payload):
    return app.handle(Request("POST", path, body=json.dumps(payload).encode()))


def _json(response):
    return json.loads(response.body.decode())


class TestInlineServiceDegradation:
    def test_corruption_surfaces_as_503_and_degraded_healthz(self, inline_app):
        app = inline_app
        # A first clean request builds (and proves clean) the worker package.
        response = _post(app, "/simulate", {"qasm": library.ghz_state(3).to_qasm()})
        assert response.status == 200
        assert _json(app.handle(Request("GET", "/healthz")))["status"] == "ok"

        _corrupt_worker_package("poison-nonfinite", seed=3)
        response = _post(app, "/simulate", {"qasm": library.qft(3).to_qasm()})
        assert response.status == 503
        error = _json(response)["error"]
        assert error["type"] == "SanitizerError"
        assert "sanitize" in error["message"]

        health = app.handle(Request("GET", "/healthz"))
        body = _json(health)
        assert health.status == 503
        assert body["status"] == "degraded"
        assert body["governance"]["sanitize_violations"] > 0

        metrics = app.handle(Request("GET", "/metrics")).body.decode()
        assert "dd_sanitize_violations_total" in metrics

    def test_degraded_health_is_sticky_until_restart(self, inline_app):
        app = inline_app
        _post(app, "/simulate", {"qasm": library.ghz_state(2).to_qasm()})
        _corrupt_worker_package("perturb-weight", seed=11)
        assert _post(
            app, "/simulate", {"qasm": library.qft(2).to_qasm()}
        ).status == 503
        # Even after the package is replaced (fresh worker), the operator
        # signal persists: corruption was observed in this process's life.
        service_workers._reset_package()
        assert _post(
            app, "/simulate", {"qasm": library.bell_pair().to_qasm()}
        ).status == 200
        body = _json(app.handle(Request("GET", "/healthz")))
        assert body["status"] == "degraded"
        assert body["governance"]["sanitize_violations"] > 0


# ----------------------------------------------------------------------
# service degradation: real worker pool (crash / hang / corrupt)
# ----------------------------------------------------------------------

@pytest.fixture
def chaos_app(monkeypatch):
    """A one-worker app with fault jobs enabled and a short watchdog."""
    monkeypatch.setenv("REPRO_ENABLE_FAULT_JOBS", "1")
    application = ServiceApp(
        ServiceConfig(workers=1, request_deadline=2.0),
        registry=MetricsRegistry(enabled=True),
    )
    yield application
    application.close()


class TestWorkerPoolChaos:
    def test_worker_crash_is_503_and_pool_recovers(self, chaos_app):
        pool = chaos_app.pool
        with pytest.raises(ServiceUnavailableError, match="worker died"):
            pool.submit("fault-crash", fault_crash_job)
        # The dead worker was replaced: the next real job succeeds.
        result = pool.submit(
            "simulate",
            service_workers.simulate_job,
            library.ghz_state(2).to_qasm(),
            0,
            0,
            False,
        )
        assert result["num_qubits"] == 2

    def test_worker_hang_is_killed_by_watchdog(self, chaos_app):
        pool = chaos_app.pool
        with pytest.raises(JobTimeoutError, match="request deadline"):
            pool.submit("fault-hang", fault_hang_job, 30.0)
        result = pool.submit(
            "simulate",
            service_workers.simulate_job,
            library.bell_pair().to_qasm(),
            0,
            0,
            False,
        )
        assert result["num_qubits"] == 2

    def test_worker_corruption_degrades_healthz(self, chaos_app):
        app = chaos_app
        with pytest.raises(SanitizerError):
            app.pool.submit("fault-corrupt", fault_corrupt_job, "perturb-weight", 5)
        health = app.handle(Request("GET", "/healthz"))
        body = _json(health)
        assert health.status == 503
        assert body["status"] == "degraded"
        assert body["governance"]["sanitize_violations"] > 0

    def test_crash_job_refuses_outside_worker_child(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_CHILD", raising=False)
        with pytest.raises(DDError, match="worker processes"):
            fault_crash_job()
