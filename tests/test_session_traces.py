"""Tests for the verification-session trace chart and related plumbing."""

import xml.etree.ElementTree as ET

from repro.qc import library
from repro.tool import VerificationSession


class TestVerificationTraceChart:
    def test_trace_svg_after_run(self):
        session = VerificationSession(library.qft(3), library.qft_compiled(3))
        session.run_compilation_flow()
        svg = session.trace_svg()
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        total = len(session._engine.trace)
        assert svg.count("<circle") >= total

    def test_trace_reflects_partial_progress(self):
        session = VerificationSession(library.qft(3), library.qft_compiled(3))
        session.apply_left()
        session.apply_right_to_barrier()
        svg = session.trace_svg(title="partial")
        assert "partial" in svg
        # One left application plus the barrier group from the right.
        assert svg.count("from G") >= 1

    def test_peak_matches_chart_maximum(self):
        session = VerificationSession(library.qft(3), library.qft_compiled(3))
        session.run_compilation_flow()
        counts = [entry.node_count for entry in session._engine.trace]
        assert max(counts) == session.peak_node_count == 9
