"""Unit tests for DD approximation by branch pruning."""

import numpy as np
import pytest

from repro.dd import DDPackage
from repro.dd.approximation import prune_small_branches, prune_to_size
from repro.dd.edge import ZERO_EDGE
from repro.errors import DDError, InvalidStateError
from repro.qc import library
from repro.simulation import DDSimulator
from tests.conftest import random_state


def _spiky_state(package, num_qubits=8, noise=0.01, seed=0):
    """One dominant amplitude plus lots of small noise."""
    rng = np.random.default_rng(seed)
    size = 1 << num_qubits
    vector = np.zeros(size, dtype=complex)
    vector[0] = 1.0
    vector[1:] = noise * (rng.normal(size=size - 1) + 1j * rng.normal(size=size - 1))
    vector /= np.linalg.norm(vector)
    return package.from_state_vector(vector), vector


class TestPruneSmallBranches:
    def test_zero_threshold_is_identity(self, package):
        state, __ = _spiky_state(package)
        result = prune_small_branches(package, state, 0.0)
        assert result.state == state
        assert result.fidelity == 1.0
        assert result.compression == 1.0

    def test_result_is_normalized(self, package):
        state, __ = _spiky_state(package)
        result = prune_small_branches(package, state, 1e-3)
        assert abs(package.norm_squared(result.state) - 1.0) < 1e-9

    def test_fidelity_matches_direct_computation(self, package):
        state, vector = _spiky_state(package)
        result = prune_small_branches(package, state, 1e-3)
        approx = package.to_vector(result.state, 8)
        assert result.fidelity == pytest.approx(
            abs(np.vdot(vector, approx)) ** 2, abs=1e-9
        )

    def test_compression_grows_with_threshold(self, package):
        state, __ = _spiky_state(package)
        nodes = [
            prune_small_branches(package, state, threshold).nodes_after
            for threshold in (1e-6, 1e-4, 1e-3)
        ]
        assert nodes[0] >= nodes[1] >= nodes[2]
        assert nodes[2] < nodes[0]

    def test_fidelity_degrades_gracefully(self, package):
        state, __ = _spiky_state(package)
        result = prune_small_branches(package, state, 1e-3)
        assert result.fidelity > 0.9
        assert result.pruned_mass < 0.1

    def test_structured_states_unaffected(self, package):
        """GHZ branches carry mass 1/2 each: mild pruning is a no-op."""
        simulator = DDSimulator(library.ghz_state(10), package=package)
        simulator.run_all()
        result = prune_small_branches(package, simulator.state, 1e-3)
        assert result.nodes_after == result.nodes_before
        assert result.fidelity == pytest.approx(1.0)

    def test_basis_probabilities_preserved_for_survivors(self, package):
        state, vector = _spiky_state(package)
        result = prune_small_branches(package, state, 1e-4)
        # The dominant amplitude keeps (renormalized) its probability.
        amp = package.amplitude(result.state, 0, 8)
        assert abs(amp) ** 2 >= abs(vector[0]) ** 2 - 1e-9

    def test_requires_l2(self, max_package):
        state = max_package.from_state_vector([1.0, 0.0])
        with pytest.raises(DDError):
            prune_small_branches(max_package, state, 1e-3)

    def test_threshold_validation(self, package):
        state = package.zero_state(2)
        with pytest.raises(DDError):
            prune_small_branches(package, state, -0.1)
        with pytest.raises(DDError):
            prune_small_branches(package, state, 1.0)

    def test_zero_state_input_rejected(self, package):
        with pytest.raises(InvalidStateError):
            prune_small_branches(package, ZERO_EDGE, 1e-3)

    def test_overpruning_rejected(self, package):
        plus = package.from_state_vector([0.5, 0.5, 0.5, 0.5])
        with pytest.raises(InvalidStateError):
            prune_small_branches(package, plus, 0.9)


class TestPruneToSize:
    def test_meets_budget(self, package):
        state, __ = _spiky_state(package)
        result = prune_to_size(package, state, 16)
        assert result.nodes_after <= 16
        assert result.fidelity > 0.9

    def test_no_op_when_already_small(self, package):
        simulator = DDSimulator(library.ghz_state(8), package=package)
        simulator.run_all()
        result = prune_to_size(package, simulator.state, 100)
        assert result.nodes_after == 15
        assert result.fidelity == pytest.approx(1.0)

    def test_impossible_budget_raises(self, package):
        state, __ = _spiky_state(package)
        with pytest.raises((InvalidStateError, DDError)):
            prune_to_size(package, state, 0)

    def test_random_state_needs_high_price(self, package, rng):
        """Maximally random states compress only at real fidelity cost."""
        vector = random_state(6, rng)
        state = package.from_state_vector(vector)
        result = prune_to_size(package, state, 20)
        assert result.nodes_after <= 20
        assert result.fidelity < 1.0  # there is no free lunch here
