"""Unit tests for the exact (branching) density-matrix simulator."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.qc import QuantumCircuit, library
from repro.simulation import DDSimulator, DensityMatrixSimulator

INV_SQRT2 = 1.0 / math.sqrt(2.0)


class TestBasics:
    def test_unitary_circuit_matches_vector_simulation(self):
        circuit = library.qft(3)
        exact = DensityMatrixSimulator(circuit)
        exact.run()
        vector_sim = DDSimulator(circuit)
        vector_sim.run_all()
        vector = vector_sim.statevector()
        assert np.allclose(
            exact.density_matrix(), np.outer(vector, vector.conj())
        )
        assert abs(exact.purity() - 1.0) < 1e-9

    def test_step_past_end(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.step()

    def test_barrier_is_noop(self):
        circuit = QuantumCircuit(1)
        circuit.barrier()
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        assert np.allclose(simulator.density_matrix(), [[1, 0], [0, 0]])


class TestMeasurementBranching:
    def test_hadamard_measure_splits_branches(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        assert len(simulator.branches) == 2
        distribution = simulator.classical_distribution()
        assert abs(distribution["0"] - 0.5) < 1e-9
        assert abs(distribution["1"] - 0.5) < 1e-9

    def test_ensemble_state_is_mixed_after_measurement(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        assert np.allclose(simulator.density_matrix(), np.eye(2) / 2)
        assert abs(simulator.purity() - 0.5) < 1e-9

    def test_deterministic_measurement_single_branch(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).measure(0, 0)
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        assert len(simulator.branches) == 1
        assert simulator.classical_distribution() == {"1": 1.0}

    def test_bell_measurement_correlations(self):
        """Exact version of paper Ex. 2: the joint distribution puts all
        mass on 00 and 11."""
        circuit = library.bell_pair()
        circuit.measure(0, 0).measure(1, 1)
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        distribution = simulator.classical_distribution()
        assert set(distribution) == {"00", "11"}
        assert abs(distribution["00"] - 0.5) < 1e-9

    def test_bv_distribution_is_deterministic(self):
        simulator = DensityMatrixSimulator(library.bernstein_vazirani("1101"))
        simulator.run()
        assert simulator.classical_distribution() == {"1101": 1.0}

    def test_classical_control_per_branch(self):
        """Deferred correction: each branch gets its own conditioned gate,
        so the ensemble collapses back to a pure |0>."""
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).measure(0, 0)
        circuit.gate("x", [0], condition=([0], 1))
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        assert np.allclose(simulator.density_matrix(), [[1, 0], [0, 0]])
        # Classical bits still differ across branches.
        assert set(simulator.classical_distribution()) == {"0", "1"}

    def test_monte_carlo_agreement(self):
        """The trajectory simulator's empirical distribution converges to
        the exact branch distribution."""
        circuit = QuantumCircuit(2, 2)
        circuit.h(1).cx(1, 0).ry(0.7, 0).measure(0, 0).measure(1, 1)
        exact = DensityMatrixSimulator(circuit)
        exact.run()
        expected = exact.classical_distribution()
        counts: dict = {}
        runs = 4000
        for seed in range(runs):
            trajectory = DDSimulator(circuit, seed=seed)
            trajectory.run_all()
            key = "".join(str(b) for b in reversed(trajectory.classical_bits))
            counts[key] = counts.get(key, 0) + 1
        for key, probability in expected.items():
            assert abs(counts.get(key, 0) / runs - probability) < 0.05


class TestReset:
    def test_exact_reset_of_entangled_qubit(self):
        """Resetting one Bell qubit leaves the partner maximally mixed —
        exactly, in one run (no dialog, paper Sec. IV-B contrast)."""
        circuit = library.bell_pair()
        circuit.reset(0)
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        assert len(simulator.branches) == 1  # no branching for resets
        expected = np.zeros((4, 4))
        expected[0, 0] = 0.5
        expected[2, 2] = 0.5
        assert np.allclose(simulator.density_matrix(), expected)
        reduced = simulator.reduced_density_matrix([1])
        assert np.allclose(reduced, np.eye(2) / 2)

    def test_reset_then_reuse(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).reset(0).x(0)
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        assert np.allclose(simulator.density_matrix(), [[0, 0], [0, 1]])


class TestQueries:
    def test_probabilities(self):
        circuit = library.bell_pair()
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        p0, p1 = simulator.probabilities(0)
        assert abs(p0 - 0.5) < 1e-9

    def test_reduced_density_matrix_of_ghz(self):
        simulator = DensityMatrixSimulator(library.ghz_state(3))
        simulator.run()
        reduced = simulator.reduced_density_matrix([0])
        assert np.allclose(reduced, np.eye(2) / 2)
        reduced_two = simulator.reduced_density_matrix([0, 1])
        expected = np.zeros((4, 4))
        expected[0, 0] = 0.5
        expected[3, 3] = 0.5
        assert np.allclose(reduced_two, expected)

    def test_branch_merging(self):
        """Measuring an unentangled |+> twice yields two classical values
        but identical quantum states, which merge."""
        circuit = QuantumCircuit(2, 2)
        circuit.h(0).measure(0, 0)
        circuit.gate("x", [0], condition=([0], 1))  # restore |0>
        circuit.measure(0, 1)
        simulator = DensityMatrixSimulator(circuit)
        simulator.run()
        # After the correction, q0 is |0> in both branches; the second
        # measurement cannot split further.
        assert len(simulator.branches) == 2
        for branch in simulator.branches:
            assert branch.classical_bits[1] == 0
