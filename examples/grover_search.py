"""Grover search under the microscope — DD compactness during a real
algorithm (the "strengths and limits" the paper wants users to build an
intuition for).

Runs Grover's algorithm for a marked item, tracing the decision-diagram
size after every gate: the state stays tiny near the uniform superposition
and the marked state, and only grows in between.  Finishes with weak
simulation (paper Sec. III-B): sampling the final diagram.

Run:  python examples/grover_search.py [num_qubits] [marked]
"""

import sys

import numpy as np

from repro import DDSimulator, library


def main(num_qubits: int = 5, marked: int = 19) -> None:
    circuit = library.grover(num_qubits, marked)
    print(f"Grover search on {num_qubits} qubits for |{marked:0{num_qubits}b}> "
          f"({circuit.num_gates} gates)\n")

    simulator = DDSimulator(circuit, seed=0)
    trace = []
    while not simulator.at_end:
        record = simulator.step_forward()
        trace.append(record.node_count)
    peak = max(trace)
    print(f"DD size per step (dense vector: {2**num_qubits} amplitudes):")
    width = 60
    for step, nodes in enumerate(trace):
        bar = "#" * max(1, round(nodes / peak * width))
        print(f"  step {step + 1:3d}  {nodes:4d} {bar}")

    probabilities = np.abs(simulator.statevector()) ** 2
    best = int(np.argmax(probabilities))
    print(f"\nmost likely outcome: |{best:0{num_qubits}b}> "
          f"with probability {probabilities[best]:.3f}")
    assert best == marked

    counts = simulator.sample_counts(1000, seed=42)
    hits = counts.get(f"{marked:0{num_qubits}b}", 0)
    print(f"sampling 1000 shots from the final DD: {hits} hits "
          f"({hits / 10:.1f}% success)")
    top = sorted(counts.items(), key=lambda item: -item[1])[:5]
    print("top outcomes:", top)


if __name__ == "__main__":
    arguments = [int(value) for value in sys.argv[1:3]]
    main(*arguments)
