"""Variational-style energy evaluation on decision diagrams.

Evaluates the transverse-field Ising Hamiltonian

    H = -J sum_i Z_i Z_{i+1}  -  h sum_i X_i

on decision-diagram states, exactly (one matrix-vector product per Pauli
string).  A one-parameter ansatz — RY(theta) on every qubit followed by a
CNOT chain — is swept over theta, and the energy-minimizing angle is
compared against exact diagonalization of the dense Hamiltonian.  The
point: expectation values, the bread and butter of variational
algorithms, come for free on top of the paper's DD machinery.

Run:  python examples/ising_energy.py
"""

import numpy as np

from repro import DDPackage, DDSimulator, QuantumCircuit
from repro.dd.expectation import expectation_hamiltonian

NUM_QUBITS = 6
COUPLING = 1.0
FIELD = 0.7


def ising_terms(num_qubits: int) -> dict:
    terms = {}
    for qubit in range(num_qubits - 1):
        string = ["I"] * num_qubits
        string[num_qubits - 1 - qubit] = "Z"
        string[num_qubits - 2 - qubit] = "Z"
        terms["".join(string)] = -COUPLING
    for qubit in range(num_qubits):
        string = ["I"] * num_qubits
        string[num_qubits - 1 - qubit] = "X"
        terms["".join(string)] = -FIELD
    return terms


def ansatz(theta: float) -> QuantumCircuit:
    circuit = QuantumCircuit(NUM_QUBITS, name=f"ansatz({theta:.3f})")
    for qubit in range(NUM_QUBITS):
        circuit.ry(theta, qubit)
    for qubit in range(NUM_QUBITS - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def dense_hamiltonian(terms: dict) -> np.ndarray:
    paulis = {
        "I": np.eye(2), "X": np.array([[0, 1], [1, 0]]),
        "Y": np.array([[0, -1j], [1j, 0]]), "Z": np.diag([1, -1]),
    }
    size = 1 << NUM_QUBITS
    matrix = np.zeros((size, size), dtype=complex)
    for string, coefficient in terms.items():
        term = np.ones((1, 1))
        for character in string:
            term = np.kron(term, paulis[character])
        matrix += coefficient * term
    return matrix


def main() -> None:
    terms = ising_terms(NUM_QUBITS)
    print(f"Transverse-field Ising on {NUM_QUBITS} qubits "
          f"(J={COUPLING}, h={FIELD}); {len(terms)} Pauli terms\n")

    package = DDPackage()
    print("theta sweep of the RY+CNOT-chain ansatz:")
    print("  theta     <H>        DD nodes")
    best = (None, np.inf)
    for theta in np.linspace(0.0, np.pi, 21):
        simulator = DDSimulator(ansatz(float(theta)), package=package)
        simulator.run_all()
        energy = expectation_hamiltonian(package, simulator.state, terms)
        nodes = simulator.node_count()
        marker = ""
        if energy < best[1]:
            best = (float(theta), energy)
            marker = "  <-- best so far"
        print(f"  {theta:5.3f}  {energy:9.5f}  {nodes:8d}{marker}")

    ground = float(np.linalg.eigvalsh(dense_hamiltonian(terms))[0])
    print(f"\nbest ansatz energy:   {best[1]:9.5f} at theta = {best[0]:.3f}")
    print(f"exact ground energy:  {ground:9.5f}")
    print(f"ansatz gap:           {best[1] - ground:9.5f} "
          "(a one-parameter ansatz cannot reach the true ground state)")
    assert best[1] >= ground - 1e-9


if __name__ == "__main__":
    main()
