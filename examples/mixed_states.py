"""Mixed states, exactly — beyond the tool's probabilistic resets.

Paper Sec. IV-B explains that reset "maps pure states to mixed states" and
that the web tool therefore resorts to a probabilistic dialog.  This example
shows the exact alternative built into this library:

1. resetting one qubit of a Bell pair with the exact channel (one run, a
   mixed result, purity 1/2) versus averaging many probabilistic
   trajectories;
2. the exact classical outcome distribution of a measured circuit, with
   classically-controlled corrections handled per branch;
3. reduced density matrices via the partial trace (the quantity paper
   Ex. 1 says cannot be a pure state for entangled systems).

Run:  python examples/mixed_states.py
"""

import numpy as np

from repro import DDPackage, DDSimulator, DensityMatrixSimulator, QuantumCircuit, library
from repro.dd import density


def exact_versus_trajectories() -> None:
    print("=" * 64)
    print("1. Reset of one Bell qubit: exact channel vs trajectories")
    print("=" * 64)
    circuit = library.bell_pair()
    circuit.reset(0)

    exact = DensityMatrixSimulator(circuit)
    exact.run()
    print("exact density matrix (one run):")
    print(np.round(exact.density_matrix().real, 4))
    print(f"purity Tr(rho^2) = {exact.purity():.4f}  "
          "(< 1: the state is mixed, as the paper notes)")

    runs = 500
    accumulated = np.zeros((4, 4), dtype=complex)
    for seed in range(runs):
        trajectory = DDSimulator(circuit, seed=seed)
        trajectory.run_all()
        vector = trajectory.statevector()
        accumulated += np.outer(vector, vector.conj())
    averaged = accumulated / runs
    deviation = np.max(np.abs(averaged - exact.density_matrix()))
    print(f"\n{runs} probabilistic trajectories (the tool's approach), "
          f"averaged:\nmax deviation from exact: {deviation:.4f} "
          "(Monte-Carlo noise ~ 1/sqrt(N))")


def exact_distribution() -> None:
    print("\n" + "=" * 64)
    print("2. Exact outcome distribution with per-branch corrections")
    print("=" * 64)
    circuit = QuantumCircuit(2, 2)
    circuit.h(1)
    circuit.cx(1, 0)
    circuit.ry(0.8, 0)
    circuit.measure(0, 0)
    circuit.gate("z", [1], condition=([0], 1))  # correction on branch c0=1
    circuit.measure(1, 1)
    simulator = DensityMatrixSimulator(circuit)
    simulator.run()
    print("classical register distribution (c1 c0), exact:")
    for outcome, probability in sorted(simulator.classical_distribution().items()):
        bar = "#" * round(probability * 40)
        print(f"  {outcome}: {probability:.6f} {bar}")
    print(f"branches tracked: {len(simulator.branches)}")


def reduced_states() -> None:
    print("\n" + "=" * 64)
    print("3. Reduced states of the GHZ state (partial trace)")
    print("=" * 64)
    package = DDPackage()
    simulator = DDSimulator(library.ghz_state(4), package=package)
    simulator.run_all()
    rho = density.density_from_state(package, simulator.state)
    print(f"full state: {package.node_count(rho)} DD nodes, "
          f"purity {density.purity(package, rho):.3f}")
    one = package.to_matrix(density.partial_trace(package, rho, [1, 2, 3]), 1)
    print("\nreduced single-qubit state (paper Ex. 1: the parts of an")
    print("entangled state cannot be described alone):")
    print(np.round(one.real, 3))
    two = package.to_matrix(density.partial_trace(package, rho, [2, 3]), 2)
    print("\nreduced two-qubit state (classically correlated, not entangled):")
    print(np.round(two.real, 3))


if __name__ == "__main__":
    exact_versus_trajectories()
    exact_distribution()
    reduced_states()
