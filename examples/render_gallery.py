"""Rendering gallery — regenerates the paper's diagrams (Figs. 2-8).

Writes, into ``gallery/``:

* the Bell-state DD, Hadamard DD and CNOT DD of Fig. 2 (classic style);
* the H (x) I2 tensor product of Fig. 3;
* the QFT functionality DD of Fig. 6 (colored style);
* the three style variants of Fig. 7, plus the HLS color wheel;
* an interactive HTML step-through of the Fig. 8 simulation.

Run:  python examples/render_gallery.py
"""

import math
import os

import numpy as np

from repro import DDPackage, DDStyle, dd_to_dot, dd_to_svg, library
from repro.qc.dd_builder import circuit_to_dd
from repro.tool import SimulationSession
from repro.vis.svg import color_wheel_svg

OUT_DIR = "gallery"
INV_SQRT2 = 1.0 / math.sqrt(2.0)


def _write(name: str, content: str) -> None:
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    print(f"wrote {path}")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    package = DDPackage()

    # Fig. 2: state and operation DDs, classic style.
    bell = package.from_state_vector([INV_SQRT2, 0, 0, INV_SQRT2])
    _write("fig2a_bell.svg", dd_to_svg(package, bell, title="Bell state"))
    _write("fig2a_bell.dot", dd_to_dot(package, bell))
    hadamard = package.from_matrix(np.array([[1, 1], [1, -1]]) / math.sqrt(2))
    _write("fig2b_hadamard.svg",
           dd_to_svg(package, hadamard, title="Hadamard gate"))
    cnot = package.from_matrix(
        np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]])
    )
    _write("fig2c_cnot.svg", dd_to_svg(package, cnot, title="Controlled-NOT"))

    # Fig. 3: the tensor product H (x) I2.
    product = package.kron(hadamard, package.identity(1))
    _write("fig3_h_kron_i.svg",
           dd_to_svg(package, product, title="H \N{CIRCLED TIMES} I2"))

    # Fig. 6: QFT functionality, colored.
    qft_dd = circuit_to_dd(package, library.qft(3))
    _write(
        "fig6_qft3.svg",
        dd_to_svg(package, qft_dd, DDStyle.colored(),
                  title="Three-qubit QFT functionality"),
    )

    # Fig. 7: the three styles on one state, plus the color wheel.
    from repro.simulation import DDSimulator

    simulator = DDSimulator(library.qft(3), package=package)
    simulator.run_all()
    state = simulator.state
    for name, style in (
        ("classic", DDStyle.classic()),
        ("colored", DDStyle.colored()),
        ("modern", DDStyle.modern()),
    ):
        _write(f"fig7_{name}.svg", dd_to_svg(package, state, style))
    _write("fig7b_color_wheel.svg", color_wheel_svg())

    # Fig. 8: interactive simulation step-through.
    circuit = library.bell_pair()
    circuit.measure(0, 0)
    session = SimulationSession(circuit)
    session.forward()
    session.forward()
    session.forward(outcome=1)
    session.export_html(os.path.join(OUT_DIR, "fig8_simulation.html"),
                        title="Fig. 8: simulating the Bell circuit")
    print(f"wrote {os.path.join(OUT_DIR, 'fig8_simulation.html')}")


if __name__ == "__main__":
    main()
