"""Verifying a compilation flow — paper Sec. III-C / IV-C, Ex. 12 & 15.

Compiles the QFT into primitive gates (controlled phases -> phase gates +
CNOTs, SWAPs -> CNOT triples; paper Ex. 10), then proves the compiled
circuit equivalent to the original three ways:

1. construction-based: build both functionalities, compare root pointers;
2. alternating G (G')^-1 with every application strategy, reporting the
   peak diagram size each strategy needs (the 9-vs-21 result of Ex. 12);
3. stimuli-based falsification as a sanity check, plus a deliberately
   broken compilation to show all checkers catching the bug.

Also exports the verification walkthrough as an interactive HTML file
(the offline analogue of the tool's verification tab, Fig. 9).

Run:  python examples/verify_compilation.py
"""

from repro import (
    ApplicationStrategy,
    VerificationSession,
    check_equivalence_alternating,
    check_equivalence_construct,
    check_equivalence_stimuli,
    library,
)

NUM_QUBITS = 3


def main() -> None:
    abstract = library.qft(NUM_QUBITS)
    compiled = library.qft_compiled(NUM_QUBITS)
    print(f"abstract QFT{NUM_QUBITS}:  {abstract.num_gates} gates")
    print(f"compiled QFT{NUM_QUBITS}:  {compiled.num_gates} gates "
          f"(+ barriers after each abstract gate)\n")

    # 1. Canonicity-based comparison (paper Ex. 11).
    construct = check_equivalence_construct(abstract, compiled)
    print(f"construction-based: equivalent={construct.equivalent}, "
          f"peak {construct.max_nodes} nodes")

    # 2. Alternating scheme, every strategy (paper Ex. 12).
    print("\nalternating G (G')^-1 scheme:")
    print(f"  {'strategy':20s} {'peak nodes':>10s}")
    for strategy in ApplicationStrategy:
        result = check_equivalence_alternating(abstract, compiled, strategy)
        assert result.equivalent
        print(f"  {strategy.value:20s} {result.max_nodes:>10d}")
    print("  (paper Ex. 12: maximum of 9 nodes versus 21 for the full matrix)")

    # 3. Stimuli-based falsification pass.
    stimuli = check_equivalence_stimuli(abstract, compiled, seed=0)
    print(f"\nstimuli-based: not falsified after {stimuli.stimuli_run} "
          f"basis states (worst fidelity {stimuli.worst_fidelity:.12f})")

    # A broken compilation: drop the final phase gate.
    broken = library.qft_compiled(NUM_QUBITS)
    broken.tdg(0)  # sneak in an extra gate
    print("\nnow checking a deliberately broken compilation (extra Tdg):")
    print(f"  construction-based: equivalent="
          f"{check_equivalence_construct(abstract, broken).equivalent}")
    print(f"  alternating:        equivalent="
          f"{check_equivalence_alternating(abstract, broken).equivalent}")
    print(f"  stimuli:            equivalent="
          f"{check_equivalence_stimuli(abstract, broken, seed=0).equivalent}")

    # 4. Interactive walkthrough (Fig. 9) exported to HTML.
    session = VerificationSession(abstract, compiled)
    session.run_compilation_flow()
    output = "qft_verification.html"
    session.export_html(output)
    print(f"\nverification walkthrough written to {output} "
          f"(peak {session.peak_node_count} nodes; open it in a browser and "
          "step through with the arrow buttons)")


if __name__ == "__main__":
    main()
