"""Quickstart: decision diagrams for quantum computing in five minutes.

Builds the paper's running example (the Bell circuit of Fig. 1(c)), watches
the decision diagram evolve during simulation, measures, samples, and checks
two circuits for equivalence.

Run:  python examples/quickstart.py
"""

from repro import (
    DDPackage,
    QuantumCircuit,
    SimulationSession,
    check_equivalence_construct,
    dd_to_text,
    library,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a circuit (paper Fig. 1(c)): H on q1, then CNOT.
    # ------------------------------------------------------------------
    circuit = library.bell_pair()
    print("The circuit (top wire = most-significant qubit q1):")
    from repro.vis import circuit_to_text

    print(circuit_to_text(circuit))

    # ------------------------------------------------------------------
    # 2. Step through the simulation and watch the diagram (Sec. IV-B).
    # ------------------------------------------------------------------
    session = SimulationSession(circuit, seed=7)
    print("\nInitial state |00> as a decision diagram:")
    print(session.current_text())
    while not session.simulator.at_end:
        record = session.forward()
        print(f"\nAfter step {record.index + 1} "
              f"({record.kind.value}, {record.node_count} nodes):")
        print(session.current_text())

    # ------------------------------------------------------------------
    # 3. Measure: probabilities and (non-destructive) sampling (Ex. 2).
    # ------------------------------------------------------------------
    p0, p1 = session.simulator.probabilities(0)
    print(f"\nMeasuring q0 would give |0> with {p0:.0%} and |1> with {p1:.0%}.")
    print("1000 shots:", dict(sorted(session.sample_counts(1000, seed=1).items())))

    # ------------------------------------------------------------------
    # 4. Equivalence checking (Sec. III-C): same state, different circuit.
    # ------------------------------------------------------------------
    alternative = QuantumCircuit(2, name="bell-via-q0")
    alternative.h(0).cx(0, 1).swap(0, 1)
    result = check_equivalence_construct(circuit, alternative)
    print(f"\n{circuit.name} == {alternative.name}? {result.equivalent} "
          f"(peak {result.max_nodes} nodes)")

    # ------------------------------------------------------------------
    # 5. The DD package directly: states, gates, fidelity.
    # ------------------------------------------------------------------
    package = DDPackage()
    ghz = package.from_state_vector(
        [2 ** -0.5, 0, 0, 0, 0, 0, 0, 2 ** -0.5]
    )
    print(f"\nA 3-qubit GHZ state needs {package.node_count(ghz)} DD nodes "
          f"(the dense vector has {2**3} amplitudes):")
    print(dd_to_text(package, ghz))


if __name__ == "__main__":
    main()
