"""Quantum teleportation — the special operations of paper Sec. IV-B.

Teleports an arbitrary single-qubit state from q2 to q0 using measurement
and classically-controlled corrections, exercising everything the tool's
simulation tab supports: measurement dialogs, classical registers,
conditioned gates and step-through navigation.  The decision diagram of the
state is printed at the interesting points, and the protocol is validated
by fidelity with the expected output for every measurement branch.

Run:  python examples/teleportation.py
"""

import math

from repro import DDPackage, DDSimulator, QuantumCircuit, dd_to_text

#: The state to teleport: cos(pi/8)|0> + sin(pi/8) e^(i pi/3) |1>.
THETA = math.pi / 4.0
PHI = math.pi / 3.0


def teleportation_circuit() -> QuantumCircuit:
    """q2: message, q1/q0: Bell pair; the message ends up on q0."""
    circuit = QuantumCircuit(3, 2, name="teleport")
    # Prepare the message state on q2.
    circuit.ry(THETA, 2)
    circuit.rz(PHI, 2)
    circuit.barrier()
    # Entangle q1 and q0.
    circuit.h(1)
    circuit.cx(1, 0)
    circuit.barrier()
    # Bell measurement of q2 and q1.
    circuit.cx(2, 1)
    circuit.h(2)
    circuit.measure(2, 1)
    circuit.measure(1, 0)
    circuit.barrier()
    # Classically-controlled corrections on q0.
    circuit.gate("x", [0], condition=([0], 1))
    circuit.gate("z", [0], condition=([1], 1))
    return circuit


def expected_amplitudes():
    alpha = math.cos(THETA / 2.0)
    beta = math.sin(THETA / 2.0) * complex(math.cos(PHI), math.sin(PHI))
    return alpha, beta


def main() -> None:
    circuit = teleportation_circuit()
    alpha, beta = expected_amplitudes()
    print(f"Teleporting |psi> = {alpha:.4f}|0> + {beta:.4f}|1> from q2 to q0\n")

    # Run all four measurement branches deterministically by seeding.
    package = DDPackage()
    seen_branches = set()
    for seed in range(16):
        simulator = DDSimulator(circuit, package=package, seed=seed)
        simulator.run_all()
        bits = simulator.classical_bits
        if bits in seen_branches:
            continue
        seen_branches.add(bits)
        state = simulator.state
        # q0's reduced state must equal |psi>; q2/q1 are in basis states, so
        # checking the amplitudes along the measured branch suffices.
        q2, q1 = bits[1], bits[0]
        amp0 = package.amplitude(state, (q2, q1, 0))
        amp1 = package.amplitude(state, (q2, q1, 1))
        fidelity = abs(amp0.conjugate() * alpha + amp1.conjugate() * beta) ** 2
        print(f"measurement outcome (c1, c0) = ({bits[1]}, {bits[0]}): "
              f"fidelity with |psi> = {fidelity:.6f}")
        assert fidelity > 1.0 - 1e-9, "teleportation failed!"
    print(f"\nAll {len(seen_branches)} observed measurement branches "
          "deliver the message state exactly.")

    # Show the diagram right before the corrections for one branch.
    simulator = DDSimulator(circuit, seed=0)
    while simulator.position < len(circuit) - 2:
        simulator.step_forward()
    print("\nState DD after measurement, before corrections:")
    print(dd_to_text(simulator.package, simulator.state))
    simulator.run_all()
    print("\nFinal state DD (message teleported to q0):")
    print(dd_to_text(simulator.package, simulator.state))


if __name__ == "__main__":
    main()
