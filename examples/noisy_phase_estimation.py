"""Noisy quantum phase estimation — algorithms meeting device errors.

Runs QPE (built on the paper's QFT, Ex. 10) for an exactly representable
phase, first ideally (deterministic outcome) and then under increasing
depolarizing noise, computing the *exact* success probability from
density-matrix decision diagrams.  Finishes with Bloch-sphere views of the
counting register as dephasing sets in.

Run:  python examples/noisy_phase_estimation.py
"""

import numpy as np

from repro import DensityMatrixSimulator, library
from repro.noise import NoiseModel, NoisySimulator, depolarizing

PHASE = 5 / 16  # exactly representable with 4 counting qubits
COUNTING = 4
TARGET = format(5, f"0{COUNTING}b")


def ideal_run() -> None:
    print(f"Estimating the phase {PHASE} of P(2*pi*{PHASE}) with "
          f"{COUNTING} counting qubits (target outcome: {TARGET})\n")
    simulator = DensityMatrixSimulator(library.phase_estimation(COUNTING, PHASE))
    simulator.run()
    distribution = simulator.classical_distribution()
    print(f"ideal run: P({TARGET}) = {distribution.get(TARGET, 0.0):.6f} "
          "(deterministic, as theory promises)")


def noisy_sweep() -> None:
    print("\nsuccess probability under depolarizing noise per gate:")
    print("   p        P(correct)   purity")
    circuit = library.phase_estimation(COUNTING, PHASE)
    for probability in (0.0, 0.002, 0.005, 0.01, 0.02):
        model = NoiseModel(
            single_qubit=depolarizing(probability),
            two_qubit=depolarizing(2.0 * probability),
        )
        simulator = NoisySimulator(circuit, model)
        simulator.run()
        success = simulator.classical_distribution().get(TARGET, 0.0)
        print(f"  {probability:6.3f}   {success:10.6f}   {simulator.purity():.4f}")
    print("(exact values from density-matrix DDs - no sampling noise)")


def bloch_views() -> None:
    from repro.dd import density
    from repro.vis.bloch import all_bloch_vectors, bloch_svg

    print("\nBloch vectors of the counting register right before the "
          "inverse QFT:")
    # Run the unitary prefix (up to the second barrier) without noise.
    circuit = library.phase_estimation(COUNTING, PHASE)
    simulator = DensityMatrixSimulator(circuit)
    barriers_seen = 0
    while barriers_seen < 2:
        operation = circuit[simulator.position]
        simulator.step()
        if type(operation).__name__ == "BarrierOp":
            barriers_seen += 1
    package = simulator.package
    vectors = all_bloch_vectors(package, simulator.state(), is_density=True)
    for qubit, (x, y, z) in enumerate(vectors):
        length = np.sqrt(x * x + y * y + z * z)
        print(f"  q{qubit}: ({x:+.3f}, {y:+.3f}, {z:+.3f})  |r| = {length:.3f}")
    print("(counting qubits lie on the equator, rotated by the phase "
          "kickback; the eigenstate qubit points to -z)")
    svg = bloch_svg(vectors, title="QPE counting register before QFT^-1")
    with open("qpe_bloch.svg", "w", encoding="utf-8") as handle:
        handle.write(svg)
    print("wrote qpe_bloch.svg")


if __name__ == "__main__":
    ideal_run()
    noisy_sweep()
    bloch_views()
