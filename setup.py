"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; ``pip install -e . --no-build-isolation --no-use-pep517``
uses this file instead.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    entry_points={"console_scripts": ["qdd-tool = repro.tool.cli:main"]},
    python_requires=">=3.9",
)
